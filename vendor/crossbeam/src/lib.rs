//! Minimal stand-in for the `crossbeam` crate, vendored so the workspace
//! builds hermetically. Only `crossbeam::thread::scope` is provided; it is
//! a thin adapter over `std::thread::scope` that reproduces crossbeam's
//! call shape (`scope(|s| { s.spawn(|_| ...); })` returning a `Result`).

/// Scoped threads.
pub mod thread {
    /// A scope handle; spawned closures receive a reference to it, so
    /// nested spawns work exactly as with crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Panics in spawned
    /// threads propagate (matching `std::thread::scope`), so the `Ok` arm
    /// is the only one observable — kept as a `Result` for crossbeam API
    /// compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let mut results = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = (i as u64 + 1) * 10;
                });
            }
        })
        .expect("scope");
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("scope");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}

//! Minimal, dependency-light stand-in for the `proptest` crate, vendored so
//! the workspace builds hermetically. It supports the subset the tests use:
//! the [`proptest!`] macro over `pattern in strategy` arguments,
//! [`prop_assert!`]/[`prop_assert_eq!`], range strategies over integers and
//! floats, tuple strategies, [`any`], and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: each generated test runs a
//! fixed number of seeded cases, so failures are reproducible but reported
//! with the raw (unshrunk) inputs.

pub use rand;

use rand::rngs::StdRng;
use rand::{Rng, RngExt};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const CASES: u32 = 96;

/// A source of random values of a given type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.random_range(-6.0..6.0);
        let v = 10f64.powf(mag);
        if rng.random::<bool>() {
            v
        } else {
            -v
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// A fixed size or a half-open size range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `elem` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] seeded cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>
                    ::seed_from_u64(0xC0FFEE ^ $crate::CASES as u64);
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..=1.0, n in 2usize..10, b in any::<bool>()) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((2..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn vectors_respect_sizes(xs in crate::collection::vec(-1.0f64..1.0, 1..5),
                                 fixed in crate::collection::vec(0u64..3, 4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn mut_patterns_work(mut xs in crate::collection::vec(0.0f64..1.0, 2..6)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

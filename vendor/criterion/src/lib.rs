//! Minimal stand-in for the `criterion` benchmark harness, vendored so the
//! workspace builds hermetically. It keeps Criterion's API shape
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher::iter`)
//! but performs a simple calibrated timing loop instead of full statistical
//! analysis: each benchmark is warmed up, then timed over enough iterations
//! to fill a short measurement window, and the mean per-iteration time is
//! printed.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { _parent: self, name, sample_size: 100 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), 100, f);
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples (scales the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, storing the mean per-iteration duration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + calibration: find an iteration count that runs long
        // enough to be timeable.
        let mut iters: u64 = 1;
        let calibration = Duration::from_millis(20);
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= calibration || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        // Measurement: `samples` batches of the calibrated size.
        let batches = self.samples.clamp(1, 32) as u64;
        let t = Instant::now();
        for _ in 0..batches * iters {
            std::hint::black_box(f());
        }
        self.result = Some(t.elapsed() / (batches * iters) as u32);
    }
}

/// Re-exported for benchmark code that wants explicit opacity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: sample_size, result: None };
    f(&mut b);
    match b.result {
        Some(d) => println!("{id:<50} {:>12.3?}/iter", d),
        None => println!("{id:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Minimal, dependency-free stand-in for the `rand` crate, vendored so the
//! workspace builds hermetically (the build environment has no registry
//! access). It implements exactly the API surface this repository uses:
//!
//! * [`Rng`] — the raw entropy source (`next_u64`);
//! * [`RngExt`] — blanket extension trait providing `random::<T>()` and
//!   `random_range(..)`, the call sites the workspace code was written
//!   against;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — a deterministic
//!   xoshiro256++ generator (Blackman & Vigna) seeded through SplitMix64;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and uniform `choose`.
//!
//! Determinism is load-bearing: every tuning session, test, and the
//! parallel-runtime reproducibility guarantees key off `StdRng` producing
//! an identical stream for an identical seed on every platform.

/// A source of uniformly distributed random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one uniform sample.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: $t = Random::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u: $t = Random::random(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniform sample of `T` (`f64` is uniform on `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, equidistributed, and fully deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed ^ 0xD1B5_4A32_D192_ED05u64;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
            let v = rng.random_range(2..=3u64);
            assert!((2..=3).contains(&v));
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}

//! Minimal stand-in for the `parking_lot` crate, vendored so the workspace
//! builds hermetically. [`Mutex`] wraps `std::sync::Mutex` with
//! parking_lot's panic-free `lock()` signature (poisoning is ignored — a
//! poisoned std mutex still yields its data, matching parking_lot's
//! no-poisoning semantics).

/// A mutual-exclusion lock with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}

//! Cross-crate integration tests: full tuning sessions against the
//! simulated DBMS, exercising the public API the way the paper's
//! experiments do. Simulation windows are shortened to keep the suite
//! fast; the qualitative assertions mirror the paper's claims.

use llamatune::pipeline::{
    IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline, ProjectionKind, SearchSpaceAdapter,
};
use llamatune::report::final_improvement_pct;
use llamatune::session::{run_session, EvalResult, SessionHistory, SessionOptions};
use llamatune_engine::RunOptions;
use llamatune_optim::{
    Ddpg, DdpgConfig, GpBo, GpConfig, Optimizer, Smac, SmacConfig, DEFAULT_METRIC_DIM,
};
use llamatune_space::catalog::{postgres_v13_6, postgres_v9_6};
use llamatune_space::ConfigSpace;
use llamatune_workloads::{suggested_options, workload_by_name, Objective, WorkloadRunner};

fn quick_runner(workload: &str, catalog: ConfigSpace) -> WorkloadRunner {
    let spec = workload_by_name(workload).expect("workload");
    let mut opts = suggested_options(workload);
    opts.duration_s = 0.25;
    opts.warmup_s = 0.06;
    opts.max_txns = 25_000;
    WorkloadRunner::new(spec, catalog).with_options(opts)
}

fn tune(
    adapter: &dyn SearchSpaceAdapter,
    optimizer: Box<dyn Optimizer>,
    runner: &WorkloadRunner,
    iterations: usize,
    seed: u64,
) -> SessionHistory {
    run_session(
        adapter,
        optimizer,
        |config| {
            let out = runner.evaluate(adapter.space(), config, seed);
            EvalResult { score: out.score, metrics: out.result.metrics, ..Default::default() }
        },
        &SessionOptions { iterations, seed, ..Default::default() },
    )
}

#[test]
fn llamatune_smac_improves_over_default_on_ycsb_a() {
    let catalog = postgres_v9_6();
    let runner = quick_runner("ycsb_a", catalog.clone());
    let pipeline = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), 1);
    let smac = Smac::new(pipeline.optimizer_spec().clone(), SmacConfig::default(), 1);
    let h = tune(&pipeline, Box::new(smac), &runner, 25, 1);
    let default = h.default_score();
    let best = h.best_score().unwrap();
    assert!(
        best > default * 1.1,
        "25 iterations should beat the default by >10%: {default:.0} -> {best:.0}"
    );
}

#[test]
fn llamatune_outperforms_baseline_smac_early() {
    // The paper's core claim: at a small iteration budget, the projected
    // space reaches better configurations than the 90-dimensional one.
    let catalog = postgres_v9_6();
    let runner = quick_runner("tpcc", catalog.clone());
    let budget = 20;
    let mut llama_wins = 0;
    for seed in 0..3 {
        let base_adapter = IdentityAdapter::new(&catalog);
        let base = tune(
            &base_adapter,
            Box::new(Smac::new(base_adapter.optimizer_spec().clone(), SmacConfig::default(), seed)),
            &runner,
            budget,
            seed,
        );
        let pipeline = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed);
        let llama = tune(
            &pipeline,
            Box::new(Smac::new(pipeline.optimizer_spec().clone(), SmacConfig::default(), seed)),
            &runner,
            budget,
            seed,
        );
        if llama.best_score().unwrap() >= base.best_score().unwrap() {
            llama_wins += 1;
        }
    }
    assert!(
        llama_wins >= 2,
        "LlamaTune should win at a 20-iteration budget on most seeds ({llama_wins}/3)"
    );
}

#[test]
fn hesbo_beats_rembo_on_average() {
    // Section 3.4: REMBO's clipping pushes optimization onto the facets.
    let catalog = postgres_v9_6();
    let runner = quick_runner("ycsb_a", catalog.clone());
    let mut hesbo_total = 0.0;
    let mut rembo_total = 0.0;
    for seed in 0..3 {
        for (kind, total) in
            [(ProjectionKind::Hesbo, &mut hesbo_total), (ProjectionKind::Rembo, &mut rembo_total)]
        {
            let cfg = LlamaTuneConfig {
                projection: kind,
                special_value_bias: None,
                bucket_count: None,
                target_dim: 16,
            };
            let pipeline = LlamaTunePipeline::new(&catalog, &cfg, seed);
            let smac = Smac::new(pipeline.optimizer_spec().clone(), SmacConfig::default(), seed);
            let h = tune(&pipeline, Box::new(smac), &runner, 20, seed);
            *total += h.best_score().unwrap();
        }
    }
    assert!(
        hesbo_total > rembo_total,
        "HeSBO ({hesbo_total:.0}) should beat REMBO ({rembo_total:.0}) across seeds"
    );
}

#[test]
fn all_optimizers_run_through_the_pipeline() {
    let catalog = postgres_v9_6();
    let runner = quick_runner("ycsb_b", catalog.clone());
    let pipeline = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), 9);
    let spec = pipeline.optimizer_spec().clone();
    let optimizers: Vec<Box<dyn Optimizer>> = vec![
        Box::new(Smac::new(spec.clone(), SmacConfig::default(), 9)),
        Box::new(GpBo::new(spec.clone(), GpConfig::default(), 9)),
        Box::new(Ddpg::new(spec, DEFAULT_METRIC_DIM, DdpgConfig::default(), 9)),
    ];
    for opt in optimizers {
        let name = opt.name();
        let h = tune(&pipeline, opt, &runner, 15, 9);
        assert_eq!(h.best_curve.len(), 16, "{name} session truncated");
        assert!(h.best_score().unwrap() > 0.0, "{name} produced no valid result");
    }
}

#[test]
fn tail_latency_objective_improves_p95() {
    let catalog = postgres_v9_6();
    let spec = workload_by_name("seats").unwrap();
    let mut opts = suggested_options("seats");
    opts.duration_s = 0.25;
    opts.warmup_s = 0.06;
    let probe = WorkloadRunner::new(spec.clone(), catalog.clone()).with_options(opts.clone());
    let default_tput = probe.evaluate(&catalog, &catalog.default_config(), 0).score.unwrap();
    let runner = WorkloadRunner::new(spec, catalog.clone())
        .with_options(opts)
        .with_objective(Objective::TailLatency95 { rate_tps: default_tput * 0.5 });
    let pipeline = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), 4);
    let smac = Smac::new(pipeline.optimizer_spec().clone(), SmacConfig::default(), 4);
    let h = tune(&pipeline, Box::new(smac), &runner, 20, 4);
    // Scores are negated p95 latencies: tuned must be no worse than default.
    assert!(
        h.best_score().unwrap() >= h.default_score(),
        "tuning should not end worse than the default"
    );
}

#[test]
fn pg13_catalog_tunes_end_to_end() {
    let catalog = postgres_v13_6();
    let runner = quick_runner("seats", catalog.clone());
    let pipeline = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), 6);
    let smac = Smac::new(pipeline.optimizer_spec().clone(), SmacConfig::default(), 6);
    let h = tune(&pipeline, Box::new(smac), &runner, 20, 6);
    assert!(h.best_score().unwrap() > h.default_score() * 0.95);
    // All configs valid in the 112-knob space.
    for cfg in &h.configs {
        assert!(catalog.validate(cfg).is_ok());
    }
}

#[test]
fn crashed_configs_do_not_derail_sessions() {
    // Force frequent crashes by tuning only the riskiest memory knobs with
    // a random-ish optimizer; the session must finish and keep a sane best.
    let catalog = postgres_v9_6();
    let sub = catalog.subspace(&["shared_buffers", "work_mem", "max_connections"]);
    let runner = quick_runner("ycsb_a", catalog.clone());
    let adapter = IdentityAdapter::new(&sub);
    let smac = Smac::new(adapter.optimizer_spec().clone(), SmacConfig::default(), 3);
    let h = run_session(
        &adapter,
        Box::new(smac),
        |config| {
            let out = runner.evaluate(&sub, config, 3);
            EvalResult { score: out.score, metrics: out.result.metrics, ..Default::default() }
        },
        &SessionOptions { iterations: 25, seed: 3, ..Default::default() },
    );
    let crashes = h.raw_scores.iter().filter(|s| s.is_none()).count();
    assert!(h.best_score().unwrap() > 0.0);
    // Crash penalties must never be the best score.
    if crashes > 0 {
        let best = h.best_score().unwrap();
        let worst_valid = h.raw_scores.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
        assert!(best >= worst_valid);
    }
}

#[test]
fn sessions_are_reproducible() {
    let catalog = postgres_v9_6();
    let runner = quick_runner("twitter", catalog.clone());
    let mut finals = Vec::new();
    for _ in 0..2 {
        let pipeline = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), 17);
        let smac = Smac::new(pipeline.optimizer_spec().clone(), SmacConfig::default(), 17);
        let h = tune(&pipeline, Box::new(smac), &runner, 12, 17);
        finals.push(h.best_curve);
    }
    assert_eq!(finals[0], finals[1], "same seeds must reproduce bit-for-bit");
}

#[test]
fn improvement_metric_matches_direct_computation() {
    let catalog = postgres_v9_6();
    let runner = quick_runner("resource_stresser", catalog.clone());
    let adapter = IdentityAdapter::new(&catalog);
    let smac = Smac::new(adapter.optimizer_spec().clone(), SmacConfig::default(), 2);
    let h = tune(&adapter, Box::new(smac), &runner, 15, 2);
    let best = h.best_score().unwrap();
    let imp = final_improvement_pct(h.default_score(), best);
    assert!(((h.default_score() * (1.0 + imp / 100.0)) - best).abs() < 1e-6);
}

#[test]
fn engine_run_options_are_respected_through_the_stack() {
    // Sanity: a longer window simulates more transactions.
    let catalog = postgres_v9_6();
    let spec = workload_by_name("ycsb_a").unwrap();
    let short = WorkloadRunner::new(spec.clone(), catalog.clone()).with_options(RunOptions {
        duration_s: 0.15,
        warmup_s: 0.05,
        ..RunOptions::default()
    });
    let long = WorkloadRunner::new(spec, catalog.clone()).with_options(RunOptions {
        duration_s: 0.6,
        warmup_s: 0.05,
        ..RunOptions::default()
    });
    let cfg = catalog.default_config();
    let a = short.run(&catalog, &cfg, 1);
    let b = long.run(&catalog, &cfg, 1);
    assert!(b.committed > a.committed * 2);
}

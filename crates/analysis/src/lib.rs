//! Knob-importance analysis: the ranking-based methodology of Section 2.3.
//!
//! The paper's motivation experiments rank knobs by SHAP values computed
//! over a random forest fitted to thousands of LHS-evaluated configurations
//! (following \[39\], which found SHAP the most meaningful importance score
//! for DBMS tuning). This crate implements:
//!
//! * [`tree_shap`] — the path-dependent TreeSHAP algorithm (Lundberg et
//!   al. 2018, Algorithm 2) over the random-forest trees of
//!   `llamatune-optim`, validated against brute-force Shapley values;
//! * [`shap_importance`] — mean |SHAP| per feature over a background set;
//! * [`gini_importance`] / [`permutation_importance`] — the cheaper
//!   alternatives, for comparison;
//! * [`rank_knobs`] — descending importance ranking with names.

pub mod importance;
pub mod shap;

pub use importance::{gini_importance, permutation_importance, rank_knobs};
pub use shap::{expected_value, shap_importance, tree_shap};

//! Path-dependent TreeSHAP (Lundberg, Erion & Lee 2018, Algorithm 2).
//!
//! Computes exact Shapley values for tree ensembles under the
//! path-dependent feature-perturbation model: absent features are
//! integrated out along each tree's own split structure, weighted by the
//! training "cover" of each branch. Complexity is O(leaves * depth^2) per
//! instance instead of the exponential subset enumeration.

use llamatune_optim::{rf::rule_goes_left, RandomForest, Tree, TreeNode};

/// Per-path bookkeeping element (the `m` array of Algorithm 2).
#[derive(Debug, Clone, Copy)]
struct PathElement {
    /// Feature that split this path step (usize::MAX for the root sentinel).
    feature: usize,
    /// Fraction of "zero" (absent-feature) paths flowing through.
    zero: f64,
    /// 1 when the instance's value goes this way, else 0.
    one: f64,
    /// Permutation weight polynomial coefficient.
    pweight: f64,
}

fn node_cover(tree: &Tree, idx: u32) -> f64 {
    match &tree.nodes[idx as usize] {
        TreeNode::Leaf { n, .. } | TreeNode::Split { n, .. } => f64::from(*n),
    }
}

fn extend(path: &mut Vec<PathElement>, zero: f64, one: f64, feature: usize) {
    let l = path.len();
    path.push(PathElement { feature, zero, one, pweight: if l == 0 { 1.0 } else { 0.0 } });
    for i in (0..l).rev() {
        path[i + 1].pweight += one * path[i].pweight * (i + 1) as f64 / (l + 1) as f64;
        path[i].pweight = zero * path[i].pweight * (l - i) as f64 / (l + 1) as f64;
    }
}

fn unwind(path: &mut Vec<PathElement>, i: usize) {
    let l = path.len() - 1;
    let one = path[i].one;
    let zero = path[i].zero;
    let mut n = path[l].pweight;
    for j in (0..l).rev() {
        if one != 0.0 {
            let t = path[j].pweight;
            path[j].pweight = n * (l + 1) as f64 / ((j + 1) as f64 * one);
            n = t - path[j].pweight * zero * (l - j) as f64 / (l + 1) as f64;
        } else {
            path[j].pweight = path[j].pweight * (l + 1) as f64 / (zero * (l - j) as f64);
        }
    }
    for j in i..l {
        path[j].feature = path[j + 1].feature;
        path[j].zero = path[j + 1].zero;
        path[j].one = path[j + 1].one;
    }
    path.pop();
}

/// Sum of unwound weights for element `i` without mutating the path.
fn unwound_sum(path: &[PathElement], i: usize) -> f64 {
    let l = path.len() - 1;
    let one = path[i].one;
    let zero = path[i].zero;
    let mut total = 0.0;
    let mut n = path[l].pweight;
    for j in (0..l).rev() {
        if one != 0.0 {
            let t = n * (l + 1) as f64 / ((j + 1) as f64 * one);
            total += t;
            n = path[j].pweight - t * zero * (l - j) as f64 / (l + 1) as f64;
        } else {
            total += path[j].pweight / (zero * (l - j) as f64 / (l + 1) as f64);
        }
    }
    total
}

/// Recursive walk of Algorithm 2. Each call works on its *own copy* of the
/// path: unwinding inside one subtree must not leak pweight mutations into
/// the sibling's computation (the reference implementation likewise copies
/// the path at every level).
#[allow(clippy::too_many_arguments)]
fn recurse(
    tree: &Tree,
    x: &[f64],
    phi: &mut [f64],
    node: u32,
    parent_path: &[PathElement],
    zero: f64,
    one: f64,
    feature: usize,
) {
    let mut path = parent_path.to_vec();
    extend(&mut path, zero, one, feature);
    match &tree.nodes[node as usize] {
        TreeNode::Leaf { value, .. } => {
            for i in 1..path.len() {
                let w = unwound_sum(&path, i);
                let el = path[i];
                phi[el.feature] += w * (el.one - el.zero) * value;
            }
        }
        TreeNode::Split { feature: split_feat, rule, left, right, .. } => {
            let (hot, cold) = if rule_goes_left(rule, x[*split_feat]) {
                (*left, *right)
            } else {
                (*right, *left)
            };
            let cover = node_cover(tree, node);
            let hot_frac = node_cover(tree, hot) / cover;
            let cold_frac = node_cover(tree, cold) / cover;
            let (mut iz, mut io) = (1.0, 1.0);
            // If this feature already split above, undo its path entry and
            // combine the fractions.
            if let Some(k) = path.iter().skip(1).position(|e| e.feature == *split_feat) {
                let k = k + 1;
                iz = path[k].zero;
                io = path[k].one;
                unwind(&mut path, k);
            }
            recurse(tree, x, phi, hot, &path, iz * hot_frac, io, *split_feat);
            recurse(tree, x, phi, cold, &path, iz * cold_frac, 0.0, *split_feat);
        }
    }
}

/// SHAP values of one tree at instance `x`; `phi[f]` is feature `f`'s
/// contribution and `sum(phi) + expected_value(tree) = tree.predict(x)`.
pub fn tree_shap_single(tree: &Tree, x: &[f64], n_features: usize) -> Vec<f64> {
    let mut phi = vec![0.0; n_features];
    recurse(tree, x, &mut phi, 0, &[], 1.0, 1.0, usize::MAX - 1);
    phi
}

/// SHAP values of a whole forest at `x` (average over trees).
pub fn tree_shap(forest: &RandomForest, x: &[f64]) -> Vec<f64> {
    let d = forest.spec().len();
    let mut phi = vec![0.0; d];
    for tree in &forest.trees {
        let p = tree_shap_single(tree, x, d);
        for (acc, v) in phi.iter_mut().zip(p) {
            *acc += v;
        }
    }
    for v in phi.iter_mut() {
        *v /= forest.trees.len() as f64;
    }
    phi
}

/// Cover-weighted expected prediction of one tree (the SHAP base value).
pub fn expected_value_single(tree: &Tree) -> f64 {
    fn rec(tree: &Tree, idx: u32) -> f64 {
        match &tree.nodes[idx as usize] {
            TreeNode::Leaf { value, .. } => *value,
            TreeNode::Split { left, right, n, .. } => {
                let wl = node_cover(tree, *left) / f64::from(*n);
                let wr = node_cover(tree, *right) / f64::from(*n);
                wl * rec(tree, *left) + wr * rec(tree, *right)
            }
        }
    }
    rec(tree, 0)
}

/// Cover-weighted expected prediction of the forest.
pub fn expected_value(forest: &RandomForest) -> f64 {
    forest.trees.iter().map(expected_value_single).sum::<f64>() / forest.trees.len() as f64
}

/// Mean |SHAP| importance per feature over a background sample.
pub fn shap_importance(forest: &RandomForest, xs: &[Vec<f64>]) -> Vec<f64> {
    let d = forest.spec().len();
    let mut imp = vec![0.0; d];
    for x in xs {
        let phi = tree_shap(forest, x);
        for (acc, v) in imp.iter_mut().zip(phi) {
            *acc += v.abs();
        }
    }
    for v in imp.iter_mut() {
        *v /= xs.len().max(1) as f64;
    }
    imp
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_optim::{RandomForestConfig, SearchSpec};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Conditional expectation E[f(x) | x_S] following Algorithm 1 of the
    /// TreeSHAP paper: in-coalition features follow x, others average by
    /// cover. Used as the ground truth for brute-force Shapley values.
    fn expvalue(tree: &Tree, x: &[f64], coalition: &[bool], idx: u32) -> f64 {
        match &tree.nodes[idx as usize] {
            TreeNode::Leaf { value, .. } => *value,
            TreeNode::Split { feature, rule, left, right, n } => {
                if coalition[*feature] {
                    let next = if rule_goes_left(rule, x[*feature]) { *left } else { *right };
                    expvalue(tree, x, coalition, next)
                } else {
                    let wl = node_cover(tree, *left) / f64::from(*n);
                    let wr = node_cover(tree, *right) / f64::from(*n);
                    wl * expvalue(tree, x, coalition, *left)
                        + wr * expvalue(tree, x, coalition, *right)
                }
            }
        }
    }

    /// Brute-force Shapley values by subset enumeration (exponential; only
    /// for tiny feature counts).
    fn brute_force_shap(tree: &Tree, x: &[f64], d: usize) -> Vec<f64> {
        let mut phi = vec![0.0; d];
        let factorial = |n: usize| -> f64 { (1..=n).map(|v| v as f64).product::<f64>().max(1.0) };
        for f in 0..d {
            for mask in 0..(1u32 << d) {
                if mask & (1 << f) != 0 {
                    continue;
                }
                let mut coalition = vec![false; d];
                let mut s = 0usize;
                for (j, c) in coalition.iter_mut().enumerate() {
                    if mask & (1 << j) != 0 {
                        *c = true;
                        s += 1;
                    }
                }
                let without = expvalue(tree, x, &coalition, 0);
                coalition[f] = true;
                let with = expvalue(tree, x, &coalition, 0);
                let weight = factorial(s) * factorial(d - s - 1) / factorial(d);
                phi[f] += weight * (with - without);
            }
        }
        phi
    }

    fn fit_forest(
        d: usize,
        f: impl Fn(&[f64]) -> f64,
        n: usize,
        seed: u64,
    ) -> (RandomForest, Vec<Vec<f64>>) {
        let spec = SearchSpec::continuous(d);
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        let cfg = RandomForestConfig { n_trees: 6, bootstrap: false, ..Default::default() };
        (RandomForest::fit(&spec, &xs, &ys, &cfg, seed), xs)
    }

    #[test]
    fn tree_shap_matches_brute_force() {
        let (forest, _) = fit_forest(4, |x| 3.0 * x[0] + x[1] * x[2], 60, 1);
        let probes = [vec![0.1, 0.9, 0.2, 0.5], vec![0.8, 0.3, 0.7, 0.1]];
        for x in &probes {
            for tree in &forest.trees {
                let fast = tree_shap_single(tree, x, 4);
                let slow = brute_force_shap(tree, x, 4);
                for (a, b) in fast.iter().zip(&slow) {
                    assert!(
                        (a - b).abs() < 1e-8,
                        "TreeSHAP {a} vs brute force {b} (tree values {fast:?} vs {slow:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn additivity_sum_phi_equals_prediction_minus_base() {
        let (forest, xs) = fit_forest(5, |x| x[0] * 10.0 - 4.0 * x[3], 80, 2);
        for x in xs.iter().take(10) {
            let phi = tree_shap(&forest, x);
            let base = expected_value(&forest);
            let (pred, _) = forest.predict(x);
            let sum: f64 = phi.iter().sum();
            assert!(
                (base + sum - pred).abs() < 1e-8,
                "local accuracy: base {base} + sum {sum} != pred {pred}"
            );
        }
    }

    #[test]
    fn irrelevant_features_get_near_zero_shap() {
        let (forest, xs) = fit_forest(6, |x| 8.0 * x[0], 150, 3);
        let imp = shap_importance(&forest, &xs[..40]);
        let max_noise = imp[1..].iter().cloned().fold(0.0f64, f64::max);
        assert!(
            imp[0] > 5.0 * max_noise,
            "x0 importance {} should dominate noise features {:?}",
            imp[0],
            &imp[1..]
        );
    }

    #[test]
    fn symmetric_features_get_symmetric_importance() {
        let (forest, xs) = fit_forest(3, |x| x[0] + x[1], 200, 4);
        let imp = shap_importance(&forest, &xs[..50]);
        let ratio = imp[0] / imp[1];
        assert!((0.6..1.6).contains(&ratio), "x0 and x1 should be similar: {imp:?}");
        assert!(imp[2] < imp[0] * 0.3, "x2 is irrelevant: {imp:?}");
    }

    #[test]
    fn expected_value_is_cover_weighted_mean() {
        // For an unbootstrapped forest the base value is the training mean.
        let (forest, xs) = fit_forest(2, |x| 4.0 * x[0], 100, 5);
        let train_mean = xs.iter().map(|x| 4.0 * x[0]).sum::<f64>() / xs.len() as f64;
        let base = expected_value(&forest);
        assert!(
            (base - train_mean).abs() < 0.4,
            "base {base} should approximate the mean {train_mean}"
        );
    }

    #[test]
    fn stump_gives_all_credit_to_split_feature() {
        // A single-tree, single-split case with hand-computable values.
        use llamatune_optim::rf::Rule;
        let tree = Tree {
            nodes: vec![
                TreeNode::Split { feature: 1, rule: Rule::Le(0.5), left: 1, right: 2, n: 10 },
                TreeNode::Leaf { value: 0.0, n: 5 },
                TreeNode::Leaf { value: 10.0, n: 5 },
            ],
        };
        let phi = tree_shap_single(&tree, &[0.9, 0.9], 2);
        // Base value is 5.0; prediction is 10.0; all credit on feature 1.
        assert!((phi[1] - 5.0).abs() < 1e-12, "{phi:?}");
        assert!(phi[0].abs() < 1e-12, "{phi:?}");
    }
}

//! Cheaper importance scores (Gini / permutation) and knob ranking.

use llamatune_optim::{RandomForest, TreeNode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Gini (variance-reduction) importance: total SSE decrease contributed by
/// each feature's splits, cover-weighted, averaged over trees and
/// normalized to sum to 1.
pub fn gini_importance(forest: &RandomForest) -> Vec<f64> {
    let d = forest.spec().len();
    let mut imp = vec![0.0; d];
    for tree in &forest.trees {
        for node in &tree.nodes {
            if let TreeNode::Split { feature, n, .. } = node {
                // Cover-weighted split count as an SSE-decrease proxy: the
                // deeper (smaller-cover) a split, the less it matters.
                imp[*feature] += f64::from(*n);
            }
        }
    }
    let total: f64 = imp.iter().sum();
    if total > 0.0 {
        for v in imp.iter_mut() {
            *v /= total;
        }
    }
    imp
}

/// Permutation importance: increase in mean-squared error when one
/// feature's column is shuffled.
pub fn permutation_importance(
    forest: &RandomForest,
    xs: &[Vec<f64>],
    ys: &[f64],
    seed: u64,
) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len());
    let d = forest.spec().len();
    let mse = |data: &[Vec<f64>]| -> f64 {
        data.iter()
            .zip(ys)
            .map(|(x, y)| {
                let (p, _) = forest.predict(x);
                (p - y) * (p - y)
            })
            .sum::<f64>()
            / data.len().max(1) as f64
    };
    let baseline = mse(xs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut imp = vec![0.0; d];
    for (f, slot) in imp.iter_mut().enumerate() {
        let mut shuffled: Vec<Vec<f64>> = xs.to_vec();
        // Fisher-Yates over the f-th column.
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            let tmp = shuffled[i][f];
            shuffled[i][f] = shuffled[j][f];
            shuffled[j][f] = tmp;
        }
        *slot = (mse(&shuffled) - baseline).max(0.0);
    }
    imp
}

/// Ranks knob names by importance, descending; ties broken by name for
/// determinism.
pub fn rank_knobs<'a>(names: &[&'a str], importance: &[f64]) -> Vec<(&'a str, f64)> {
    assert_eq!(names.len(), importance.len());
    let mut ranked: Vec<(&str, f64)> =
        names.iter().copied().zip(importance.iter().copied()).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_optim::{RandomForestConfig, SearchSpec};

    fn fit(
        d: usize,
        f: impl Fn(&[f64]) -> f64,
        n: usize,
    ) -> (RandomForest, Vec<Vec<f64>>, Vec<f64>) {
        let spec = SearchSpec::continuous(d);
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        let forest = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 3);
        (forest, xs, ys)
    }

    #[test]
    fn gini_finds_the_signal_feature() {
        let (forest, _, _) = fit(5, |x| 6.0 * x[2], 200);
        let imp = gini_importance(&forest);
        let best = imp.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(best, 2, "importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9, "normalized");
    }

    #[test]
    fn permutation_finds_the_signal_feature() {
        let (forest, xs, ys) = fit(4, |x| 5.0 * x[1] + 0.5 * x[3], 200);
        let imp = permutation_importance(&forest, &xs, &ys, 1);
        assert!(imp[1] > imp[0] && imp[1] > imp[2], "{imp:?}");
        assert!(imp[1] > imp[3], "strong feature beats weak one: {imp:?}");
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let names = ["a", "b", "c", "d"];
        let imp = [0.1, 0.9, 0.9, 0.0];
        let ranked = rank_knobs(&names, &imp);
        assert_eq!(ranked[0].0, "b", "tie broken by name");
        assert_eq!(ranked[1].0, "c");
        assert_eq!(ranked[3].0, "d");
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}

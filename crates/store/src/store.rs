//! The append-only, crash-safe trial store.
//!
//! ## Layout
//!
//! ```text
//! MANIFEST            # header + sealed segment names (+ "active" lines
//!                     # for fleet writers — see below)
//! seg-000001.jsonl    # sealed: listed in MANIFEST, immutable, fully valid
//! seg-000002.jsonl    # active: append-only, may be torn
//! ```
//!
//! Objects live behind a [`StoreBackend`] — a local directory
//! ([`crate::backend::LocalDirBackend`]) or S3-style object storage
//! ([`crate::backend::ObjectStoreBackend`]); the store never touches
//! the filesystem directly. Every segment line is one [`StoreRecord`]
//! (see [`crate::record`]). Appends go to the *active* segment — one
//! backend `append` per record. When the active segment reaches
//! [`StoreOptions::segment_records`] records it is *sealed*: the
//! segment is synced, then a new `MANIFEST` naming it is committed —
//! by atomic rename on local directories, by conditional put (CAS) on
//! object stores (see [`crate::backend`] for the two protocols). The
//! manifest commit is the commit point — a crash during rotation leaves
//! either the old manifest (segment still active, fully replayable) or
//! the new one (segment sealed); no state in between.
//!
//! ## Recovery
//!
//! Opening a store replays the manifest's sealed segments *strictly*
//! (they were synced before sealing, so any damage is real corruption
//! and surfaces as an error) and active segments *leniently*: a final
//! line that fails to parse is a torn append — it is dropped and the
//! segment truncated back to the last good record — while an unparsable
//! line with valid records after it means interleaved garbage and is
//! rejected. Duplicate `(session, iteration)` trials are legal and
//! resolve last-wins: a resumed session re-runs its partial trailing
//! round, deterministically overwriting the records the crash left
//! behind.
//!
//! ## Fleet mode (multi-writer)
//!
//! [`TrialStore::open_shared`] registers a named writer on the store: a
//! writer owns a private active segment (`seg-<writer>-NNNNNN.jsonl`),
//! listed in the manifest as an `active` entry so every other writer —
//! and [`TrialStore::open_reader`] — can see its uncommitted records.
//! Rotation and compaction commit through a manifest CAS retry loop: a
//! writer that loses the race re-reads the winning manifest, merges its
//! change, and retries, so concurrent rotations and compactions never
//! drop a committed segment. Live writers never share a session (the
//! campaign layer leases sessions through [`SessionMeta::lease`]), and
//! a takeover after a kill re-runs deterministically, so cross-writer
//! duplicate records are always content-identical and last-wins merge
//! order does not matter. Single-writer stores are unchanged on disk:
//! their manifests carry no `active` entries and their segment names no
//! writer tag.
//!
//! [`SessionMeta::lease`]: crate::record::SessionMeta::lease

use crate::backend::{lock_recover, LocalDirBackend, Revision, StoreBackend};
use crate::record::{record_from_json, record_to_json, SessionMeta, StoreRecord, StoredTrial};
use llamatune::backoff::{Backoff, BackoffPolicy};
use llamatune::history_io::{events_to_jsonl, TrialEvent};
use llamatune::session::PriorTrial;
use llamatune_obs::trace::{NoopTracer, TraceEvent, Tracer};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const MANIFEST_HEADER: &str = "llamatune-store v1";

/// Starts the store's CAS-loop backoff schedule, seeded from whatever
/// identifies the contender (the writer tag) so contending writers
/// draw decorrelated delays.
fn cas_backoff(tag: &str) -> Backoff {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1_0000_0000_01b3);
    }
    Backoff::new(BackoffPolicy::STORE_CAS, seed)
}

/// Sleeps out one step of a CAS backoff schedule (ticks are
/// microseconds here), or errors once the retry budget is exhausted —
/// a livelocked manifest race becomes a clean error instead of a spin.
fn cas_retry(backoff: &mut Backoff, what: &str) -> io::Result<()> {
    // Contention is scheduling-dependent, so retries are a process-wide
    // metric, never a trace span (traces stay deterministic).
    llamatune_obs::global().incr("store.cas_retries", 1);
    match backoff.next() {
        Some(us) => {
            if us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
            Ok(())
        }
        None => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "manifest CAS contention: {what} lost {} consecutive races",
                backoff.attempts()
            ),
        )),
    }
}

/// The trace span summarising one compaction pass. Attributed to the
/// synthetic `"store"` session: compaction runs from one thread at a
/// time per handle, so the span order is deterministic for
/// single-writer runs (multi-writer ordering is explicitly outside the
/// determinism contract).
fn compact_span(stats: &CompactionStats) -> TraceEvent {
    TraceEvent::new("store", "store.compact")
        .field("segments_before", stats.segments_before)
        .field("segments_after", stats.segments_after)
        .field("records_before", stats.trial_records_before)
        .field("records_after", stats.trial_records_after)
}

/// What one [`TrialStore::compact`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Trial records on disk before compaction (duplicates included).
    pub trial_records_before: usize,
    /// Trial records after — one per distinct `(session, iteration)`.
    pub trial_records_after: usize,
    /// Segment files before (sealed + active).
    pub segments_before: usize,
    /// Segment files after (sealed + the fresh empty active).
    pub segments_after: usize,
}

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Records per segment before rotation (default 4096).
    pub segment_records: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { segment_records: 4096 }
    }
}

#[derive(Debug, Default)]
struct SessionEntry {
    /// Trials by iteration, last record wins.
    trials: BTreeMap<usize, StoredTrial>,
    /// Latest metadata record.
    meta: Option<SessionMeta>,
}

/// The parsed `MANIFEST`: sealed segments in commit order, then the
/// registered active segments of fleet writers (empty for single-writer
/// stores, whose active segment is derived, not listed).
#[derive(Debug, Clone, Default)]
struct Manifest {
    sealed: Vec<String>,
    actives: Vec<String>,
}

impl Manifest {
    fn parse(bytes: &[u8]) -> io::Result<Manifest> {
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt("manifest is not UTF-8"))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_HEADER) => {}
            other => return Err(corrupt(format!("bad manifest header {other:?}"))),
        }
        let mut m = Manifest::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match line.strip_prefix("active ") {
                Some(name) => m.actives.push(name.to_string()),
                None => m.sealed.push(line.to_string()),
            }
        }
        Ok(m)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for name in &self.sealed {
            text.push_str(name);
            text.push('\n');
        }
        for name in &self.actives {
            text.push_str("active ");
            text.push_str(name);
            text.push('\n');
        }
        text.into_bytes()
    }

    /// Highest segment index across every listed segment, any writer.
    fn max_index(&self) -> usize {
        self.sealed.iter().chain(&self.actives).filter_map(|n| segment_index(n)).max().unwrap_or(0)
    }
}

#[derive(Debug)]
struct Inner {
    /// Sealed segments, in manifest (commit) order — fleet-wide in
    /// shared mode.
    sealed: Vec<String>,
    /// Manifest-listed active segments of *other* writers (shared mode).
    foreign_active: Vec<String>,
    /// Our active segment (empty string in reader mode).
    active_name: String,
    /// Numeric index of the active segment. Segment numbering is
    /// monotonically increasing but — after a [`TrialStore::compact`] —
    /// not necessarily dense, so the index is tracked explicitly rather
    /// than derived from `sealed.len()`.
    active_index: usize,
    active_records: usize,
    /// Manifest revision this handle last observed or committed.
    manifest_revision: Revision,
    sessions: BTreeMap<String, SessionEntry>,
    trial_records: usize,
}

/// The persistent tuning knowledge store. Thread-safe: concurrent
/// sessions of a campaign append through one shared handle.
#[derive(Debug)]
pub struct TrialStore {
    backend: Arc<dyn StoreBackend>,
    /// Backing directory, when the backend is a local directory opened
    /// through [`TrialStore::open`] / [`TrialStore::open_with`].
    dir: Option<PathBuf>,
    /// Fleet writer tag ([`TrialStore::open_shared`]); `None` for
    /// single-writer and reader handles.
    writer: Option<String>,
    read_only: bool,
    opts: StoreOptions,
    inner: Mutex<Inner>,
    /// Observability sink ([`TrialStore::set_tracer`]); [`NoopTracer`]
    /// by default, so untraced stores pay one relaxed load per span
    /// site and emit nothing.
    tracer: Mutex<Arc<dyn Tracer>>,
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_only_err() -> io::Error {
    io::Error::new(io::ErrorKind::Unsupported, "store opened read-only (open_reader)")
}

/// Segment object name: `seg-NNNNNN.jsonl` for single-writer stores,
/// `seg-<writer>-NNNNNN.jsonl` in a fleet writer's private namespace
/// (private namespaces make concurrent index allocation collision-free
/// by construction).
fn segment_name(writer: Option<&str>, index: usize) -> String {
    match writer {
        Some(w) => format!("seg-{w}-{index:06}.jsonl"),
        None => format!("seg-{index:06}.jsonl"),
    }
}

/// Splits a segment name into its optional writer tag and index.
fn segment_parts(name: &str) -> Option<(Option<&str>, usize)> {
    let core = name.strip_prefix("seg-")?.strip_suffix(".jsonl")?;
    match core.rsplit_once('-') {
        Some((writer, index)) => Some((Some(writer), index.parse().ok()?)),
        None => Some((None, core.parse().ok()?)),
    }
}

/// Inverse of [`segment_name`]: the numeric index of a segment file.
fn segment_index(name: &str) -> Option<usize> {
    segment_parts(name).map(|(_, index)| index)
}

/// The writer tag embedded in a fleet segment name, if any.
fn segment_writer(name: &str) -> Option<&str> {
    segment_parts(name).and_then(|(writer, _)| writer)
}

/// Reads a sealed segment strictly: it was synced before the manifest
/// named it, so any unparsable line is corruption. A *missing* object
/// surfaces as [`io::ErrorKind::NotFound`]: under a fleet it usually
/// means a concurrent compaction committed a new manifest and deleted
/// this segment while we were replaying the old one — callers re-read
/// the manifest and retry, and only treat it as corruption when the
/// manifest has not moved.
fn load_segment_strict(backend: &dyn StoreBackend, name: &str) -> io::Result<Vec<StoreRecord>> {
    let bytes = backend.get(name)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, format!("manifest names missing segment {name}"))
    })?;
    let text = std::str::from_utf8(&bytes).map_err(|_| corrupt(format!("{name}: not UTF-8")))?;
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            record_from_json(line).map_err(|e| corrupt(format!("{name} line {}: {e}", i + 1)))
        })
        .collect()
}

/// Reads an active segment leniently: an unparsable *final* line is a
/// torn append and is dropped; garbage followed by valid records is
/// rejected. With `repair`, the torn tail is truncated away on the
/// backend and a missing final newline (a tear between the closing
/// brace and the terminator) is repaired in place — only call with
/// `repair` on a segment this handle owns.
fn load_segment_lenient(
    backend: &dyn StoreBackend,
    name: &str,
    repair: bool,
) -> io::Result<Vec<StoreRecord>> {
    let Some(bytes) = backend.get(name)? else {
        return Ok(Vec::new());
    };
    let text = std::str::from_utf8(&bytes).map_err(|_| corrupt(format!("{name}: not UTF-8")))?;
    let mut good_len = 0usize;
    let mut pending: Vec<StoreRecord> = Vec::new();
    let mut torn: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        match record_from_json(line) {
            Ok(rec) => {
                if let Some(bad) = &torn {
                    return Err(corrupt(format!(
                        "{name} line {}: unparsable record {bad:?} followed by valid records",
                        i
                    )));
                }
                pending.push(rec);
                // `lines()` strips the terminator; count it back.
                good_len += line.len() + 1;
            }
            Err(e) => {
                if torn.is_some() {
                    return Err(corrupt(format!(
                        "{name} line {}: {e} (multiple unparsable lines)",
                        i + 1
                    )));
                }
                torn = Some(format!("line {}: {e}", i + 1));
            }
        }
    }
    if repair {
        if torn.is_some() && good_len < text.len() {
            // Torn final append: truncate the segment back to the last
            // complete record before appending continues.
            backend.truncate(name, good_len as u64)?;
        } else if torn.is_none() && !text.is_empty() && !text.ends_with('\n') {
            // A tear can also land *between* the closing brace and the
            // newline: the final record is complete and kept, but its
            // terminator must be repaired — otherwise the next append
            // would concatenate onto this line and a later recovery
            // would mis-read the merged line as torn, silently dropping
            // an acknowledged record.
            backend.append(name, b"\n")?;
            backend.sync(name)?;
        }
    }
    Ok(pending)
}

/// A manifest's replayed contents.
struct Replay {
    sessions: BTreeMap<String, SessionEntry>,
    trial_records: usize,
    /// Record count per active segment, by name.
    active_counts: BTreeMap<String, usize>,
}

/// Replays one manifest view: sealed segments strictly (in manifest
/// order), then active segments leniently, then — when the manifest
/// registers no fleet writers — the implicit single-writer active at
/// the derived index. Propagates [`io::ErrorKind::NotFound`] from
/// sealed reads so callers can retry against a manifest a concurrent
/// compaction just committed.
fn replay_manifest(backend: &dyn StoreBackend, m: &Manifest) -> io::Result<Replay> {
    let mut replay =
        Replay { sessions: BTreeMap::new(), trial_records: 0, active_counts: BTreeMap::new() };
    for name in &m.sealed {
        for rec in load_segment_strict(backend, name)? {
            apply_record(&mut replay.sessions, &mut replay.trial_records, rec);
        }
    }
    for name in &m.actives {
        let recs = load_segment_lenient(backend, name, false)?;
        replay.active_counts.insert(name.clone(), recs.len());
        for rec in recs {
            apply_record(&mut replay.sessions, &mut replay.trial_records, rec);
        }
    }
    if m.actives.is_empty() {
        let derived = segment_name(None, m.max_index() + 1);
        for rec in load_segment_lenient(backend, &derived, false)? {
            apply_record(&mut replay.sessions, &mut replay.trial_records, rec);
        }
    }
    Ok(replay)
}

/// Reads the manifest, committing an empty one first if the store is
/// brand new (CAS-raced creators simply re-read the winner's).
fn read_or_init_manifest(backend: &dyn StoreBackend) -> io::Result<(Manifest, Revision)> {
    loop {
        let (bytes, revision) = backend.read_manifest()?;
        match bytes {
            Some(b) => return Ok((Manifest::parse(&b)?, revision)),
            None => {
                let empty = Manifest::default().to_bytes();
                if let Ok(rev) = backend.commit_manifest(&empty, 0)? {
                    return Ok((Manifest::default(), rev));
                }
            }
        }
    }
}

impl TrialStore {
    /// Opens (or creates) the store rooted at `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<TrialStore> {
        TrialStore::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) the store rooted at `dir`.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<TrialStore> {
        let dir = dir.as_ref().to_path_buf();
        let backend = Arc::new(LocalDirBackend::create(&dir)?);
        TrialStore::open_single(backend, Some(dir), opts)
    }

    /// Opens (or creates) a single-writer store on any backend.
    pub fn open_backend(
        backend: Arc<dyn StoreBackend>,
        opts: StoreOptions,
    ) -> io::Result<TrialStore> {
        TrialStore::open_single(backend, None, opts)
    }

    fn open_single(
        backend: Arc<dyn StoreBackend>,
        dir: Option<PathBuf>,
        opts: StoreOptions,
    ) -> io::Result<TrialStore> {
        let (manifest, revision) = read_or_init_manifest(&*backend)?;
        if !manifest.actives.is_empty() {
            return Err(corrupt(
                "store has registered fleet writers; open it with open_shared or open_reader",
            ));
        }

        let mut sessions = BTreeMap::new();
        let mut trial_records = 0usize;
        for name in &manifest.sealed {
            for rec in load_segment_strict(&*backend, name)? {
                apply_record(&mut sessions, &mut trial_records, rec);
            }
        }

        // The active segment follows the highest sealed index (indices
        // are monotonic but, after compaction, not necessarily dense).
        let mut max_index = 0usize;
        for name in &manifest.sealed {
            let idx = segment_index(name)
                .ok_or_else(|| corrupt(format!("unparsable segment name {name:?} in manifest")))?;
            max_index = max_index.max(idx);
        }
        let active_index = max_index + 1;
        let active_name = segment_name(None, active_index);
        let recs = load_segment_lenient(&*backend, &active_name, true)?;
        let active_records = recs.len();
        for rec in recs {
            apply_record(&mut sessions, &mut trial_records, rec);
        }

        Ok(TrialStore {
            backend,
            dir,
            writer: None,
            read_only: false,
            opts,
            tracer: Mutex::new(Arc::new(NoopTracer)),
            inner: Mutex::new(Inner {
                sealed: manifest.sealed,
                foreign_active: Vec::new(),
                active_name,
                active_index,
                active_records,
                manifest_revision: revision,
                sessions,
                trial_records,
            }),
        })
    }

    /// Opens (or creates) a *fleet* store: this handle registers itself
    /// as writer `writer` and appends into a private active segment
    /// listed in the manifest, so every other writer and reader can see
    /// its records. Writer tags must be unique among *live* workers —
    /// reopening a dead worker's tag reclaims (repairs and adopts) the
    /// active segment it left behind. See the module docs for the
    /// multi-writer commit protocol.
    pub fn open_shared(
        backend: Arc<dyn StoreBackend>,
        writer: &str,
        opts: StoreOptions,
    ) -> io::Result<TrialStore> {
        if writer.is_empty() || !writer.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            return Err(corrupt(format!(
                "writer tag {writer:?} must be non-empty [A-Za-z0-9_] \
                 (it is embedded in segment names)"
            )));
        }
        let mut backoff = cas_backoff(writer);
        loop {
            let (mut m, revision) = read_or_init_manifest(&*backend)?;
            let mut changed = false;

            // A store previously written single-writer has an implicit
            // (derived, unlisted) active segment; fold it into the
            // sealed list so fleet writers can see it. Safe under the
            // same assumption every shared open makes: no other handle
            // with authority over that segment is live.
            if m.actives.is_empty() {
                let derived = segment_name(None, m.max_index() + 1);
                if !load_segment_lenient(&*backend, &derived, true)?.is_empty() {
                    m.sealed.push(derived);
                    changed = true;
                }
            }

            // Reclaim active segments a dead incarnation of this writer
            // left behind: repair their torn tails, adopt the newest as
            // our active segment, seal the rest.
            let mut mine: Vec<(usize, String)> = m
                .actives
                .iter()
                .filter(|n| segment_writer(n) == Some(writer))
                .map(|n| (segment_index(n).unwrap_or(0), n.clone()))
                .collect();
            mine.sort();
            let adopted = mine.pop();
            for (_, name) in &mine {
                load_segment_lenient(&*backend, name, true)?;
                m.actives.retain(|n| n != name);
                m.sealed.push(name.clone());
                changed = true;
            }
            let mut created: Option<String> = None;
            let (active_name, active_index) = match adopted {
                Some((index, name)) => {
                    load_segment_lenient(&*backend, &name, true)?;
                    (name, index)
                }
                None => {
                    let index = m.max_index() + 1;
                    let name = segment_name(Some(writer), index);
                    // Truncate any stray left by a dead incarnation's
                    // interrupted compaction (private namespace: no
                    // race with other writers).
                    backend.put(&name, b"")?;
                    m.actives.push(name.clone());
                    created = Some(name.clone());
                    changed = true;
                    (name, index)
                }
            };

            let revision = if changed {
                match backend.commit_manifest(&m.to_bytes(), revision)? {
                    Ok(rev) => rev,
                    Err(_) => {
                        // Lost the registration race; discard the
                        // pre-created segment (the redo recomputes its
                        // index against the winner's manifest) and redo.
                        if let Some(name) = created {
                            let _ = backend.delete(&name);
                        }
                        cas_retry(&mut backoff, "writer registration")?;
                        continue;
                    }
                }
            } else {
                revision
            };

            // Replay the committed view: sealed strictly, actives
            // leniently (other writers may be mid-append; ours was
            // just repaired). A NotFound means a concurrent compaction
            // deleted a segment from under our manifest view — restart
            // against the manifest it committed (our registration is
            // already durable, so the retry adopts it unchanged).
            let replay = match replay_manifest(&*backend, &m) {
                Ok(r) => r,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    cas_retry(&mut backoff, "open replay")?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let active_records = replay.active_counts.get(&active_name).copied().unwrap_or(0);
            let foreign_active = m.actives.iter().filter(|n| **n != active_name).cloned().collect();
            return Ok(TrialStore {
                backend,
                dir: None,
                writer: Some(writer.to_string()),
                read_only: false,
                opts,
                tracer: Mutex::new(Arc::new(NoopTracer)),
                inner: Mutex::new(Inner {
                    sealed: m.sealed,
                    foreign_active,
                    active_name,
                    active_index,
                    active_records,
                    manifest_revision: revision,
                    sessions: replay.sessions,
                    trial_records: replay.trial_records,
                }),
            });
        }
    }

    /// Opens a read-only *merged view* of a store: sealed segments plus
    /// every registered writer's active segment (and the implicit
    /// active of a single-writer store). Registers nothing and repairs
    /// nothing; appends and compaction return errors. Call
    /// [`TrialStore::refresh`] to re-read the current state.
    pub fn open_reader(
        backend: Arc<dyn StoreBackend>,
        opts: StoreOptions,
    ) -> io::Result<TrialStore> {
        let store = TrialStore {
            backend,
            dir: None,
            writer: None,
            read_only: true,
            opts,
            tracer: Mutex::new(Arc::new(NoopTracer)),
            inner: Mutex::new(Inner {
                sealed: Vec::new(),
                foreign_active: Vec::new(),
                active_name: String::new(),
                active_index: 0,
                active_records: 0,
                manifest_revision: 0,
                sessions: BTreeMap::new(),
                trial_records: 0,
            }),
        };
        store.refresh()?;
        Ok(store)
    }

    /// Re-reads the store's committed state from the backend, merging
    /// in what other fleet writers have appended since this handle
    /// opened (or last refreshed). The handle's own active segment and
    /// append position are untouched. No-op on single-writer handles —
    /// their in-memory index is already authoritative.
    pub fn refresh(&self) -> io::Result<()> {
        if self.writer.is_none() && !self.read_only {
            return Ok(());
        }
        let mut guard = lock_recover(&self.inner);
        let inner = &mut *guard;
        let mut backoff = cas_backoff(self.writer.as_deref().unwrap_or("reader"));
        loop {
            let (bytes, revision) = self.backend.read_manifest()?;
            let Some(bytes) = bytes else {
                return Ok(());
            };
            let m = Manifest::parse(&bytes)?;
            let replay = match replay_manifest(&*self.backend, &m) {
                Ok(r) => r,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A concurrent compaction deleted a segment from
                    // under this manifest view; retry against the
                    // manifest it committed. If nothing moved, the
                    // segment is genuinely gone: real corruption.
                    let (_, now) = self.backend.read_manifest()?;
                    if now == revision {
                        return Err(e);
                    }
                    cas_retry(&mut backoff, "refresh replay")?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            inner.foreign_active =
                m.actives.iter().filter(|n| **n != inner.active_name).cloned().collect();
            inner.active_records = replay
                .active_counts
                .get(&inner.active_name)
                .copied()
                .unwrap_or(inner.active_records);
            inner.sealed = m.sealed;
            inner.sessions = replay.sessions;
            inner.trial_records = replay.trial_records;
            inner.manifest_revision = revision;
            return Ok(());
        }
    }

    /// The store's root directory (local-directory stores only).
    ///
    /// # Panics
    /// When the store was opened on a non-directory backend.
    pub fn dir(&self) -> &Path {
        self.dir.as_deref().expect("dir() requires a local-directory store")
    }

    /// The backend this store reads and writes through.
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// The fleet writer tag of this handle ([`TrialStore::open_shared`]).
    pub fn writer(&self) -> Option<&str> {
        self.writer.as_deref()
    }

    /// Installs an observability tracer on this handle. Store spans
    /// (`store.append`, `store.rotate`, `store.compact`) flow to it;
    /// the default is [`NoopTracer`], which discards everything.
    pub fn set_tracer(&self, tracer: Arc<dyn Tracer>) {
        *lock_recover(&self.tracer) = tracer;
    }

    /// Records one span if a live tracer is installed. `make` runs only
    /// when tracing is on, so untraced stores skip field formatting.
    fn trace(&self, make: impl FnOnce() -> TraceEvent) {
        let tracer = lock_recover(&self.tracer).clone();
        if tracer.enabled() {
            tracer.record(make());
        }
    }

    /// Writes a telemetry object (`telemetry-<name>`) next to the trial
    /// segments. Telemetry objects never match the `seg-` pattern and
    /// are never listed in the manifest, so they cannot perturb
    /// recovery, checkpoint bytes, or compaction.
    pub fn put_telemetry(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.backend.put(&format!("telemetry-{name}"), bytes)
    }

    /// Reads a telemetry object written by [`TrialStore::put_telemetry`].
    pub fn read_telemetry(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.backend.get(&format!("telemetry-{name}"))
    }

    /// Every telemetry object in the store, sorted, without the
    /// `telemetry-` prefix (e.g. `w0.trace.jsonl`, `fleet.metrics.json`).
    /// A fleet run leaves one `.trace.jsonl`/`.metrics.json` pair per
    /// writer tag plus the merged `fleet` pair.
    pub fn list_telemetry(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = self
            .backend
            .list()?
            .into_iter()
            .filter_map(|n| n.strip_prefix("telemetry-").map(str::to_string))
            .collect();
        names.sort();
        Ok(names)
    }

    /// Appends one trial record (one backend `append` per record; the
    /// record is durable to the backend's append contract on return).
    pub fn append_trial(&self, trial: &StoredTrial) -> io::Result<()> {
        self.append(StoreRecord::Trial(trial.clone()))
    }

    /// Appends one session-metadata record (latest record wins on load).
    pub fn append_session(&self, meta: &SessionMeta) -> io::Result<()> {
        self.append(StoreRecord::Session(meta.clone()))
    }

    fn append(&self, rec: StoreRecord) -> io::Result<()> {
        if self.read_only {
            return Err(read_only_err());
        }
        let mut guard = lock_recover(&self.inner);
        let inner = &mut *guard;
        let line = format!("{}\n", record_to_json(&rec));
        self.backend.append(&inner.active_name, line.as_bytes())?;
        inner.active_records += 1;
        // Attributed to the record's session: each live session appends
        // from exactly one thread, so per-session span order is
        // deterministic even when sessions interleave on the store.
        self.trace(|| {
            let (session, kind) = match &rec {
                StoreRecord::Trial(t) => (t.session.clone(), "trial"),
                StoreRecord::Session(m) => (m.session.clone(), "session"),
            };
            TraceEvent::new(session, "store.append")
                .field("object", inner.active_name.clone())
                .field("kind", kind)
        });
        apply_record(&mut inner.sessions, &mut inner.trial_records, rec);
        if inner.active_records >= self.opts.segment_records {
            self.rotate(inner)?;
        }
        Ok(())
    }

    /// Seals the active segment: sync it, commit a manifest naming it,
    /// start a fresh active segment. On any failure the current active
    /// segment stays in place, so appends keep working (returning
    /// errors rather than panicking) and rotation is retried at the
    /// next threshold crossing.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        self.backend.sync(&inner.active_name)?;
        match self.writer.clone() {
            None => self.rotate_single(inner),
            Some(w) => self.rotate_shared(inner, &w),
        }
    }

    fn rotate_single(&self, inner: &mut Inner) -> io::Result<()> {
        // Open the next segment *before* committing the manifest: a
        // failure here leaves only an empty, unlisted file behind, and
        // the store state (in memory and on backend) is unchanged.
        let next_index = inner.active_index + 1;
        let next_name = segment_name(None, next_index);
        // Truncate before adopting: a compaction that crashed before
        // its manifest commit can leave a stray file at this index
        // whose stale records would otherwise be replayed *after* newer
        // ones and win the last-wins resolution.
        self.backend.put(&next_name, b"")?;
        let mut sealed = inner.sealed.clone();
        sealed.push(inner.active_name.clone());
        let manifest = Manifest { sealed: sealed.clone(), actives: Vec::new() };
        let revision = self
            .backend
            .commit_manifest(&manifest.to_bytes(), inner.manifest_revision)?
            .map_err(|_| {
                io::Error::other(
                    "manifest changed under a single-writer store: another writer is live",
                )
            })?;
        self.trace(|| {
            TraceEvent::new("store", "store.rotate")
                .field("sealed", inner.active_name.clone())
                .field("next", next_name.clone())
        });
        inner.sealed = sealed;
        inner.active_name = next_name;
        inner.active_index = next_index;
        inner.active_records = 0;
        inner.manifest_revision = revision;
        Ok(())
    }

    fn rotate_shared(&self, inner: &mut Inner, writer: &str) -> io::Result<()> {
        // CAS retry loop: rebase the seal onto whatever manifest is
        // current. Losing the race never drops anyone's segment — the
        // retry re-reads the winner's list and adds to it.
        let mut backoff = cas_backoff(writer);
        loop {
            let (bytes, revision) = self.backend.read_manifest()?;
            let bytes = bytes.ok_or_else(|| corrupt("fleet store manifest vanished"))?;
            let mut m = Manifest::parse(&bytes)?;
            let pos = m.actives.iter().position(|n| n == &inner.active_name).ok_or_else(|| {
                corrupt(format!(
                    "active segment {} missing from the manifest: writer tag {writer:?} \
                     reclaimed by another live worker?",
                    inner.active_name
                ))
            })?;
            m.actives.remove(pos);
            m.sealed.push(inner.active_name.clone());
            let next_index = m.max_index().max(inner.active_index) + 1;
            let next_name = segment_name(Some(writer), next_index);
            self.backend.put(&next_name, b"")?;
            m.actives.push(next_name.clone());
            match self.backend.commit_manifest(&m.to_bytes(), revision)? {
                Ok(rev) => {
                    self.trace(|| {
                        TraceEvent::new("store", "store.rotate")
                            .field("sealed", inner.active_name.clone())
                            .field("next", next_name.clone())
                    });
                    inner.foreign_active =
                        m.actives.iter().filter(|n| **n != next_name).cloned().collect();
                    inner.sealed = m.sealed;
                    inner.active_name = next_name;
                    inner.active_index = next_index;
                    inner.active_records = 0;
                    inner.manifest_revision = rev;
                    return Ok(());
                }
                Err(_) => {
                    // Lost the race: discard the pre-created segment —
                    // the retry recomputes a fresh index against the
                    // winner's manifest, and nothing ever references
                    // this one (unlisted objects would otherwise leak
                    // forever on a real object store).
                    let _ = self.backend.delete(&next_name);
                    cas_retry(&mut backoff, "rotation")?;
                    continue;
                }
            }
        }
    }

    /// Syncs the active segment (sealed segments are already synced).
    pub fn sync(&self) -> io::Result<()> {
        if self.read_only {
            return Ok(());
        }
        let inner = lock_recover(&self.inner);
        self.backend.sync(&inner.active_name)
    }

    /// Sealed segment names, in manifest order (for tests and tooling).
    pub fn sealed_segments(&self) -> Vec<String> {
        lock_recover(&self.inner).sealed.clone()
    }

    /// Labels of every stored session, sorted.
    pub fn sessions(&self) -> Vec<String> {
        lock_recover(&self.inner).sessions.keys().cloned().collect()
    }

    /// Latest metadata of a session, if any was recorded.
    pub fn session_meta(&self, session: &str) -> Option<SessionMeta> {
        lock_recover(&self.inner).sessions.get(session).and_then(|e| e.meta.clone())
    }

    /// A session's trials, deduplicated last-wins and sorted by
    /// iteration, truncated at the first gap (a gap cannot arise from
    /// the append protocol; truncating keeps a damaged store usable).
    pub fn trials_for(&self, session: &str) -> Vec<StoredTrial> {
        let inner = lock_recover(&self.inner);
        let Some(entry) = inner.sessions.get(session) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(entry.trials.len());
        for (expected, (&iteration, trial)) in entry.trials.iter().enumerate() {
            if iteration != expected {
                break;
            }
            out.push(trial.clone());
        }
        out
    }

    /// A session's trials as the session loop's replay units.
    pub fn prior_trials(&self, session: &str) -> Vec<PriorTrial> {
        self.trials_for(session).iter().map(StoredTrial::to_prior).collect()
    }

    /// Number of distinct `(session, iteration)` trials stored.
    pub fn trial_count(&self) -> usize {
        let inner = lock_recover(&self.inner);
        inner.sessions.values().map(|e| e.trials.len()).sum()
    }

    /// Number of trial *records* appended (re-runs of a partial round
    /// append duplicates, so this can exceed [`TrialStore::trial_count`]).
    pub fn trial_records(&self) -> usize {
        lock_recover(&self.inner).trial_records
    }

    /// Whether the store holds no trials.
    pub fn is_empty(&self) -> bool {
        self.trial_count() == 0
    }

    /// Rewrites the store with its logical state only: one metadata
    /// record per session (the latest — superseded status updates are
    /// dropped) followed by its trials with `(session, iteration)`
    /// last-wins deduplication applied. Resumed campaigns re-run partial
    /// trailing rounds and append duplicate records by design; a
    /// campaign resumed many times accretes them, and compaction
    /// reclaims the space without changing anything a reader can see:
    /// [`TrialStore::export_jsonl`], [`TrialStore::trials_for`], and
    /// session metadata are identical before and after (pinned by the
    /// checkpoint-resume test suite). An *empty* store is left
    /// untouched — no fresh manifest revision is committed, so idle
    /// workers polling `compact` do not churn shared backends.
    ///
    /// Crash safety follows the rotation protocol: compacted segments
    /// are written to fresh (higher-numbered) objects, then a manifest
    /// naming exactly those segments is committed (rename on local
    /// directories, CAS on object stores), then the superseded objects
    /// are deleted best-effort. A crash before the commit leaves the
    /// old manifest — and therefore the old store — fully intact; stray
    /// compacted objects are inert (recovery only reads manifest-listed
    /// segments plus the derived active name) and are truncated before
    /// reuse when the segment sequence later reaches their index.
    ///
    /// On a fleet store the pass rebuilds the merged state from the
    /// *current* manifest under a CAS retry loop, folds this writer's
    /// active segment in, and leaves every other writer's active
    /// segment registered and untouched — racing rotations retry on
    /// top of the compacted manifest, so no committed trial is lost.
    pub fn compact(&self) -> io::Result<CompactionStats> {
        if self.read_only {
            return Err(read_only_err());
        }
        let mut guard = lock_recover(&self.inner);
        let inner = &mut *guard;
        // Satellite of the backend work: a store with nothing on the
        // backend but an (empty or absent) active segment has nothing
        // to rewrite; committing a fresh manifest revision would only
        // churn revisions and mtimes on shared backends.
        if inner.sealed.is_empty() && inner.foreign_active.is_empty() && inner.active_records == 0 {
            return Ok(CompactionStats {
                trial_records_before: inner.trial_records,
                trial_records_after: inner.trial_records,
                segments_before: 1,
                segments_after: 1,
            });
        }
        match self.writer.clone() {
            None => self.compact_single(inner),
            Some(w) => self.compact_shared(inner, &w),
        }
    }

    fn compact_single(&self, inner: &mut Inner) -> io::Result<CompactionStats> {
        self.backend.sync(&inner.active_name)?;
        let old_segments: Vec<String> =
            inner.sealed.iter().cloned().chain([inner.active_name.clone()]).collect();
        let records_before = inner.trial_records;

        // Serialize the deduplicated state, session by session.
        let records = serialize_sessions(&inner.sessions);

        // Write the compacted run into fresh segment files past the
        // current active index, fully synced before the manifest commit.
        let (new_sealed, new_active_index) =
            self.write_compacted(&records, inner.active_index, None)?;
        let new_active_name = segment_name(None, new_active_index);

        // Commit point.
        let manifest = Manifest { sealed: new_sealed.clone(), actives: Vec::new() };
        let revision = self
            .backend
            .commit_manifest(&manifest.to_bytes(), inner.manifest_revision)?
            .map_err(|_| {
                io::Error::other(
                    "manifest changed under a single-writer store: another writer is live",
                )
            })?;
        let segments_before = old_segments.len();
        inner.sealed = new_sealed;
        inner.active_name = new_active_name;
        inner.active_index = new_active_index;
        inner.active_records = 0;
        inner.manifest_revision = revision;
        inner.trial_records = inner.sessions.values().map(|e| e.trials.len()).sum();
        let stats = CompactionStats {
            trial_records_before: records_before,
            trial_records_after: inner.trial_records,
            segments_before,
            segments_after: inner.sealed.len() + 1,
        };
        self.trace(|| compact_span(&stats));

        // The old objects are unreachable from the new manifest;
        // deletion is cleanup, not correctness.
        for name in old_segments {
            let _ = self.backend.delete(&name);
        }
        Ok(stats)
    }

    fn compact_shared(&self, inner: &mut Inner, writer: &str) -> io::Result<CompactionStats> {
        self.backend.sync(&inner.active_name)?;
        let mut backoff = cas_backoff(writer);
        loop {
            // Rebuild the merged state fresh from the *current*
            // manifest — this handle's index may lag other writers.
            let (bytes, revision) = self.backend.read_manifest()?;
            let bytes = bytes.ok_or_else(|| corrupt("fleet store manifest vanished"))?;
            let m = Manifest::parse(&bytes)?;
            if !m.actives.contains(&inner.active_name) {
                return Err(corrupt(format!(
                    "active segment {} missing from the manifest: writer tag {writer:?} \
                     reclaimed by another live worker?",
                    inner.active_name
                )));
            }
            let replay = match replay_manifest(&*self.backend, &m) {
                Ok(r) => r,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A concurrent compaction won and deleted segments
                    // from under this view; rebase onto its manifest.
                    let (_, now) = self.backend.read_manifest()?;
                    if now == revision {
                        return Err(e);
                    }
                    cas_retry(&mut backoff, "compaction replay")?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let (sessions, records_before) = (replay.sessions, replay.trial_records);
            let records = serialize_sessions(&sessions);

            let base_index = m.max_index().max(inner.active_index);
            let (new_sealed, new_active_index) =
                self.write_compacted(&records, base_index, Some(writer))?;
            let new_active_name = segment_name(Some(writer), new_active_index);

            // Every other writer's active segment stays registered and
            // untouched: its owner keeps appending to it, and the
            // records of it we folded into the compacted segments are
            // merely benign duplicates under last-wins.
            let mut actives: Vec<String> =
                m.actives.iter().filter(|n| **n != inner.active_name).cloned().collect();
            actives.push(new_active_name.clone());
            let manifest = Manifest { sealed: new_sealed.clone(), actives: actives.clone() };
            match self.backend.commit_manifest(&manifest.to_bytes(), revision)? {
                Ok(rev) => {
                    let segments_before = m.sealed.len() + m.actives.len();
                    for name in m.sealed.iter().chain([&inner.active_name]) {
                        let _ = self.backend.delete(name);
                    }
                    inner.foreign_active =
                        actives.iter().filter(|n| **n != new_active_name).cloned().collect();
                    inner.sealed = new_sealed;
                    inner.active_name = new_active_name;
                    inner.active_index = new_active_index;
                    inner.active_records = 0;
                    inner.manifest_revision = rev;
                    inner.trial_records = sessions.values().map(|e| e.trials.len()).sum::<usize>();
                    let trial_records_after = inner.trial_records;
                    inner.sessions = sessions;
                    let stats = CompactionStats {
                        trial_records_before: records_before,
                        trial_records_after,
                        segments_before,
                        segments_after: inner.sealed.len() + inner.foreign_active.len() + 1,
                    };
                    self.trace(|| compact_span(&stats));
                    return Ok(stats);
                }
                Err(_) => {
                    // Lost the race: discard this attempt's objects and
                    // rebuild against the winner's manifest.
                    for name in new_sealed.iter().chain([&new_active_name]) {
                        let _ = self.backend.delete(name);
                    }
                    cas_retry(&mut backoff, "compaction")?;
                    continue;
                }
            }
        }
    }

    /// Writes `records` into fresh sealed segments numbered past
    /// `base_index` (in `writer`'s namespace), plus a fresh empty
    /// active segment after them. Returns the sealed names and the new
    /// active index.
    fn write_compacted(
        &self,
        records: &[String],
        base_index: usize,
        writer: Option<&str>,
    ) -> io::Result<(Vec<String>, usize)> {
        let mut new_sealed = Vec::new();
        let mut idx = base_index;
        for chunk in records.chunks(self.opts.segment_records.max(1)) {
            idx += 1;
            let name = segment_name(writer, idx);
            let mut text = String::with_capacity(chunk.iter().map(|r| r.len() + 1).sum());
            for rec in chunk {
                text.push_str(rec);
                text.push('\n');
            }
            self.backend.put(&name, text.as_bytes())?;
            new_sealed.push(name);
        }
        let new_active_index = idx + 1;
        // Truncate any stray file left by an earlier interrupted
        // compaction, then adopt as the (empty) active segment.
        self.backend.put(&segment_name(writer, new_active_index), b"")?;
        Ok((new_sealed, new_active_index))
    }

    /// Every stored trial projected onto the core JSONL event schema,
    /// sorted by session label then iteration — the canonical export.
    /// Deduplication is last-wins, so a store that recorded a crash and
    /// a resume exports exactly the transcript of the uninterrupted run.
    pub fn export_events(&self) -> Vec<TrialEvent> {
        let inner = lock_recover(&self.inner);
        let mut out = Vec::with_capacity(inner.sessions.values().map(|e| e.trials.len()).sum());
        for entry in inner.sessions.values() {
            out.extend(entry.trials.values().map(StoredTrial::to_event));
        }
        out
    }

    /// [`TrialStore::export_events`] rendered as JSONL.
    pub fn export_jsonl(&self) -> String {
        events_to_jsonl(&self.export_events())
    }
}

/// One JSON line per logical record: each session's latest metadata,
/// then its deduplicated trials in iteration order.
fn serialize_sessions(sessions: &BTreeMap<String, SessionEntry>) -> Vec<String> {
    let mut records: Vec<String> = Vec::new();
    for entry in sessions.values() {
        if let Some(m) = &entry.meta {
            records.push(record_to_json(&StoreRecord::Session(m.clone())));
        }
        for t in entry.trials.values() {
            records.push(record_to_json(&StoreRecord::Trial(t.clone())));
        }
    }
    records
}

fn apply_record(
    sessions: &mut BTreeMap<String, SessionEntry>,
    trial_records: &mut usize,
    rec: StoreRecord,
) {
    match rec {
        StoreRecord::Trial(t) => {
            *trial_records += 1;
            sessions.entry(t.session.clone()).or_default().trials.insert(t.iteration, t);
        }
        StoreRecord::Session(m) => {
            let label = m.session.clone();
            sessions.entry(label).or_default().meta = Some(m);
        }
    }
}

/// Rebuilds a [`llamatune::session::SessionHistory`] from a *complete*
/// stored session without re-running anything: scores and raw scores are
/// read back, the best curve is re-folded, and `stopped_at` comes from
/// the session's metadata.
pub fn rebuild_history(
    trials: &[StoredTrial],
    stopped_at: Option<usize>,
) -> llamatune::session::SessionHistory {
    let mut history = llamatune::session::SessionHistory {
        configs: Vec::with_capacity(trials.len()),
        points: Vec::with_capacity(trials.len()),
        scores: Vec::with_capacity(trials.len()),
        raw_scores: Vec::with_capacity(trials.len()),
        best_curve: Vec::with_capacity(trials.len()),
        statuses: Vec::with_capacity(trials.len()),
        attempts: Vec::with_capacity(trials.len()),
        degradations: Vec::new(),
        stopped_at,
    };
    let mut best = f64::NEG_INFINITY;
    for t in trials {
        history.configs.push(llamatune_space::Config::new(t.config.clone()));
        history.points.push(t.point.clone());
        history.scores.push(t.score);
        history.raw_scores.push(t.raw_score);
        history.statuses.push(t.status);
        history.attempts.push(t.attempts.max(1));
        if t.iteration == 0 {
            history.best_curve.push(t.score);
        } else {
            best = best.max(t.score);
            history.best_curve.push(best);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ObjectStoreBackend, ObjectStoreOptions};
    use crate::record::SessionStatus;
    use llamatune_space::KnobValue;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("llamatune_store_unit")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trial(session: &str, iteration: usize, score: f64) -> StoredTrial {
        StoredTrial {
            session: session.to_string(),
            iteration,
            raw_score: Some(score),
            score,
            point: if iteration == 0 { vec![] } else { vec![score / 10.0, 0.5] },
            config: vec![KnobValue::Int(iteration as i64), KnobValue::Cat(1)],
            metrics: vec![score, 0.0],
            status: llamatune::session::TrialStatus::Ok,
            attempts: 1,
        }
    }

    fn meta(session: &str, status: SessionStatus) -> SessionMeta {
        SessionMeta {
            session: session.to_string(),
            workload: "ycsb_a".to_string(),
            adapter: "identity/s1".to_string(),
            status,
            stopped_at: None,
            fingerprint: vec![0.6, 0.8],
            warm_points: vec![],
            lease: None,
        }
    }

    #[test]
    fn append_reopen_preserves_everything() {
        let dir = tmp_dir("reopen");
        {
            let store = TrialStore::open(&dir).unwrap();
            store.append_session(&meta("s1", SessionStatus::Running)).unwrap();
            for i in 0..5 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
            store.append_session(&meta("s1", SessionStatus::Done)).unwrap();
        }
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.sessions(), vec!["s1".to_string()]);
        assert_eq!(store.trial_count(), 5);
        assert_eq!(store.session_meta("s1").unwrap().status, SessionStatus::Done);
        let trials = store.trials_for("s1");
        assert_eq!(trials.len(), 5);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.iteration, i);
            assert_eq!(t.score, i as f64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_seals_segments_through_the_manifest() {
        let dir = tmp_dir("rotate");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 3 }).unwrap();
        for i in 0..8 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        assert_eq!(store.sealed_segments().len(), 2, "8 records at 3/segment: 2 sealed");
        let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
        assert!(manifest.starts_with(MANIFEST_HEADER));
        assert!(manifest.contains("seg-000001.jsonl"));
        assert!(manifest.contains("seg-000002.jsonl"));
        assert!(!manifest.contains("seg-000003.jsonl"), "active segment is not sealed");
        // Reload sees all 8 trials across the 3 segments.
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 8);
        assert_eq!(store.sealed_segments().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated() {
        let dir = tmp_dir("torn");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..4 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Tear the last record mid-way, as a crash during write would.
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        let cut = text.len() - 17;
        std::fs::write(&seg, &text[..cut]).unwrap();

        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 3, "torn trial dropped");
        drop(store);
        // The file was truncated back to complete records: reopening
        // again parses cleanly and appending continues from there.
        let store = TrialStore::open(&dir).unwrap();
        store.append_trial(&trial("s1", 3, 30.0)).unwrap();
        assert_eq!(store.trial_count(), 4);
        assert_eq!(store.trials_for("s1")[3].score, 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_between_brace_and_newline_keeps_the_record_and_repairs_the_line() {
        let dir = tmp_dir("newline_tear");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..3 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Tear exactly after the final '}' but before its '\n': the
        // record is complete; only the terminator is lost.
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        std::fs::write(&seg, text.trim_end_matches('\n')).unwrap();

        // Recovery keeps all three records (the append was acknowledged
        // with Ok — dropping it would be silent data loss)...
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 3, "complete final record survives");
        // ...and the next append must start on its own line, so a
        // further reopen still sees every record.
        store.append_trial(&trial("s1", 3, 30.0)).unwrap();
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 4, "no concatenated-line loss after the repair");
        assert_eq!(store.trials_for("s1")[3].score, 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interleaved_garbage_is_rejected() {
        let dir = tmp_dir("garbage");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..3 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "!!! garbage");
        std::fs::write(&seg, lines.join("\n")).unwrap();
        let err = TrialStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_is_an_error_even_at_the_tail() {
        let dir = tmp_dir("sealed_strict");
        {
            let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 2 }).unwrap();
            for i in 0..4 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Tear the *sealed* first segment: sealed segments are parsed
        // strictly, so even a torn final line is corruption.
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        std::fs::write(&seg, &text[..text.len() - 5]).unwrap();
        assert!(TrialStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_iterations_resolve_last_wins_in_queries_and_export() {
        let dir = tmp_dir("dup");
        let store = TrialStore::open(&dir).unwrap();
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        store.append_trial(&trial("s1", 1, 2.0)).unwrap();
        store.append_trial(&trial("s1", 1, 99.0)).unwrap(); // resume re-ran iteration 1
        assert_eq!(store.trial_count(), 2);
        assert_eq!(store.trial_records(), 3);
        assert_eq!(store.trials_for("s1")[1].score, 99.0);
        let events = store.export_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].score, 99.0);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn export_orders_by_session_then_iteration() {
        let dir = tmp_dir("export");
        let store = TrialStore::open(&dir).unwrap();
        // Interleave appends across sessions, as concurrent lanes do.
        store.append_trial(&trial("b", 0, 1.0)).unwrap();
        store.append_trial(&trial("a", 0, 2.0)).unwrap();
        store.append_trial(&trial("b", 1, 3.0)).unwrap();
        store.append_trial(&trial("a", 1, 4.0)).unwrap();
        let events = store.export_events();
        let order: Vec<(String, usize)> =
            events.iter().map(|e| (e.session.clone(), e.iteration)).collect();
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 0),
                ("a".to_string(), 1),
                ("b".to_string(), 0),
                ("b".to_string(), 1)
            ]
        );
        let jsonl = store.export_jsonl();
        let parsed = llamatune::history_io::events_from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, events);
        assert!(llamatune::history_io::session_curves(&parsed).is_ok());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn trials_truncate_at_gaps() {
        let dir = tmp_dir("gap");
        let store = TrialStore::open(&dir).unwrap();
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        store.append_trial(&trial("s1", 2, 3.0)).unwrap(); // gap at 1
        assert_eq!(store.trials_for("s1").len(), 1);
        assert_eq!(store.prior_trials("s1").len(), 1);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rebuild_history_refolds_the_best_curve() {
        let trials: Vec<StoredTrial> =
            [5.0, 3.0, 8.0, 2.0, 9.0].iter().enumerate().map(|(i, &s)| trial("s1", i, s)).collect();
        let h = rebuild_history(&trials, None);
        assert_eq!(h.scores, vec![5.0, 3.0, 8.0, 2.0, 9.0]);
        assert_eq!(h.best_curve, vec![5.0, 3.0, 8.0, 8.0, 9.0]);
        assert_eq!(h.best_score(), Some(9.0));
        assert_eq!(h.default_score(), 5.0);
        let stopped = rebuild_history(&trials, Some(4));
        assert_eq!(stopped.stopped_at, Some(4));
    }

    #[test]
    fn compact_dedups_trials_and_drops_superseded_meta() {
        let dir = tmp_dir("compact");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 4 }).unwrap();
        store.append_session(&meta("s1", SessionStatus::Running)).unwrap();
        for i in 0..5 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        // A resumed partial round re-runs iterations 3 and 4.
        store.append_trial(&trial("s1", 3, 33.0)).unwrap();
        store.append_trial(&trial("s1", 4, 44.0)).unwrap();
        store.append_session(&meta("s1", SessionStatus::Done)).unwrap();
        let export_before = store.export_jsonl();
        assert_eq!(store.trial_records(), 7);
        assert_eq!(store.trial_count(), 5);

        let stats = store.compact().unwrap();
        assert_eq!(stats.trial_records_before, 7);
        assert_eq!(stats.trial_records_after, 5);
        assert!(stats.segments_after <= stats.segments_before);
        assert_eq!(store.trial_records(), 5, "duplicates rewritten away");
        assert_eq!(store.export_jsonl(), export_before, "logical state unchanged");
        assert_eq!(store.session_meta("s1").unwrap().status, SessionStatus::Done);
        assert_eq!(store.trials_for("s1")[3].score, 33.0, "last-wins winners survive");

        // The rewritten store reopens cleanly (non-dense segment
        // numbering) and keeps accepting appends.
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.export_jsonl(), export_before);
        assert_eq!(store.trial_records(), 5);
        store.append_trial(&trial("s1", 5, 55.0)).unwrap();
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 6);
        // Exactly one metadata record per session remains on disk.
        let mut meta_lines = 0;
        for name in store.sealed_segments() {
            let text = std::fs::read_to_string(dir.join(&name)).unwrap();
            meta_lines += text.lines().filter(|l| l.contains("\"kind\":\"session\"")).count();
        }
        assert_eq!(meta_lines, 1, "superseded Running meta dropped");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn compact_is_idempotent_and_handles_empty_stores() {
        let dir = tmp_dir("compact_idem");
        let store = TrialStore::open(&dir).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.trial_records_after, 0);
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        store.compact().unwrap();
        let export = store.export_jsonl();
        let again = store.compact().unwrap();
        assert_eq!(again.trial_records_before, again.trial_records_after);
        assert_eq!(store.export_jsonl(), export);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn compact_on_an_empty_store_is_a_true_noop() {
        let dir = tmp_dir("compact_noop");
        let store = TrialStore::open(&dir).unwrap();
        let manifest_before = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
        let files_before: Vec<String> = store.backend().list().unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.segments_before, stats.segments_after);
        assert_eq!(
            std::fs::read_to_string(dir.join("MANIFEST")).unwrap(),
            manifest_before,
            "no fresh manifest revision on an empty store"
        );
        assert_eq!(store.backend().list().unwrap(), files_before, "no new objects either");
        // Once the store holds anything, compaction works as usual.
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.trial_records_after, 1);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rotation_continues_after_compaction() {
        let dir = tmp_dir("compact_rotate");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 3 }).unwrap();
        for i in 0..7 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        store.compact().unwrap();
        // Keep appending past the rotation threshold: sealing must use
        // fresh indices beyond the compacted ones.
        for i in 7..14 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 14);
        let names = store.sealed_segments();
        let indices: Vec<usize> = names.iter().map(|n| super::segment_index(n).unwrap()).collect();
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "manifest indices strictly increase (no reuse after compaction): {names:?}"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rotation_truncates_stray_segment_files() {
        let dir = tmp_dir("stray");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 2 }).unwrap();
        // A compaction that crashed before its manifest rename leaves a
        // stray file at a future segment index; its stale records must
        // not be adopted when rotation reaches that index.
        let stale = format!(
            "{}\n",
            record_to_json(&StoreRecord::Session(meta("ghost", SessionStatus::Running)))
        );
        std::fs::write(dir.join(segment_name(None, 2)), stale).unwrap();
        for i in 0..3 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        assert_eq!(store.sealed_segments(), vec![segment_name(None, 1)], "rotation happened");
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 3);
        assert!(
            store.session_meta("ghost").is_none(),
            "stale records in a stray segment must not resurface"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn fresh_store_creates_manifest_and_is_empty() {
        let dir = tmp_dir("fresh");
        let store = TrialStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(store.sessions().is_empty());
        assert!(dir.join("MANIFEST").exists());
        assert!(store.export_events().is_empty());
        store.sync().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // ------------------------------------------------------------------
    // Backend-parameterized and fleet-mode behavior
    // ------------------------------------------------------------------

    fn object_backend() -> Arc<ObjectStoreBackend> {
        Arc::new(ObjectStoreBackend::new(ObjectStoreOptions { eventual_list: true }))
    }

    #[test]
    fn single_writer_store_works_identically_on_an_object_backend() {
        let be = object_backend();
        {
            let store =
                TrialStore::open_backend(be.clone(), StoreOptions { segment_records: 3 }).unwrap();
            store.append_session(&meta("s1", SessionStatus::Running)).unwrap();
            for i in 0..8 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
            store.append_session(&meta("s1", SessionStatus::Done)).unwrap();
            assert!(store.sealed_segments().len() >= 2, "rotation CAS-committed");
        }
        // Reopen on the same backend: everything survives, including
        // through a compaction cycle.
        let store = TrialStore::open_backend(be.clone(), StoreOptions::default()).unwrap();
        assert_eq!(store.trial_count(), 8);
        assert_eq!(store.session_meta("s1").unwrap().status, SessionStatus::Done);
        let export = store.export_jsonl();
        store.compact().unwrap();
        assert_eq!(store.export_jsonl(), export);
        drop(store);
        let store = TrialStore::open_backend(be, StoreOptions::default()).unwrap();
        assert_eq!(store.export_jsonl(), export);
    }

    #[test]
    fn torn_object_append_recovers_like_a_torn_file() {
        let be = object_backend();
        {
            let store = TrialStore::open_backend(be.clone(), StoreOptions::default()).unwrap();
            for i in 0..4 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        let seg = "seg-000001.jsonl";
        let bytes = be.get(seg).unwrap().unwrap();
        be.put(seg, &bytes[..bytes.len() - 17]).unwrap();
        let store = TrialStore::open_backend(be, StoreOptions::default()).unwrap();
        assert_eq!(store.trial_count(), 3, "torn trial dropped");
        store.append_trial(&trial("s1", 3, 30.0)).unwrap();
        assert_eq!(store.trials_for("s1")[3].score, 30.0);
    }

    #[test]
    fn two_fleet_writers_share_one_store_through_manifest_cas() {
        let be = object_backend();
        let a =
            TrialStore::open_shared(be.clone(), "wa", StoreOptions { segment_records: 2 }).unwrap();
        let b =
            TrialStore::open_shared(be.clone(), "wb", StoreOptions { segment_records: 2 }).unwrap();
        for i in 0..5 {
            a.append_trial(&trial("sa", i, i as f64)).unwrap();
            b.append_trial(&trial("sb", i, 100.0 + i as f64)).unwrap();
        }
        // Each handle sees its open-time snapshot plus its own appends;
        // refresh merges in the other writer's records.
        assert_eq!(a.trials_for("sa").len(), 5);
        a.refresh().unwrap();
        assert_eq!(a.trials_for("sb").len(), 5, "refresh sees the other writer");
        // A reader sees the merged view without registering anything.
        let reader = TrialStore::open_reader(be.clone(), StoreOptions::default()).unwrap();
        assert_eq!(reader.trial_count(), 10);
        assert!(reader.append_trial(&trial("sx", 0, 1.0)).is_err(), "readers cannot write");
        assert!(reader.compact().is_err(), "readers cannot compact");
        // Compaction by one writer must not lose the other's records.
        a.compact().unwrap();
        for i in 5..8 {
            b.append_trial(&trial("sb", i, 100.0 + i as f64)).unwrap();
        }
        let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
        assert_eq!(reader.trials_for("sa").len(), 5);
        assert_eq!(reader.trials_for("sb").len(), 8);
    }

    #[test]
    fn fleet_writer_reclaims_its_dead_incarnations_segments() {
        let be = object_backend();
        {
            let w = TrialStore::open_shared(be.clone(), "w0", StoreOptions::default()).unwrap();
            for i in 0..3 {
                w.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
            // The worker "dies" here: its active segment stays listed.
        }
        // Tear the dead worker's active segment mid-record.
        let name = segment_name(Some("w0"), 1);
        let bytes = be.get(&name).unwrap().unwrap();
        be.put(&name, &bytes[..bytes.len() - 9]).unwrap();
        // The reborn worker repairs and adopts the segment and appends on.
        let w = TrialStore::open_shared(be.clone(), "w0", StoreOptions::default()).unwrap();
        assert_eq!(w.trial_count(), 2, "torn record dropped by the reclaim repair");
        w.append_trial(&trial("s1", 2, 2.0)).unwrap();
        let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
        assert_eq!(reader.trials_for("s1").len(), 3);
    }

    #[test]
    fn shared_open_adopts_a_single_writer_store_and_single_open_rejects_fleet_stores() {
        let dir = tmp_dir("adopt");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..4 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Fleet writers fold the single-writer store's implicit active
        // segment into the manifest and see its records.
        let be: Arc<dyn StoreBackend> = Arc::new(LocalDirBackend::create(&dir).unwrap());
        let w = TrialStore::open_shared(be.clone(), "w0", StoreOptions::default()).unwrap();
        assert_eq!(w.trial_count(), 4);
        w.append_trial(&trial("s1", 4, 4.0)).unwrap();
        drop(w);
        // A fleet store refuses the single-writer entry points.
        let err = TrialStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("fleet"), "{err}");
        // ...but the reader still serves the merged view.
        let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
        assert_eq!(reader.trials_for("s1").len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_rotation_and_compaction_race_on_a_local_backend_too() {
        // The same shared protocol runs on a local directory: the
        // backend's in-process CAS gate serializes the commits.
        let dir = tmp_dir("fleet_local");
        let be: Arc<dyn StoreBackend> = Arc::new(LocalDirBackend::create(&dir).unwrap());
        let a =
            TrialStore::open_shared(be.clone(), "a", StoreOptions { segment_records: 2 }).unwrap();
        let b =
            TrialStore::open_shared(be.clone(), "b", StoreOptions { segment_records: 2 }).unwrap();
        for i in 0..6 {
            a.append_trial(&trial("sa", i, i as f64)).unwrap();
            b.append_trial(&trial("sb", i, i as f64)).unwrap();
        }
        b.compact().unwrap();
        a.append_trial(&trial("sa", 6, 6.0)).unwrap();
        let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
        assert_eq!(reader.trials_for("sa").len(), 7);
        assert_eq!(reader.trials_for("sb").len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_writer_tags_are_rejected() {
        let be = object_backend();
        for bad in ["", "w-0", "w 0", "w/0"] {
            assert!(
                TrialStore::open_shared(be.clone(), bad, StoreOptions::default()).is_err(),
                "tag {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn session_lease_records_roundtrip_through_the_store() {
        let be = object_backend();
        let w = TrialStore::open_shared(be.clone(), "w1", StoreOptions::default()).unwrap();
        let mut m = meta("s1", SessionStatus::Running);
        m.lease = Some("w1".to_string());
        w.append_session(&m).unwrap();
        let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
        assert_eq!(reader.session_meta("s1").unwrap().lease.as_deref(), Some("w1"));
    }
}

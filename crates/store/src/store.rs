//! The append-only, crash-safe trial store.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   MANIFEST            # "llamatune-store v1" + one sealed segment per line
//!   seg-000001.jsonl    # sealed: listed in MANIFEST, immutable, fully valid
//!   seg-000002.jsonl    # active: highest-numbered, append-only, may be torn
//! ```
//!
//! Every segment line is one [`StoreRecord`] (see [`crate::record`]).
//! Appends go to the *active* segment — one `write` syscall per record,
//! flushed before the session loop starts its next round, so a crash
//! loses at most the round in flight. When the active segment reaches
//! [`StoreOptions::segment_records`] records it is *sealed*: the file is
//! fsynced, a new `MANIFEST` naming it is written to a temp file and
//! atomically renamed over the old one, and a fresh active segment
//! starts. The manifest rename is the commit point — a crash during
//! rotation leaves either the old manifest (segment still active, fully
//! replayable) or the new one (segment sealed); no state in between.
//!
//! ## Recovery
//!
//! Opening a store replays the manifest's sealed segments *strictly*
//! (they were fsynced before sealing, so any damage is real corruption
//! and surfaces as an error) and the active segment *leniently*: a final
//! line that fails to parse is a torn append — it is dropped and the
//! file truncated back to the last good record — while an unparsable
//! line with valid records after it means interleaved garbage and is
//! rejected. Duplicate `(session, iteration)` trials are legal and
//! resolve last-wins: a resumed session re-runs its partial trailing
//! round, deterministically overwriting the records the crash left
//! behind. (These are exactly the behaviors pinned by the core crate's
//! `events_from_jsonl` error-path tests.)

use crate::record::{record_from_json, record_to_json, SessionMeta, StoreRecord, StoredTrial};
use llamatune::history_io::{events_to_jsonl, TrialEvent};
use llamatune::session::PriorTrial;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MANIFEST_HEADER: &str = "llamatune-store v1";

/// What one [`TrialStore::compact`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Trial records on disk before compaction (duplicates included).
    pub trial_records_before: usize,
    /// Trial records after — one per distinct `(session, iteration)`.
    pub trial_records_after: usize,
    /// Segment files before (sealed + active).
    pub segments_before: usize,
    /// Segment files after (sealed + the fresh empty active).
    pub segments_after: usize,
}

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Records per segment before rotation (default 4096).
    pub segment_records: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { segment_records: 4096 }
    }
}

#[derive(Debug, Default)]
struct SessionEntry {
    /// Trials by iteration, last record wins.
    trials: BTreeMap<usize, StoredTrial>,
    /// Latest metadata record.
    meta: Option<SessionMeta>,
}

#[derive(Debug)]
struct Inner {
    sealed: Vec<String>,
    active_name: String,
    /// Numeric index of the active segment. Segment numbering is
    /// monotonically increasing but — after a [`TrialStore::compact`] —
    /// not necessarily dense, so the index is tracked explicitly rather
    /// than derived from `sealed.len()`.
    active_index: usize,
    active: File,
    active_records: usize,
    sessions: BTreeMap<String, SessionEntry>,
    trial_records: usize,
}

/// The persistent tuning knowledge store. Thread-safe: concurrent
/// sessions of a campaign append through one shared handle.
#[derive(Debug)]
pub struct TrialStore {
    dir: PathBuf,
    opts: StoreOptions,
    inner: Mutex<Inner>,
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn segment_name(index: usize) -> String {
    format!("seg-{index:06}.jsonl")
}

/// Inverse of [`segment_name`]: the numeric index of a segment file.
fn segment_index(name: &str) -> Option<usize> {
    name.strip_prefix("seg-")?.strip_suffix(".jsonl")?.parse().ok()
}

/// Locks a mutex, recovering from poisoning: one panicked worker thread
/// must not wedge every other session sharing the lock. Safe wherever
/// the protected structure is only mutated through small non-panicking
/// critical sections (true of the store's index and the runtime's
/// caches, which share this helper) — the panic that poisoned the lock
/// happened in user code outside them.
pub fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TrialStore {
    /// Opens (or creates) the store rooted at `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<TrialStore> {
        TrialStore::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) the store rooted at `dir`.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<TrialStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest_path = dir.join("MANIFEST");
        let sealed: Vec<String> = if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path)?;
            let mut lines = text.lines();
            match lines.next() {
                Some(MANIFEST_HEADER) => {}
                other => {
                    return Err(corrupt(format!("bad manifest header {other:?}")));
                }
            }
            lines.filter(|l| !l.trim().is_empty()).map(str::to_string).collect()
        } else {
            write_manifest_atomically(&dir, &[])?;
            Vec::new()
        };

        let mut sessions = BTreeMap::new();
        let mut trial_records = 0usize;
        // Sealed segments were fsynced before the manifest named them:
        // parse strictly.
        for name in &sealed {
            let text = std::fs::read_to_string(dir.join(name))?;
            for (i, line) in text.lines().enumerate() {
                let rec = record_from_json(line)
                    .map_err(|e| corrupt(format!("{name} line {}: {e}", i + 1)))?;
                apply_record(&mut sessions, &mut trial_records, rec);
            }
        }

        // The active segment follows the highest sealed index (indices
        // are monotonic but, after compaction, not necessarily dense).
        let mut max_index = 0usize;
        for name in &sealed {
            let idx = segment_index(name)
                .ok_or_else(|| corrupt(format!("unparsable segment name {name:?} in manifest")))?;
            max_index = max_index.max(idx);
        }
        let active_index = max_index + 1;
        // The active segment may end in a torn append: drop (and truncate
        // away) an unparsable *final* line; reject garbage followed by
        // valid records.
        let active_name = segment_name(active_index);
        let active_path = dir.join(&active_name);
        let mut active_records = 0usize;
        if active_path.exists() {
            let text = std::fs::read_to_string(&active_path)?;
            let mut good_len = 0usize;
            let mut pending: Vec<StoreRecord> = Vec::new();
            let mut torn: Option<String> = None;
            for (i, line) in text.lines().enumerate() {
                match record_from_json(line) {
                    Ok(rec) => {
                        if let Some(bad) = &torn {
                            return Err(corrupt(format!(
                                "{active_name} line {}: unparsable record {bad:?} followed by valid records",
                                i
                            )));
                        }
                        pending.push(rec);
                        // `lines()` strips the terminator; count it back.
                        good_len += line.len() + 1;
                    }
                    Err(e) => {
                        if torn.is_some() {
                            return Err(corrupt(format!(
                                "{active_name} line {}: {e} (multiple unparsable lines)",
                                i + 1
                            )));
                        }
                        torn = Some(format!("line {}: {e}", i + 1));
                    }
                }
            }
            if torn.is_some() && good_len < text.len() {
                // Torn final append: truncate the segment back to the
                // last complete record before reopening for append.
                let f = OpenOptions::new().write(true).open(&active_path)?;
                f.set_len(good_len as u64)?;
                f.sync_data()?;
            } else if torn.is_none() && !text.is_empty() && !text.ends_with('\n') {
                // A tear can also land *between* the closing brace and
                // the newline: the final record is complete and kept,
                // but its terminator must be repaired — otherwise the
                // next append would concatenate onto this line and a
                // later recovery would mis-read the merged line as torn,
                // silently dropping an acknowledged record.
                let mut f = OpenOptions::new().append(true).open(&active_path)?;
                f.write_all(b"\n")?;
                f.sync_data()?;
            }
            active_records = pending.len();
            for rec in pending {
                apply_record(&mut sessions, &mut trial_records, rec);
            }
        }

        let active = OpenOptions::new().create(true).append(true).open(&active_path)?;
        Ok(TrialStore {
            dir,
            opts,
            inner: Mutex::new(Inner {
                sealed,
                active_name,
                active_index,
                active,
                active_records,
                sessions,
                trial_records,
            }),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one trial record (one `write` syscall; the record is
    /// durable in the filesystem cache when this returns).
    pub fn append_trial(&self, trial: &StoredTrial) -> io::Result<()> {
        self.append(StoreRecord::Trial(trial.clone()))
    }

    /// Appends one session-metadata record (latest record wins on load).
    pub fn append_session(&self, meta: &SessionMeta) -> io::Result<()> {
        self.append(StoreRecord::Session(meta.clone()))
    }

    fn append(&self, rec: StoreRecord) -> io::Result<()> {
        let mut guard = lock_recover(&self.inner);
        let inner = &mut *guard;
        let line = format!("{}\n", record_to_json(&rec));
        inner.active.write_all(line.as_bytes())?;
        inner.active_records += 1;
        apply_record(&mut inner.sessions, &mut inner.trial_records, rec);
        if inner.active_records >= self.opts.segment_records {
            self.rotate(inner)?;
        }
        Ok(())
    }

    /// Seals the active segment: fsync it, commit a manifest naming it
    /// (atomic rename), start a fresh active segment. On any failure the
    /// current active handle is left in place, so appends keep working
    /// (returning errors rather than panicking) and rotation is retried
    /// at the next threshold crossing.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        inner.active.sync_data()?;
        // Open the next segment *before* committing the manifest: a
        // failure here leaves only an empty, unlisted file behind, and
        // the store state (in memory and on disk) is unchanged.
        let next_index = inner.active_index + 1;
        let next_name = segment_name(next_index);
        // Truncate before adopting: a compaction that crashed before its
        // manifest rename can leave a stray file at this index whose
        // stale records would otherwise be replayed *after* newer ones
        // and win the last-wins resolution.
        File::create(self.dir.join(&next_name))?.sync_data()?;
        let next = OpenOptions::new().append(true).open(self.dir.join(&next_name))?;
        let mut sealed = inner.sealed.clone();
        sealed.push(inner.active_name.clone());
        write_manifest_atomically(&self.dir, &sealed)?;
        inner.sealed = sealed;
        inner.active_name = next_name;
        inner.active_index = next_index;
        inner.active = next;
        inner.active_records = 0;
        Ok(())
    }

    /// Fsyncs the active segment (sealed segments are already synced).
    pub fn sync(&self) -> io::Result<()> {
        let inner = lock_recover(&self.inner);
        inner.active.sync_data()
    }

    /// Sealed segment names, in manifest order (for tests and tooling).
    pub fn sealed_segments(&self) -> Vec<String> {
        lock_recover(&self.inner).sealed.clone()
    }

    /// Labels of every stored session, sorted.
    pub fn sessions(&self) -> Vec<String> {
        lock_recover(&self.inner).sessions.keys().cloned().collect()
    }

    /// Latest metadata of a session, if any was recorded.
    pub fn session_meta(&self, session: &str) -> Option<SessionMeta> {
        lock_recover(&self.inner).sessions.get(session).and_then(|e| e.meta.clone())
    }

    /// A session's trials, deduplicated last-wins and sorted by
    /// iteration, truncated at the first gap (a gap cannot arise from
    /// the append protocol; truncating keeps a damaged store usable).
    pub fn trials_for(&self, session: &str) -> Vec<StoredTrial> {
        let inner = lock_recover(&self.inner);
        let Some(entry) = inner.sessions.get(session) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(entry.trials.len());
        for (expected, (&iteration, trial)) in entry.trials.iter().enumerate() {
            if iteration != expected {
                break;
            }
            out.push(trial.clone());
        }
        out
    }

    /// A session's trials as the session loop's replay units.
    pub fn prior_trials(&self, session: &str) -> Vec<PriorTrial> {
        self.trials_for(session).iter().map(StoredTrial::to_prior).collect()
    }

    /// Number of distinct `(session, iteration)` trials stored.
    pub fn trial_count(&self) -> usize {
        let inner = lock_recover(&self.inner);
        inner.sessions.values().map(|e| e.trials.len()).sum()
    }

    /// Number of trial *records* appended (re-runs of a partial round
    /// append duplicates, so this can exceed [`TrialStore::trial_count`]).
    pub fn trial_records(&self) -> usize {
        lock_recover(&self.inner).trial_records
    }

    /// Whether the store holds no trials.
    pub fn is_empty(&self) -> bool {
        self.trial_count() == 0
    }

    /// Rewrites the store with its logical state only: one metadata
    /// record per session (the latest — superseded status updates are
    /// dropped) followed by its trials with `(session, iteration)`
    /// last-wins deduplication applied. Resumed campaigns re-run partial
    /// trailing rounds and append duplicate records by design; a
    /// campaign resumed many times accretes them, and compaction
    /// reclaims the space without changing anything a reader can see:
    /// [`TrialStore::export_jsonl`], [`TrialStore::trials_for`], and
    /// session metadata are identical before and after (pinned by the
    /// checkpoint-resume test suite).
    ///
    /// Crash safety follows the rotation protocol: compacted segments
    /// are written to fresh (higher-numbered) files and fsynced, then a
    /// manifest naming exactly those segments is committed by atomic
    /// rename, then the superseded files are deleted best-effort. A
    /// crash before the rename leaves the old manifest — and therefore
    /// the old store — fully intact; stray compacted files are inert
    /// (recovery only reads manifest-listed segments plus the derived
    /// active name) and are truncated before reuse when the segment
    /// sequence later reaches their index.
    pub fn compact(&self) -> io::Result<CompactionStats> {
        let mut guard = lock_recover(&self.inner);
        let inner = &mut *guard;
        inner.active.sync_data()?;
        let old_segments: Vec<String> =
            inner.sealed.iter().cloned().chain([inner.active_name.clone()]).collect();
        let records_before = inner.trial_records;

        // Serialize the deduplicated state, session by session.
        let mut records: Vec<String> = Vec::new();
        for entry in inner.sessions.values() {
            if let Some(m) = &entry.meta {
                records.push(record_to_json(&StoreRecord::Session(m.clone())));
            }
            for t in entry.trials.values() {
                records.push(record_to_json(&StoreRecord::Trial(t.clone())));
            }
        }

        // Write the compacted run into fresh segment files past the
        // current active index, fully synced before the manifest commit.
        let mut new_sealed = Vec::new();
        let mut idx = inner.active_index;
        for chunk in records.chunks(self.opts.segment_records.max(1)) {
            idx += 1;
            let name = segment_name(idx);
            let mut text = String::with_capacity(chunk.iter().map(|r| r.len() + 1).sum());
            for rec in chunk {
                text.push_str(rec);
                text.push('\n');
            }
            let mut f = File::create(self.dir.join(&name))?;
            f.write_all(text.as_bytes())?;
            f.sync_data()?;
            new_sealed.push(name);
        }
        let new_active_index = idx + 1;
        let new_active_name = segment_name(new_active_index);
        // Truncate any stray file left by an earlier interrupted
        // compaction, then reopen in append mode as the active segment.
        File::create(self.dir.join(&new_active_name))?.sync_data()?;
        let new_active = OpenOptions::new().append(true).open(self.dir.join(&new_active_name))?;

        // Commit point.
        write_manifest_atomically(&self.dir, &new_sealed)?;
        let segments_before = old_segments.len();
        inner.sealed = new_sealed;
        inner.active_name = new_active_name;
        inner.active_index = new_active_index;
        inner.active = new_active;
        inner.active_records = 0;
        inner.trial_records = inner.sessions.values().map(|e| e.trials.len()).sum();
        let stats = CompactionStats {
            trial_records_before: records_before,
            trial_records_after: inner.trial_records,
            segments_before,
            segments_after: inner.sealed.len() + 1,
        };

        // The old files are unreachable from the new manifest; deletion
        // is cleanup, not correctness.
        for name in old_segments {
            let _ = std::fs::remove_file(self.dir.join(name));
        }
        Ok(stats)
    }

    /// Every stored trial projected onto the core JSONL event schema,
    /// sorted by session label then iteration — the canonical export.
    /// Deduplication is last-wins, so a store that recorded a crash and
    /// a resume exports exactly the transcript of the uninterrupted run.
    pub fn export_events(&self) -> Vec<TrialEvent> {
        let inner = lock_recover(&self.inner);
        let mut out = Vec::with_capacity(inner.sessions.values().map(|e| e.trials.len()).sum());
        for entry in inner.sessions.values() {
            out.extend(entry.trials.values().map(StoredTrial::to_event));
        }
        out
    }

    /// [`TrialStore::export_events`] rendered as JSONL.
    pub fn export_jsonl(&self) -> String {
        events_to_jsonl(&self.export_events())
    }
}

fn apply_record(
    sessions: &mut BTreeMap<String, SessionEntry>,
    trial_records: &mut usize,
    rec: StoreRecord,
) {
    match rec {
        StoreRecord::Trial(t) => {
            *trial_records += 1;
            sessions.entry(t.session.clone()).or_default().trials.insert(t.iteration, t);
        }
        StoreRecord::Session(m) => {
            let label = m.session.clone();
            sessions.entry(label).or_default().meta = Some(m);
        }
    }
}

fn write_manifest_atomically(dir: &Path, sealed: &[String]) -> io::Result<()> {
    let mut text = String::from(MANIFEST_HEADER);
    text.push('\n');
    for name in sealed {
        text.push_str(name);
        text.push('\n');
    }
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join("MANIFEST"))
}

/// Rebuilds a [`llamatune::session::SessionHistory`] from a *complete*
/// stored session without re-running anything: scores and raw scores are
/// read back, the best curve is re-folded, and `stopped_at` comes from
/// the session's metadata.
pub fn rebuild_history(
    trials: &[StoredTrial],
    stopped_at: Option<usize>,
) -> llamatune::session::SessionHistory {
    let mut history = llamatune::session::SessionHistory {
        configs: Vec::with_capacity(trials.len()),
        points: Vec::with_capacity(trials.len()),
        scores: Vec::with_capacity(trials.len()),
        raw_scores: Vec::with_capacity(trials.len()),
        best_curve: Vec::with_capacity(trials.len()),
        stopped_at,
    };
    let mut best = f64::NEG_INFINITY;
    for t in trials {
        history.configs.push(llamatune_space::Config::new(t.config.clone()));
        history.points.push(t.point.clone());
        history.scores.push(t.score);
        history.raw_scores.push(t.raw_score);
        if t.iteration == 0 {
            history.best_curve.push(t.score);
        } else {
            best = best.max(t.score);
            history.best_curve.push(best);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::KnobValue;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("llamatune_store_unit")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trial(session: &str, iteration: usize, score: f64) -> StoredTrial {
        StoredTrial {
            session: session.to_string(),
            iteration,
            raw_score: Some(score),
            score,
            point: if iteration == 0 { vec![] } else { vec![score / 10.0, 0.5] },
            config: vec![KnobValue::Int(iteration as i64), KnobValue::Cat(1)],
            metrics: vec![score, 0.0],
        }
    }

    fn meta(session: &str, status: SessionStatus) -> SessionMeta {
        SessionMeta {
            session: session.to_string(),
            workload: "ycsb_a".to_string(),
            adapter: "identity/s1".to_string(),
            status,
            stopped_at: None,
            fingerprint: vec![0.6, 0.8],
            warm_points: vec![],
        }
    }

    use crate::record::SessionStatus;

    #[test]
    fn append_reopen_preserves_everything() {
        let dir = tmp_dir("reopen");
        {
            let store = TrialStore::open(&dir).unwrap();
            store.append_session(&meta("s1", SessionStatus::Running)).unwrap();
            for i in 0..5 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
            store.append_session(&meta("s1", SessionStatus::Done)).unwrap();
        }
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.sessions(), vec!["s1".to_string()]);
        assert_eq!(store.trial_count(), 5);
        assert_eq!(store.session_meta("s1").unwrap().status, SessionStatus::Done);
        let trials = store.trials_for("s1");
        assert_eq!(trials.len(), 5);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.iteration, i);
            assert_eq!(t.score, i as f64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_seals_segments_through_the_manifest() {
        let dir = tmp_dir("rotate");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 3 }).unwrap();
        for i in 0..8 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        assert_eq!(store.sealed_segments().len(), 2, "8 records at 3/segment: 2 sealed");
        let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
        assert!(manifest.starts_with(MANIFEST_HEADER));
        assert!(manifest.contains("seg-000001.jsonl"));
        assert!(manifest.contains("seg-000002.jsonl"));
        assert!(!manifest.contains("seg-000003.jsonl"), "active segment is not sealed");
        // Reload sees all 8 trials across the 3 segments.
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 8);
        assert_eq!(store.sealed_segments().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated() {
        let dir = tmp_dir("torn");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..4 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Tear the last record mid-way, as a crash during write would.
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        let cut = text.len() - 17;
        std::fs::write(&seg, &text[..cut]).unwrap();

        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 3, "torn trial dropped");
        drop(store);
        // The file was truncated back to complete records: reopening
        // again parses cleanly and appending continues from there.
        let store = TrialStore::open(&dir).unwrap();
        store.append_trial(&trial("s1", 3, 30.0)).unwrap();
        assert_eq!(store.trial_count(), 4);
        assert_eq!(store.trials_for("s1")[3].score, 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_between_brace_and_newline_keeps_the_record_and_repairs_the_line() {
        let dir = tmp_dir("newline_tear");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..3 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Tear exactly after the final '}' but before its '\n': the
        // record is complete; only the terminator is lost.
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        std::fs::write(&seg, text.trim_end_matches('\n')).unwrap();

        // Recovery keeps all three records (the append was acknowledged
        // with Ok — dropping it would be silent data loss)...
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 3, "complete final record survives");
        // ...and the next append must start on its own line, so a
        // further reopen still sees every record.
        store.append_trial(&trial("s1", 3, 30.0)).unwrap();
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 4, "no concatenated-line loss after the repair");
        assert_eq!(store.trials_for("s1")[3].score, 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interleaved_garbage_is_rejected() {
        let dir = tmp_dir("garbage");
        {
            let store = TrialStore::open(&dir).unwrap();
            for i in 0..3 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "!!! garbage");
        std::fs::write(&seg, lines.join("\n")).unwrap();
        let err = TrialStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_is_an_error_even_at_the_tail() {
        let dir = tmp_dir("sealed_strict");
        {
            let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 2 }).unwrap();
            for i in 0..4 {
                store.append_trial(&trial("s1", i, i as f64)).unwrap();
            }
        }
        // Tear the *sealed* first segment: sealed segments are parsed
        // strictly, so even a torn final line is corruption.
        let seg = dir.join("seg-000001.jsonl");
        let text = std::fs::read_to_string(&seg).unwrap();
        std::fs::write(&seg, &text[..text.len() - 5]).unwrap();
        assert!(TrialStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_iterations_resolve_last_wins_in_queries_and_export() {
        let dir = tmp_dir("dup");
        let store = TrialStore::open(&dir).unwrap();
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        store.append_trial(&trial("s1", 1, 2.0)).unwrap();
        store.append_trial(&trial("s1", 1, 99.0)).unwrap(); // resume re-ran iteration 1
        assert_eq!(store.trial_count(), 2);
        assert_eq!(store.trial_records(), 3);
        assert_eq!(store.trials_for("s1")[1].score, 99.0);
        let events = store.export_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].score, 99.0);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn export_orders_by_session_then_iteration() {
        let dir = tmp_dir("export");
        let store = TrialStore::open(&dir).unwrap();
        // Interleave appends across sessions, as concurrent lanes do.
        store.append_trial(&trial("b", 0, 1.0)).unwrap();
        store.append_trial(&trial("a", 0, 2.0)).unwrap();
        store.append_trial(&trial("b", 1, 3.0)).unwrap();
        store.append_trial(&trial("a", 1, 4.0)).unwrap();
        let events = store.export_events();
        let order: Vec<(String, usize)> =
            events.iter().map(|e| (e.session.clone(), e.iteration)).collect();
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 0),
                ("a".to_string(), 1),
                ("b".to_string(), 0),
                ("b".to_string(), 1)
            ]
        );
        let jsonl = store.export_jsonl();
        let parsed = llamatune::history_io::events_from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, events);
        assert!(llamatune::history_io::session_curves(&parsed).is_ok());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn trials_truncate_at_gaps() {
        let dir = tmp_dir("gap");
        let store = TrialStore::open(&dir).unwrap();
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        store.append_trial(&trial("s1", 2, 3.0)).unwrap(); // gap at 1
        assert_eq!(store.trials_for("s1").len(), 1);
        assert_eq!(store.prior_trials("s1").len(), 1);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rebuild_history_refolds_the_best_curve() {
        let trials: Vec<StoredTrial> =
            [5.0, 3.0, 8.0, 2.0, 9.0].iter().enumerate().map(|(i, &s)| trial("s1", i, s)).collect();
        let h = rebuild_history(&trials, None);
        assert_eq!(h.scores, vec![5.0, 3.0, 8.0, 2.0, 9.0]);
        assert_eq!(h.best_curve, vec![5.0, 3.0, 8.0, 8.0, 9.0]);
        assert_eq!(h.best_score(), Some(9.0));
        assert_eq!(h.default_score(), 5.0);
        let stopped = rebuild_history(&trials, Some(4));
        assert_eq!(stopped.stopped_at, Some(4));
    }

    #[test]
    fn compact_dedups_trials_and_drops_superseded_meta() {
        let dir = tmp_dir("compact");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 4 }).unwrap();
        store.append_session(&meta("s1", SessionStatus::Running)).unwrap();
        for i in 0..5 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        // A resumed partial round re-runs iterations 3 and 4.
        store.append_trial(&trial("s1", 3, 33.0)).unwrap();
        store.append_trial(&trial("s1", 4, 44.0)).unwrap();
        store.append_session(&meta("s1", SessionStatus::Done)).unwrap();
        let export_before = store.export_jsonl();
        assert_eq!(store.trial_records(), 7);
        assert_eq!(store.trial_count(), 5);

        let stats = store.compact().unwrap();
        assert_eq!(stats.trial_records_before, 7);
        assert_eq!(stats.trial_records_after, 5);
        assert!(stats.segments_after <= stats.segments_before);
        assert_eq!(store.trial_records(), 5, "duplicates rewritten away");
        assert_eq!(store.export_jsonl(), export_before, "logical state unchanged");
        assert_eq!(store.session_meta("s1").unwrap().status, SessionStatus::Done);
        assert_eq!(store.trials_for("s1")[3].score, 33.0, "last-wins winners survive");

        // The rewritten store reopens cleanly (non-dense segment
        // numbering) and keeps accepting appends.
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.export_jsonl(), export_before);
        assert_eq!(store.trial_records(), 5);
        store.append_trial(&trial("s1", 5, 55.0)).unwrap();
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 6);
        // Exactly one metadata record per session remains on disk.
        let mut meta_lines = 0;
        for name in store.sealed_segments() {
            let text = std::fs::read_to_string(dir.join(&name)).unwrap();
            meta_lines += text.lines().filter(|l| l.contains("\"kind\":\"session\"")).count();
        }
        assert_eq!(meta_lines, 1, "superseded Running meta dropped");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn compact_is_idempotent_and_handles_empty_stores() {
        let dir = tmp_dir("compact_idem");
        let store = TrialStore::open(&dir).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.trial_records_after, 0);
        store.append_trial(&trial("s1", 0, 1.0)).unwrap();
        store.compact().unwrap();
        let export = store.export_jsonl();
        let again = store.compact().unwrap();
        assert_eq!(again.trial_records_before, again.trial_records_after);
        assert_eq!(store.export_jsonl(), export);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rotation_continues_after_compaction() {
        let dir = tmp_dir("compact_rotate");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 3 }).unwrap();
        for i in 0..7 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        store.compact().unwrap();
        // Keep appending past the rotation threshold: sealing must use
        // fresh indices beyond the compacted ones.
        for i in 7..14 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 14);
        let names = store.sealed_segments();
        let indices: Vec<usize> = names.iter().map(|n| super::segment_index(n).unwrap()).collect();
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "manifest indices strictly increase (no reuse after compaction): {names:?}"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rotation_truncates_stray_segment_files() {
        let dir = tmp_dir("stray");
        let store = TrialStore::open_with(&dir, StoreOptions { segment_records: 2 }).unwrap();
        // A compaction that crashed before its manifest rename leaves a
        // stray file at a future segment index; its stale records must
        // not be adopted when rotation reaches that index.
        let stale = format!(
            "{}\n",
            record_to_json(&StoreRecord::Session(meta("ghost", SessionStatus::Running)))
        );
        std::fs::write(dir.join(segment_name(2)), stale).unwrap();
        for i in 0..3 {
            store.append_trial(&trial("s1", i, i as f64)).unwrap();
        }
        assert_eq!(store.sealed_segments(), vec![segment_name(1)], "rotation happened");
        drop(store);
        let store = TrialStore::open(&dir).unwrap();
        assert_eq!(store.trial_count(), 3);
        assert!(
            store.session_meta("ghost").is_none(),
            "stale records in a stray segment must not resurface"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn fresh_store_creates_manifest_and_is_empty() {
        let dir = tmp_dir("fresh");
        let store = TrialStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(store.sessions().is_empty());
        assert!(dir.join("MANIFEST").exists());
        assert!(store.export_events().is_empty());
        store.sync().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Pluggable storage backends for the trial store.
//!
//! [`TrialStore`](crate::TrialStore) reads and writes *named objects* —
//! segment files and the `MANIFEST` — and never touches the filesystem
//! directly. The [`StoreBackend`] trait is that seam: a campaign can
//! checkpoint into a local directory today and into S3-style object
//! storage tomorrow without the store's commit protocol changing shape.
//!
//! ## The two commit protocols
//!
//! Everything the store guarantees under crashes reduces to *one*
//! atomic primitive: installing a new `MANIFEST` revision. The two
//! backends realize it differently, and the difference is the whole
//! design space of the trait:
//!
//! * **Rename-commit** ([`LocalDirBackend`]) — the new manifest is
//!   written to a temp file, fsynced, and `rename(2)`d over the old
//!   one. POSIX rename is atomic *and durable in order*: a crash at any
//!   byte leaves either the old or the new manifest, never a mix, and
//!   never a manifest naming segments that were not fully synced first
//!   (the store syncs segment data before committing). Rename-commit
//!   gives atomicity but not coordination — two uncoordinated writers
//!   would silently overwrite each other's manifests, so the local
//!   backend layers an in-process compare-and-swap (a commit lock plus
//!   a content-revision check) on top for shared-store use. That CAS is
//!   only as strong as the process boundary: a *fleet across machines*
//!   must use a backend whose conditional put is enforced by the store
//!   itself.
//! * **CAS-commit** ([`ObjectStoreBackend`]) — object stores have no
//!   rename, so the manifest is installed with a *conditional put*:
//!   "write these bytes iff the object's current revision is the one I
//!   last read" (S3 `If-Match`, GCS generation preconditions, Azure
//!   ETags). A losing writer gets a [`CasConflict`] with the winner's
//!   bytes and retries on top of them. CAS-commit gives atomicity *and*
//!   multi-writer coordination in one primitive; what it costs is that
//!   every commit must carry the expected revision, and a writer that
//!   forgets to re-read after a conflict can livelock but never corrupt.
//!
//! In both protocols the manifest is the *only* authority: readers
//! resolve segment names strictly through it and never trust
//! [`StoreBackend::list`], which object stores are allowed to serve
//! stale (eventual consistency). An object that `list` has not caught
//! up to is still perfectly readable by name.
//!
//! ## Durability vocabulary
//!
//! [`StoreBackend::put`] is a full-object write that is durable when it
//! returns (object stores are atomic per put; the local backend fsyncs).
//! [`StoreBackend::append`] extends an object and may be *torn* by a
//! crash — the store's lenient recovery of active segments exists
//! precisely to absorb that. [`StoreBackend::sync`] upgrades prior
//! appends to durable (a no-op where appends are already synchronous).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The manifest's object name, identical across backends.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// An opaque manifest revision: the 64-bit FNV-1a hash of the manifest
/// bytes, with `0` reserved for "no manifest exists yet". Backends
/// compare revisions, never bytes, so the type also models ETag-style
/// version tokens.
pub type Revision = u64;

/// The revision of a manifest with these bytes ([`Revision`]; never 0).
pub fn revision_of(bytes: &[u8]) -> Revision {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// A conditional manifest put lost the race: another writer committed
/// first. Carries the winning manifest so the loser can merge and retry
/// without an extra read.
#[derive(Debug, Clone)]
pub struct CasConflict {
    /// The manifest bytes currently installed (`None`: deleted/absent).
    pub current: Option<Vec<u8>>,
    /// Revision of `current`.
    pub revision: Revision,
}

/// Locks a mutex, recovering from poisoning: one panicked worker thread
/// must not wedge every other session sharing the lock. Safe wherever
/// the protected structure is only mutated through small non-panicking
/// critical sections (true of the store's index, the backends' object
/// maps, and the runtime's caches, which all share this helper) — the
/// panic that poisoned the lock happened in user code outside them.
pub fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Storage operations the trial store is built from.
///
/// Implementations must be thread-safe: shared stores clone one backend
/// handle across writer threads. Object names are flat (no directory
/// structure) and chosen by the store.
///
/// ### Invariants implementations must uphold
///
/// * [`put`](StoreBackend::put) replaces the whole object and is
///   durable and *atomic* on return where the medium allows (object
///   stores: always; local files: durable but a crash mid-put may leave
///   a partial object — the store only puts objects it has not yet
///   committed a manifest reference to, which makes the partiality
///   unobservable).
/// * [`append`](StoreBackend::append) extends the object, creating it
///   if missing. A crash may persist any prefix of the payload (torn
///   write) but must never interleave bytes of concurrent appends to
///   *different* objects; concurrent appends to the *same* object are
///   the caller's bug (each writer owns its active segment exclusively).
/// * [`commit_manifest`](StoreBackend::commit_manifest) installs a new
///   manifest revision iff the current revision equals `expected`
///   (compare-and-swap; `expected == 0` means "no manifest yet"). The
///   check-and-install must be atomic with respect to every other
///   `commit_manifest` on the same backend instance — this is the
///   store's single point of serialization.
/// * [`list`](StoreBackend::list) may lag behind `put`/`append`
///   (eventual consistency) but must never invent names. Correctness
///   never depends on it; the store uses it for diagnostics only.
/// * [`get`](StoreBackend::get) must observe every `put`, `append`, and
///   `truncate` that returned before the `get` started (read-after-write
///   consistency by name — true of S3 since 2020 and of filesystems
///   always).
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Short backend label, for diagnostics and bench output.
    fn kind(&self) -> &'static str;

    /// Reads a whole object; `None` if it does not exist.
    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Creates or replaces a whole object, durably.
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Appends to an object, creating it if missing. May tear on crash.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Makes prior appends to `name` durable (no-op if already so, or
    /// if the object does not exist).
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Shrinks an object to `len` bytes (torn-tail repair). Errors if
    /// the object does not exist.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Names of stored objects, sorted. Possibly stale — see the trait
    /// docs; never used for correctness.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Deletes an object; deleting a missing object is not an error.
    fn delete(&self, name: &str) -> io::Result<()>;

    /// Atomically renames an object. Local directories support this
    /// (and build their manifest commit on it); object stores return
    /// [`io::ErrorKind::Unsupported`] — they commit through
    /// [`commit_manifest`](StoreBackend::commit_manifest) instead.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Current manifest bytes and revision (`(None, 0)` when absent).
    fn read_manifest(&self) -> io::Result<(Option<Vec<u8>>, Revision)>;

    /// Conditionally installs a new manifest revision. Returns the new
    /// revision on success, or the conflicting state if another writer
    /// committed since `expected` was read. See the trait docs for the
    /// atomicity contract.
    fn commit_manifest(
        &self,
        data: &[u8],
        expected: Revision,
    ) -> io::Result<Result<Revision, CasConflict>>;
}

// ---------------------------------------------------------------------
// Local directory backend
// ---------------------------------------------------------------------

/// The original on-disk layout: one file per object inside a directory,
/// manifest committed by atomic rename (see the module docs for why
/// that is sufficient single-writer and only process-locally safe
/// multi-writer). Byte-for-byte compatible with stores written before
/// the backend trait existed.
///
/// Append handles are cached so a hot active segment costs one `write`
/// syscall per record, exactly as the pre-trait store did.
pub struct LocalDirBackend {
    dir: PathBuf,
    /// Cached append handles, invalidated by put/truncate/delete/rename.
    handles: Mutex<HashMap<String, File>>,
    /// Serializes read-check-rename manifest commits (in-process CAS).
    commit_lock: Mutex<()>,
}

impl std::fmt::Debug for LocalDirBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalDirBackend").field("dir", &self.dir).finish()
    }
}

impl LocalDirBackend {
    /// Opens (creating if needed) the directory rooted at `dir`.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<LocalDirBackend> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(LocalDirBackend {
            dir,
            handles: Mutex::new(HashMap::new()),
            commit_lock: Mutex::new(()),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn drop_handle(&self, name: &str) {
        lock_recover(&self.handles).remove(name);
    }
}

impl StoreBackend for LocalDirBackend {
    fn kind(&self) -> &'static str {
        "local"
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.dir.join(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.drop_handle(name);
        let mut f = File::create(self.dir.join(name))?;
        f.write_all(data)?;
        f.sync_data()
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut handles = lock_recover(&self.handles);
        let f = match handles.entry(name.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(OpenOptions::new().create(true).append(true).open(self.dir.join(name))?)
            }
        };
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        if let Some(f) = lock_recover(&self.handles).get(name) {
            return f.sync_data();
        }
        match File::open(self.dir.join(name)) {
            Ok(f) => f.sync_data(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.drop_handle(name);
        let f = OpenOptions::new().write(true).open(self.dir.join(name))?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.drop_handle(name);
        match std::fs::remove_file(self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.drop_handle(from);
        self.drop_handle(to);
        std::fs::rename(self.dir.join(from), self.dir.join(to))
    }

    fn read_manifest(&self) -> io::Result<(Option<Vec<u8>>, Revision)> {
        match self.get(MANIFEST_NAME)? {
            Some(bytes) => {
                let rev = revision_of(&bytes);
                Ok((Some(bytes), rev))
            }
            None => Ok((None, 0)),
        }
    }

    fn commit_manifest(
        &self,
        data: &[u8],
        expected: Revision,
    ) -> io::Result<Result<Revision, CasConflict>> {
        // Rename-commit with an in-process CAS gate: the lock makes
        // read-check-install atomic for every writer sharing this
        // backend instance; the rename makes the install itself atomic
        // against crashes, exactly as the pre-trait store committed.
        let _gate = lock_recover(&self.commit_lock);
        let (current, revision) = self.read_manifest()?;
        if revision != expected {
            return Ok(Err(CasConflict { current, revision }));
        }
        let tmp = format!("{MANIFEST_NAME}.tmp");
        {
            let mut f = File::create(self.dir.join(&tmp))?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        self.rename(&tmp, MANIFEST_NAME)?;
        Ok(Ok(revision_of(data)))
    }
}

// ---------------------------------------------------------------------
// In-process object store backend
// ---------------------------------------------------------------------

/// Behavior knobs of the [`ObjectStoreBackend`] emulation.
#[derive(Debug, Clone)]
pub struct ObjectStoreOptions {
    /// Emulate eventually consistent listings: objects created since
    /// the previous [`StoreBackend::list`] call are invisible to the
    /// next one (they surface on the call after). Exercises the store's
    /// promise that reads are manifest-driven, never list-driven.
    pub eventual_list: bool,
}

impl Default for ObjectStoreOptions {
    fn default() -> Self {
        ObjectStoreOptions { eventual_list: true }
    }
}

#[derive(Debug, Default)]
struct ObjectState {
    objects: BTreeMap<String, Vec<u8>>,
    /// Created since the last listing (hidden from it when eventual).
    unlisted: BTreeSet<String>,
}

/// An in-process emulation of S3-style object storage: whole-object
/// atomic puts, no rename, conditional manifest puts (CAS-commit — see
/// the module docs), and optionally stale listings. The emulation is
/// what CI races writers against; a production S3/GCS/Azure adapter
/// implements the same trait over the service's conditional-write API.
pub struct ObjectStoreBackend {
    opts: ObjectStoreOptions,
    state: Mutex<ObjectState>,
}

impl std::fmt::Debug for ObjectStoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock_recover(&self.state);
        f.debug_struct("ObjectStoreBackend").field("objects", &state.objects.len()).finish()
    }
}

impl Default for ObjectStoreBackend {
    fn default() -> Self {
        ObjectStoreBackend::new(ObjectStoreOptions::default())
    }
}

impl ObjectStoreBackend {
    /// An empty object store.
    pub fn new(opts: ObjectStoreOptions) -> ObjectStoreBackend {
        ObjectStoreBackend { opts, state: Mutex::new(ObjectState::default()) }
    }

    /// Total bytes stored across all objects (for benches and tests).
    pub fn total_bytes(&self) -> usize {
        lock_recover(&self.state).objects.values().map(Vec::len).sum()
    }
}

impl StoreBackend for ObjectStoreBackend {
    fn kind(&self) -> &'static str {
        "object"
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(lock_recover(&self.state).objects.get(name).cloned())
    }

    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut state = lock_recover(&self.state);
        if self.opts.eventual_list && !state.objects.contains_key(name) {
            state.unlisted.insert(name.to_string());
        }
        state.objects.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut state = lock_recover(&self.state);
        if self.opts.eventual_list && !state.objects.contains_key(name) {
            state.unlisted.insert(name.to_string());
        }
        state.objects.entry(name.to_string()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut state = lock_recover(&self.state);
        match state.objects.get_mut(name) {
            Some(data) => {
                data.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, format!("no object {name:?}"))),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut state = lock_recover(&self.state);
        let names =
            state.objects.keys().filter(|n| !state.unlisted.contains(*n)).cloned().collect();
        // The lag is one listing deep: everything hidden this time is
        // visible next time, which keeps the emulation deterministic.
        state.unlisted.clear();
        Ok(names)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        let mut state = lock_recover(&self.state);
        state.objects.remove(name);
        state.unlisted.remove(name);
        Ok(())
    }

    fn rename(&self, _from: &str, _to: &str) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "object stores have no rename; commit through commit_manifest",
        ))
    }

    fn read_manifest(&self) -> io::Result<(Option<Vec<u8>>, Revision)> {
        let state = lock_recover(&self.state);
        match state.objects.get(MANIFEST_NAME) {
            Some(bytes) => Ok((Some(bytes.clone()), revision_of(bytes))),
            None => Ok((None, 0)),
        }
    }

    fn commit_manifest(
        &self,
        data: &[u8],
        expected: Revision,
    ) -> io::Result<Result<Revision, CasConflict>> {
        // Conditional put: check and install under one lock acquisition,
        // the moral equivalent of S3 If-Match / GCS generation guards.
        let mut state = lock_recover(&self.state);
        let (current, revision) = match state.objects.get(MANIFEST_NAME) {
            Some(bytes) => (Some(bytes.clone()), revision_of(bytes)),
            None => (None, 0),
        };
        if revision != expected {
            return Ok(Err(CasConflict { current, revision }));
        }
        state.objects.insert(MANIFEST_NAME.to_string(), data.to_vec());
        Ok(Ok(revision_of(data)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("llamatune_backend_unit")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn backends(tag: &str) -> Vec<Arc<dyn StoreBackend>> {
        vec![
            Arc::new(LocalDirBackend::create(tmp_dir(tag)).unwrap()),
            Arc::new(ObjectStoreBackend::default()),
        ]
    }

    #[test]
    fn put_get_append_truncate_roundtrip_on_both_backends() {
        for be in backends("roundtrip") {
            assert_eq!(be.get("a").unwrap(), None, "{}", be.kind());
            be.put("a", b"hello").unwrap();
            assert_eq!(be.get("a").unwrap().unwrap(), b"hello");
            be.append("a", b" world").unwrap();
            be.sync("a").unwrap();
            assert_eq!(be.get("a").unwrap().unwrap(), b"hello world");
            be.truncate("a", 5).unwrap();
            assert_eq!(be.get("a").unwrap().unwrap(), b"hello");
            // Append creates missing objects.
            be.append("b", b"x").unwrap();
            assert_eq!(be.get("b").unwrap().unwrap(), b"x");
            // Put replaces wholesale and resets any append handle.
            be.put("a", b"new").unwrap();
            be.append("a", b"!").unwrap();
            assert_eq!(be.get("a").unwrap().unwrap(), b"new!");
            be.delete("a").unwrap();
            be.delete("a").unwrap(); // idempotent
            assert_eq!(be.get("a").unwrap(), None);
            assert!(be.truncate("a", 0).is_err(), "truncating a missing object errors");
            be.sync("a").unwrap(); // syncing a missing object is a no-op
        }
    }

    #[test]
    fn manifest_cas_detects_racing_commits() {
        for be in backends("cas") {
            let (bytes, rev) = be.read_manifest().unwrap();
            assert_eq!((bytes, rev), (None, 0), "{}", be.kind());
            let r1 = be.commit_manifest(b"v1\n", 0).unwrap().expect("first commit wins");
            assert_ne!(r1, 0);
            // A commit against a stale revision loses and sees the winner.
            let conflict = be.commit_manifest(b"v2\n", 0).unwrap().unwrap_err();
            assert_eq!(conflict.revision, r1);
            assert_eq!(conflict.current.unwrap(), b"v1\n");
            // Retrying on top of the winner succeeds.
            let r2 = be.commit_manifest(b"v2\n", r1).unwrap().expect("retry on current");
            let (bytes, rev) = be.read_manifest().unwrap();
            assert_eq!(bytes.unwrap(), b"v2\n");
            assert_eq!(rev, r2);
        }
    }

    #[test]
    fn local_rename_is_supported_and_object_rename_is_not() {
        let local = LocalDirBackend::create(tmp_dir("rename")).unwrap();
        local.put("x", b"1").unwrap();
        local.rename("x", "y").unwrap();
        assert_eq!(local.get("x").unwrap(), None);
        assert_eq!(local.get("y").unwrap().unwrap(), b"1");

        let object = ObjectStoreBackend::default();
        object.put("x", b"1").unwrap();
        let err = object.rename("x", "y").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn eventual_listing_lags_but_reads_do_not() {
        let be = ObjectStoreBackend::new(ObjectStoreOptions { eventual_list: true });
        be.put("seg-1", b"a").unwrap();
        be.put("seg-2", b"b").unwrap();
        // Both objects are readable by name immediately...
        assert!(be.get("seg-1").unwrap().is_some());
        assert!(be.get("seg-2").unwrap().is_some());
        // ...but invisible to the first listing, visible to the next.
        assert!(be.list().unwrap().is_empty(), "fresh objects hidden from the stale listing");
        assert_eq!(be.list().unwrap(), vec!["seg-1".to_string(), "seg-2".to_string()]);

        let strict = ObjectStoreBackend::new(ObjectStoreOptions { eventual_list: false });
        strict.put("seg-1", b"a").unwrap();
        assert_eq!(strict.list().unwrap(), vec!["seg-1".to_string()]);
    }

    #[test]
    fn revisions_are_content_addressed_and_never_zero() {
        assert_ne!(revision_of(b""), 0);
        assert_ne!(revision_of(b"a"), revision_of(b"b"));
        assert_eq!(revision_of(b"same"), revision_of(b"same"));
    }

    #[test]
    fn local_backend_survives_handle_cache_invalidation_paths() {
        let be = LocalDirBackend::create(tmp_dir("handles")).unwrap();
        be.append("seg", b"one\n").unwrap();
        be.truncate("seg", 2).unwrap();
        be.append("seg", b"!\n").unwrap();
        assert_eq!(be.get("seg").unwrap().unwrap(), b"on!\n");
        assert!(be.list().unwrap().contains(&"seg".to_string()));
        std::fs::remove_dir_all(be.dir()).unwrap();
    }
}

//! Deterministic fault injection at the backend seam.
//!
//! [`FailingBackend`] wraps any [`StoreBackend`] and kills its write
//! path mid-stream, emulating at the storage layer exactly what a
//! `kill -9` (or a worker machine vanishing) does to a running
//! campaign: acknowledged writes survive, the write in flight may be
//! torn, everything after it is gone. Reads always pass through, so a
//! test can kill a store, then reopen *the same underlying backend* and
//! assert what recovery sees.
//!
//! Two fault plans cover the CI suites:
//!
//! * [`FaultPlan::KillAtByte`] — a byte budget over the payloads of
//!   `append`/`put`/`commit_manifest`. The append that crosses the
//!   budget persists only its prefix (a torn write); puts and manifest
//!   commits that cross it fail *without* writing (they are atomic on
//!   real object stores, and the local store only puts uncommitted
//!   objects). All later mutations fail. Driven by a seeded RNG in the
//!   store fuzz test, this is "kill the process at a random byte".
//! * [`FaultPlan::FailAppendsMatching`] — after letting `allow` matching
//!   appends through, every append whose payload contains `needle`
//!   fails (un-torn). Because one fleet worker's appends carry its
//!   session's label, this kills *one worker of a shared campaign*
//!   mid-round while the rest of the fleet keeps committing.

use crate::backend::{lock_recover, CasConflict, Revision, StoreBackend};
use std::io;
use std::sync::{Arc, Mutex};

/// What kind of storage failure to inject. See the module docs.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Kill the write path after this many payload bytes.
    KillAtByte(u64),
    /// Fail appends containing `needle` after `allow` successful ones.
    FailAppendsMatching {
        /// Substring of the append payload that triggers the fault.
        needle: String,
        /// Matching appends allowed through before the fault arms.
        allow: usize,
    },
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Payload bytes successfully written so far (KillAtByte).
    written: u64,
    /// Matching appends seen so far (FailAppendsMatching).
    matched: usize,
    /// Once true, every mutation fails (the process is "dead").
    dead: bool,
}

/// The injected failure every faulted operation returns.
fn killed() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: storage writer killed")
}

/// A [`StoreBackend`] wrapper that injects write failures according to
/// a [`FaultPlan`]. Reads are never faulted.
pub struct FailingBackend {
    inner: Arc<dyn StoreBackend>,
    state: Mutex<FaultState>,
}

impl std::fmt::Debug for FailingBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock_recover(&self.state);
        f.debug_struct("FailingBackend")
            .field("plan", &state.plan)
            .field("dead", &state.dead)
            .finish()
    }
}

impl FailingBackend {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn StoreBackend>, plan: FaultPlan) -> FailingBackend {
        FailingBackend {
            inner,
            state: Mutex::new(FaultState { plan, written: 0, matched: 0, dead: false }),
        }
    }

    /// Whether the fault has fired (the wrapped writer is "dead").
    pub fn tripped(&self) -> bool {
        lock_recover(&self.state).dead
    }

    /// Charges `len` payload bytes against a byte budget. Returns how
    /// many bytes of this operation may still be written (`len` = all,
    /// `0` = none), and marks the writer dead when the budget is hit.
    fn admit_bytes(&self, len: u64) -> u64 {
        let mut state = lock_recover(&self.state);
        if state.dead {
            return 0;
        }
        match state.plan {
            FaultPlan::KillAtByte(budget) => {
                if state.written + len <= budget {
                    state.written += len;
                    len
                } else {
                    let keep = budget.saturating_sub(state.written);
                    state.written = budget;
                    state.dead = true;
                    keep
                }
            }
            FaultPlan::FailAppendsMatching { .. } => len,
        }
    }
}

impl StoreBackend for FailingBackend {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get(name)
    }

    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        // Puts are atomic: either the budget covers the whole object or
        // nothing is written.
        if self.admit_bytes(data.len() as u64) < data.len() as u64 {
            return Err(killed());
        }
        self.inner.put(name, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        {
            let mut state = lock_recover(&self.state);
            if state.dead {
                return Err(killed());
            }
            if let FaultPlan::FailAppendsMatching { needle, allow } = &state.plan {
                if !needle.is_empty() && String::from_utf8_lossy(data).contains(needle.as_str()) {
                    let allow = *allow;
                    state.matched += 1;
                    if state.matched > allow {
                        // The owning worker is dead from here on; appends
                        // of other workers (no needle) keep passing.
                        return Err(killed());
                    }
                }
            }
        }
        let keep = self.admit_bytes(data.len() as u64);
        if keep == data.len() as u64 {
            return self.inner.append(name, data);
        }
        // The kill landed mid-append: persist the torn prefix, then fail
        // the call — exactly what the caller of a real torn write sees.
        if keep > 0 {
            self.inner.append(name, &data[..keep as usize])?;
        }
        Err(killed())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        if lock_recover(&self.state).dead {
            return Err(killed());
        }
        self.inner.sync(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        if lock_recover(&self.state).dead {
            return Err(killed());
        }
        self.inner.truncate(name, len)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        if lock_recover(&self.state).dead {
            return Err(killed());
        }
        self.inner.delete(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        if lock_recover(&self.state).dead {
            return Err(killed());
        }
        self.inner.rename(from, to)
    }

    fn read_manifest(&self) -> io::Result<(Option<Vec<u8>>, Revision)> {
        self.inner.read_manifest()
    }

    fn commit_manifest(
        &self,
        data: &[u8],
        expected: Revision,
    ) -> io::Result<Result<Revision, CasConflict>> {
        // Manifest commits are atomic (rename or conditional put): the
        // budget either admits the whole revision or the commit fails
        // cleanly with the old manifest still installed.
        if self.admit_bytes(data.len() as u64) < data.len() as u64 {
            return Err(killed());
        }
        self.inner.commit_manifest(data, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ObjectStoreBackend;

    #[test]
    fn kill_at_byte_tears_the_crossing_append_and_kills_the_rest() {
        let inner = Arc::new(ObjectStoreBackend::default());
        let be = FailingBackend::new(inner.clone(), FaultPlan::KillAtByte(10));
        be.append("seg", b"12345").unwrap();
        assert!(!be.tripped());
        // This append crosses the 10-byte budget at its 6th byte.
        let err = be.append("seg", b"abcdefgh").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(be.tripped());
        assert_eq!(inner.get("seg").unwrap().unwrap(), b"12345abcde", "torn prefix persisted");
        // Everything after the kill fails without writing.
        assert!(be.append("seg", b"x").is_err());
        assert!(be.put("other", b"x").is_err());
        assert!(be.commit_manifest(b"m", 0).unwrap_err().kind() == io::ErrorKind::BrokenPipe);
        assert_eq!(inner.get("other").unwrap(), None);
        // Reads still pass through: recovery inspects the wreckage.
        assert!(be.get("seg").unwrap().is_some());
    }

    #[test]
    fn puts_and_commits_fail_atomically_at_the_budget() {
        let inner = Arc::new(ObjectStoreBackend::default());
        let be = FailingBackend::new(inner.clone(), FaultPlan::KillAtByte(4));
        let err = be.put("obj", b"123456").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(inner.get("obj").unwrap(), None, "no torn object from an atomic put");
    }

    #[test]
    fn matching_appends_fail_after_the_allowance() {
        let inner = Arc::new(ObjectStoreBackend::default());
        let be = FailingBackend::new(
            inner.clone(),
            FaultPlan::FailAppendsMatching { needle: "victim".into(), allow: 2 },
        );
        be.append("a", b"victim 1\n").unwrap();
        be.append("a", b"bystander\n").unwrap();
        be.append("a", b"victim 2\n").unwrap();
        assert!(be.append("a", b"victim 3\n").is_err(), "third match faults");
        assert!(be.append("a", b"bystander again\n").is_ok(), "other writers keep going");
        assert!(be.append("b", b"victim 4\n").is_err(), "the dead worker stays dead");
        assert_eq!(
            String::from_utf8(inner.get("a").unwrap().unwrap()).unwrap(),
            "victim 1\nbystander\nvictim 2\nbystander again\n"
        );
    }
}

//! The store's on-disk record vocabulary: one self-describing JSON
//! object per line, discriminated by a `"kind"` key.
//!
//! Two record kinds exist:
//!
//! * **`trial`** — one evaluated configuration. A superset of the core
//!   crate's [`TrialEvent`] schema: besides the event fields it carries
//!   the decoded knob configuration (so resumed sessions and warm-started
//!   caches can reconstruct [`Config`]s without re-decoding through an
//!   adapter) and the run's internal metrics (so replay feeds DDPG the
//!   same state it saw live).
//! * **`session`** — session metadata: owning workload, lifecycle status
//!   (`running`/`done`), the early-stop iteration if any, the workload's
//!   probe fingerprint, and the warm-start points the session was seeded
//!   with (persisted so an interrupted session resumes with the *same*
//!   initialization design even after more campaigns were stored).
//!
//! Floats print with Rust's shortest-roundtrip formatting and parse with
//! the matching parser, so every score, point, metric, and fingerprint
//! survives a store round trip bit-exactly — the property the
//! byte-identical resume guarantee rests on.

use llamatune::history_io::{event_to_json, JsonScanner, TrialEvent};
use llamatune::session::{PriorTrial, TrialStatus};
use llamatune_space::{Config, KnobValue};

/// One evaluated trial, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTrial {
    /// Label of the session this trial belongs to.
    pub session: String,
    /// Iteration index within the session (0 = default configuration).
    pub iteration: usize,
    /// Raw score; `None` when the configuration crashed the DBMS.
    pub raw_score: Option<f64>,
    /// Score after crash-penalty substitution.
    pub score: f64,
    /// Optimizer-space point (empty for iteration 0).
    pub point: Vec<f64>,
    /// Decoded knob values, in the tuned space's knob order.
    pub config: Vec<KnobValue>,
    /// Internal DBMS metrics of the run.
    pub metrics: Vec<f64>,
    /// Final disposition of the trial after the execution policy settled
    /// (serialized only when it differs from what `raw_score` implies, so
    /// pre-fault-tolerance stores keep their exact byte layout).
    pub status: TrialStatus,
    /// Number of evaluation attempts the policy made (serialized only
    /// when > 1, for the same byte-compat reason).
    pub attempts: u32,
}

impl StoredTrial {
    /// Projects the trial onto the core crate's JSONL event schema.
    pub fn to_event(&self) -> TrialEvent {
        TrialEvent {
            session: self.session.clone(),
            iteration: self.iteration,
            raw_score: self.raw_score,
            score: self.score,
            point: self.point.clone(),
            status: self.status,
            attempts: self.attempts,
        }
    }

    /// Converts the trial into the session loop's replay unit.
    pub fn to_prior(&self) -> PriorTrial {
        PriorTrial {
            iteration: self.iteration,
            point: self.point.clone(),
            config: Config::new(self.config.clone()),
            raw_score: self.raw_score,
            metrics: self.metrics.clone(),
            status: self.status,
            attempts: self.attempts,
        }
    }
}

/// Lifecycle of a stored session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Trials are (or were) being appended; the session may be resumed.
    Running,
    /// The session finished (ran its full budget or stopped early).
    Done,
}

/// Session metadata record. The latest record for a label wins, so a
/// session's lifecycle is `running` (written once, with fingerprint and
/// warm points) followed by `done` (same payload, final status).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Session label (e.g. `"tpcc/llamatune/smac/s3"`).
    pub session: String,
    /// Workload name the session tunes.
    pub workload: String,
    /// Full adapter identity — kind, hyperparameters, and projection
    /// seed (e.g. `"llamatune-d16-hesbo-b0.2-k10000/s3"`). Warm-start
    /// transfer moves points in *optimizer space*, so a receiving
    /// session may only borrow from sessions whose adapter identity is
    /// exactly equal: the same point decodes to different
    /// configurations under any other adapter. Empty when unknown.
    pub adapter: String,
    /// Lifecycle status.
    pub status: SessionStatus,
    /// Iteration at which early stopping fired, if it did.
    pub stopped_at: Option<usize>,
    /// Probe fingerprint of the workload (empty if never probed).
    pub fingerprint: Vec<f64>,
    /// Warm-start points the session was seeded with (optimizer space).
    pub warm_points: Vec<Vec<f64>>,
    /// Fleet writer currently leasing the session (`None` outside
    /// shared campaigns, and cleared when the session finishes). Live
    /// workers of one fleet never run the same session; after a worker
    /// dies, a resuming fleet re-leases its `running` sessions — the
    /// field records who owns what, making takeovers auditable. The
    /// key is omitted from the serialized record when `None`, so
    /// single-writer stores are byte-identical to the pre-lease format.
    pub lease: Option<String>,
}

/// One line of a store segment.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreRecord {
    Trial(StoredTrial),
    Session(SessionMeta),
}

/// Serializes a knob value as a compact tagged token (`i<int>`,
/// `f<float>`, `c<choice index>`); floats use shortest-roundtrip
/// formatting.
pub fn knob_value_to_token(v: &KnobValue) -> String {
    match v {
        KnobValue::Int(x) => format!("i{x}"),
        KnobValue::Float(x) => format!("f{x}"),
        KnobValue::Cat(x) => format!("c{x}"),
    }
}

/// Parses a [`knob_value_to_token`] token.
pub fn knob_value_from_token(s: &str) -> Result<KnobValue, String> {
    let (tag, rest) = s.split_at(s.len().min(1));
    match tag {
        "i" => rest.parse().map(KnobValue::Int).map_err(|e| format!("bad int token {s:?}: {e}")),
        "f" => {
            rest.parse().map(KnobValue::Float).map_err(|e| format!("bad float token {s:?}: {e}"))
        }
        "c" => rest.parse().map(KnobValue::Cat).map_err(|e| format!("bad cat token {s:?}: {e}")),
        _ => Err(format!("unknown knob token {s:?}")),
    }
}

fn f64_array_json(xs: &[f64]) -> String {
    let body = xs.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",");
    format!("[{body}]")
}

/// Serializes one record as a single JSON line (no trailing newline).
pub fn record_to_json(r: &StoreRecord) -> String {
    match r {
        StoreRecord::Trial(t) => {
            // Reuse the core event serializer for the shared prefix, so
            // the two schemas cannot drift apart silently.
            let event = event_to_json(&t.to_event());
            let prefix = event.strip_suffix('}').expect("event JSON is an object");
            let config = t
                .config
                .iter()
                .map(|v| format!("\"{}\"", knob_value_to_token(v)))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"kind\":\"trial\",{},\"config\":[{config}],\"metrics\":{}}}",
                prefix.strip_prefix('{').expect("event JSON is an object"),
                f64_array_json(&t.metrics),
            )
        }
        StoreRecord::Session(m) => {
            let status = match m.status {
                SessionStatus::Running => "running",
                SessionStatus::Done => "done",
            };
            let stopped = match m.stopped_at {
                Some(i) => format!("{i}"),
                None => "null".to_string(),
            };
            let warm =
                m.warm_points.iter().map(|p| f64_array_json(p)).collect::<Vec<_>>().join(",");
            let lease = match &m.lease {
                Some(w) => {
                    format!(",\"lease\":\"{}\"", llamatune::history_io::json_escape(w))
                }
                None => String::new(),
            };
            format!(
                "{{\"kind\":\"session\",\"session\":\"{}\",\"workload\":\"{}\",\"adapter\":\"{}\",\"status\":\"{status}\",\"stopped_at\":{stopped},\"fingerprint\":{},\"warm_points\":[{warm}]{lease}}}",
                llamatune::history_io::json_escape(&m.session),
                llamatune::history_io::json_escape(&m.workload),
                llamatune::history_io::json_escape(&m.adapter),
                f64_array_json(&m.fingerprint),
            )
        }
    }
}

/// Parses one [`record_to_json`] line. Keys may appear in any order;
/// unknown keys are rejected (the schema is closed, like the core
/// crate's event schema).
pub fn record_from_json(line: &str) -> Result<StoreRecord, String> {
    let mut sc = JsonScanner::new(line);
    sc.expect(b'{')?;
    let mut kind = None;
    let mut session = None;
    let mut iteration = None;
    let mut raw_score = None;
    let mut score = None;
    let mut point = None;
    let mut config = None;
    let mut metrics = None;
    let mut workload = None;
    let mut adapter = None;
    let mut status: Option<String> = None;
    let mut attempts = None;
    let mut stopped_at = None;
    let mut fingerprint = None;
    let mut warm_points = None;
    let mut lease = None;
    loop {
        let key = sc.string()?;
        sc.expect(b':')?;
        match key.as_str() {
            "kind" => kind = Some(sc.string()?),
            "session" => session = Some(sc.string()?),
            "iteration" => iteration = Some(sc.number()? as usize),
            "raw_score" => {
                raw_score = Some(if sc.literal("null") { None } else { Some(sc.number()?) })
            }
            "score" => score = Some(sc.number()?),
            "point" => point = Some(sc.number_array()?),
            "config" => {
                config = Some(
                    sc.string_array()?
                        .iter()
                        .map(|t| knob_value_from_token(t))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "metrics" => metrics = Some(sc.number_array()?),
            "workload" => workload = Some(sc.string()?),
            "adapter" => adapter = Some(sc.string()?),
            // Shared by both kinds with disjoint value sets; resolved
            // against `kind` once the whole line is scanned.
            "status" => status = Some(sc.string()?),
            "attempts" => attempts = Some(sc.number()? as u32),
            "stopped_at" => {
                stopped_at =
                    Some(if sc.literal("null") { None } else { Some(sc.number()? as usize) })
            }
            "fingerprint" => fingerprint = Some(sc.number_array()?),
            "warm_points" => {
                sc.expect(b'[')?;
                let mut pts = Vec::new();
                if sc.peek() == Some(b']') {
                    sc.expect(b']')?;
                } else {
                    loop {
                        pts.push(sc.number_array()?);
                        match sc.peek() {
                            Some(b',') => sc.expect(b',')?,
                            _ => {
                                sc.expect(b']')?;
                                break;
                            }
                        }
                    }
                }
                warm_points = Some(pts);
            }
            "lease" => lease = Some(sc.string()?),
            other => return Err(format!("unknown key {other:?}")),
        }
        match sc.peek() {
            Some(b',') => sc.expect(b',')?,
            _ => {
                sc.expect(b'}')?;
                break;
            }
        }
    }
    if !sc.done() {
        return Err("trailing bytes after record".to_string());
    }
    match kind.as_deref() {
        Some("trial") => {
            let raw_score = raw_score.ok_or("missing raw_score")?;
            let status = match status {
                Some(s) => TrialStatus::parse(&s)?,
                None => TrialStatus::derived(raw_score),
            };
            Ok(StoreRecord::Trial(StoredTrial {
                session: session.ok_or("missing session")?,
                iteration: iteration.ok_or("missing iteration")?,
                raw_score,
                score: score.ok_or("missing score")?,
                point: point.ok_or("missing point")?,
                config: config.ok_or("missing config")?,
                metrics: metrics.ok_or("missing metrics")?,
                status,
                attempts: attempts.unwrap_or(1),
            }))
        }
        Some("session") => {
            let status = match status.ok_or("missing status")?.as_str() {
                "running" => SessionStatus::Running,
                "done" => SessionStatus::Done,
                other => return Err(format!("unknown session status {other:?}")),
            };
            if attempts.is_some() {
                return Err("unknown key \"attempts\"".to_string());
            }
            Ok(StoreRecord::Session(SessionMeta {
                session: session.ok_or("missing session")?,
                workload: workload.ok_or("missing workload")?,
                adapter: adapter.ok_or("missing adapter")?,
                status,
                stopped_at: stopped_at.ok_or("missing stopped_at")?,
                fingerprint: fingerprint.ok_or("missing fingerprint")?,
                warm_points: warm_points.ok_or("missing warm_points")?,
                lease,
            }))
        }
        Some(other) => Err(format!("unknown record kind {other:?}")),
        None => Err("missing kind".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trial() -> StoredTrial {
        StoredTrial {
            session: "ycsb_a/llamatune/smac/s1".to_string(),
            iteration: 7,
            raw_score: Some(1234.5678901234567),
            score: 1234.5678901234567,
            point: vec![0.1, 0.25, 1.0 / 3.0],
            config: vec![KnobValue::Int(16_384), KnobValue::Float(0.5), KnobValue::Cat(2)],
            metrics: vec![0.0, 42.0, 1e-9],
            status: TrialStatus::Ok,
            attempts: 1,
        }
    }

    fn sample_meta() -> SessionMeta {
        SessionMeta {
            session: "ycsb_a/llamatune/smac/s1".to_string(),
            workload: "ycsb_a".to_string(),
            adapter: "llamatune-d16-hesbo-b0.2-k10000/s1".to_string(),
            status: SessionStatus::Running,
            stopped_at: None,
            fingerprint: vec![0.3, -0.1, 0.955],
            warm_points: vec![vec![0.5, 0.25], vec![0.75, 0.125]],
            lease: None,
        }
    }

    #[test]
    fn trial_roundtrip_is_bit_exact() {
        let t = StoreRecord::Trial(sample_trial());
        let parsed = record_from_json(&record_to_json(&t)).unwrap();
        assert_eq!(parsed, t);
        if let (StoreRecord::Trial(a), StoreRecord::Trial(b)) = (&t, &parsed) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            for (x, y) in a.point.iter().zip(&b.point) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn session_roundtrip_covers_both_statuses() {
        let running = StoreRecord::Session(sample_meta());
        assert_eq!(record_from_json(&record_to_json(&running)).unwrap(), running);
        let done = StoreRecord::Session(SessionMeta {
            status: SessionStatus::Done,
            stopped_at: Some(31),
            ..sample_meta()
        });
        assert_eq!(record_from_json(&record_to_json(&done)).unwrap(), done);
    }

    #[test]
    fn leases_roundtrip_and_are_omitted_when_absent() {
        let leased =
            StoreRecord::Session(SessionMeta { lease: Some("w3".to_string()), ..sample_meta() });
        let line = record_to_json(&leased);
        assert!(line.contains("\"lease\":\"w3\""));
        assert_eq!(record_from_json(&line).unwrap(), leased);
        // No lease → no key: single-writer records keep their exact
        // pre-lease byte layout.
        let unleased = record_to_json(&StoreRecord::Session(sample_meta()));
        assert!(!unleased.contains("lease"));
        assert_eq!(record_from_json(&unleased).unwrap(), StoreRecord::Session(sample_meta()));
    }

    #[test]
    fn crashed_trials_roundtrip() {
        let t = StoreRecord::Trial(StoredTrial {
            raw_score: None,
            score: -87.5,
            status: TrialStatus::Crashed,
            ..sample_trial()
        });
        assert_eq!(record_from_json(&record_to_json(&t)).unwrap(), t);
    }

    #[test]
    fn trial_status_and_attempts_roundtrip_and_are_omitted_when_derivable() {
        // A scored, single-attempt trial serializes without either key:
        // pre-fault-tolerance stores parse and re-serialize byte-exactly.
        let plain = record_to_json(&StoreRecord::Trial(sample_trial()));
        assert!(!plain.contains("\"status\""));
        assert!(!plain.contains("\"attempts\""));

        // A timed-out, retried trial carries both keys and round-trips.
        let t = StoreRecord::Trial(StoredTrial {
            raw_score: None,
            score: -87.5,
            status: TrialStatus::TimedOut,
            attempts: 3,
            ..sample_trial()
        });
        let line = record_to_json(&t);
        assert!(line.contains("\"status\":\"timed_out\""));
        assert!(line.contains("\"attempts\":3"));
        assert_eq!(record_from_json(&line).unwrap(), t);

        // Quarantined-with-score also round-trips (status contradicts
        // what raw_score alone would imply).
        let q = StoreRecord::Trial(StoredTrial {
            status: TrialStatus::Quarantined,
            attempts: 2,
            ..sample_trial()
        });
        assert_eq!(record_from_json(&record_to_json(&q)).unwrap(), q);

        // Unknown trial statuses are rejected; session status tokens do
        // not leak into the trial schema.
        let bad = line.replace("timed_out", "running");
        assert!(record_from_json(&bad).is_err());
        // `attempts` on a session record is rejected (closed schema).
        let meta = record_to_json(&StoreRecord::Session(sample_meta()));
        let bad_meta = meta.replace("\"stopped_at\"", "\"attempts\":2,\"stopped_at\"");
        assert!(record_from_json(&bad_meta).is_err());
    }

    #[test]
    fn knob_tokens_roundtrip() {
        for v in [
            KnobValue::Int(-1),
            KnobValue::Int(i64::MAX),
            KnobValue::Float(0.1 + 0.2),
            KnobValue::Float(-1e300),
            KnobValue::Cat(0),
            KnobValue::Cat(17),
        ] {
            assert_eq!(knob_value_from_token(&knob_value_to_token(&v)).unwrap(), v);
        }
        assert!(knob_value_from_token("x5").is_err());
        assert!(knob_value_from_token("").is_err());
        assert!(knob_value_from_token("i").is_err());
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(record_from_json("{}").is_err());
        assert!(record_from_json("{\"kind\":\"trial\"}").is_err(), "missing fields");
        assert!(record_from_json("{\"kind\":\"nope\",\"session\":\"s\"}").is_err());
        let valid = record_to_json(&StoreRecord::Trial(sample_trial()));
        assert!(record_from_json(&valid[..valid.len() - 2]).is_err(), "truncated");
        assert!(record_from_json(&format!("{valid}garbage")).is_err(), "trailing bytes");
        let extra = valid.replace("\"kind\"", "\"bogus\":1,\"kind\"");
        assert!(record_from_json(&extra).is_err(), "closed schema");
    }

    #[test]
    fn trial_projects_onto_the_core_event_schema() {
        let t = sample_trial();
        let e = t.to_event();
        let line = llamatune::history_io::event_to_json(&e);
        let parsed = llamatune::history_io::event_from_json(&line).unwrap();
        assert_eq!(parsed, e);
        let p = t.to_prior();
        assert_eq!(p.iteration, t.iteration);
        assert_eq!(p.config.values(), t.config.as_slice());
    }
}

//! # llamatune-store: the persistent tuning knowledge store
//!
//! LlamaTune's entire pitch is sample efficiency — every DBMS
//! evaluation is expensive — yet a process that exits forgets every
//! trial it paid for. This crate makes the knowledge base of the
//! paper's Figure 1 *durable* and layers two consumers on top:
//!
//! * [`TrialStore`] — an append-only, crash-safe store of trial and
//!   session records: JSONL segments sealed through an atomically
//!   committed manifest, torn-write recovery on the active segment, and
//!   an in-memory index keyed by session label and iteration (see
//!   [`store`] for the format). Records are a superset of the
//!   core crate's `TrialEvent` schema, so a store exports the exact
//!   campaign transcript the sequential tooling already reads.
//! * **Pluggable backends** ([`backend`]) — the store reads and writes
//!   named objects through the [`StoreBackend`] trait:
//!   [`LocalDirBackend`] keeps the original one-file-per-object layout
//!   (manifest committed by atomic rename), [`ObjectStoreBackend`]
//!   emulates S3-style object storage (no rename; manifest committed
//!   by conditional put). Fleet mode ([`TrialStore::open_shared`])
//!   lets N tuning workers append into one store through per-writer
//!   active segments and a manifest CAS retry loop, with
//!   [`TrialStore::open_reader`] serving the merged view. [`faults`]
//!   injects deterministic kill-at-byte failures at this seam for the
//!   CI crash suites.
//! * **Checkpoint/resume** — the runtime crate's `Campaign` flushes
//!   every completed trial through the store and, on restart,
//!   `Campaign::resume` replays recorded trials to rebuild optimizer
//!   state (the same rebuild-and-replay contract as the constant-liar
//!   wrapper) and continues each session bit-identically to an
//!   uninterrupted run.
//! * **Warm-start transfer** ([`transfer`]) — workloads are
//!   fingerprinted from a probe run's internal metrics; a new session
//!   whose fingerprint lands near a stored campaign seeds its first *k*
//!   trials from that campaign's top configurations instead of LHS.
//!
//! The store is deliberately plain text: segments are inspectable with
//! `grep`, exportable with [`TrialStore::export_jsonl`], and robust to
//! partial writes by construction rather than by checksum machinery.

pub mod backend;
pub mod faults;
pub mod record;
pub mod store;
pub mod transfer;

pub use backend::{
    lock_recover, revision_of, CasConflict, LocalDirBackend, ObjectStoreBackend,
    ObjectStoreOptions, Revision, StoreBackend, MANIFEST_NAME,
};
pub use faults::{FailingBackend, FaultPlan};
pub use record::{
    knob_value_from_token, knob_value_to_token, record_from_json, record_to_json, SessionMeta,
    SessionStatus, StoreRecord, StoredTrial,
};
pub use store::{rebuild_history, CompactionStats, StoreOptions, TrialStore};
pub use transfer::{cosine_distance, SessionMatch};

//! Warm-start transfer: matching a new session against the store's past
//! campaigns by workload fingerprint and harvesting their best points.
//!
//! The transfer direction follows λ-Tune and L2T-Tune layered on a
//! LlamaTune-style space: a probe run fingerprints the new workload
//! (`llamatune_workloads::workload_fingerprint`), the store finds the
//! most similar *finished* session by cosine distance, and that
//! session's top-scoring optimizer-space points seed the new session's
//! first *k* trials in place of random/LHS initialization.
//!
//! Points are transferred in *optimizer space*, so the receiving session
//! must decode them through an equivalent adapter — identical kind,
//! hyperparameters, and projection seed. Callers enforce that with the
//! [`TrialStore::nearest_session_where`] filter over the structured
//! [`SessionMeta::adapter`] identity the campaign driver records.

use crate::record::SessionMeta;
use crate::store::TrialStore;

/// Cosine distance `1 - cos(a, b)` in `[0, 2]`; `0` means identical
/// direction. Mismatched lengths and zero vectors are maximally distant
/// (they carry no evidence of similarity).
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return 2.0;
    }
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 2.0;
    }
    1.0 - dot / (na * nb)
}

/// A fingerprint match against a stored session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMatch {
    /// Matched session label.
    pub session: String,
    /// Workload the matched session tuned.
    pub workload: String,
    /// Cosine distance between the fingerprints (lower is closer).
    pub distance: f64,
}

impl TrialStore {
    /// The stored session whose fingerprint is closest to `fingerprint`,
    /// among sessions accepted by `filter` (ties break toward the
    /// lexicographically first label, so matching is deterministic).
    /// Sessions without a recorded fingerprint never match.
    pub fn nearest_session_where(
        &self,
        fingerprint: &[f64],
        filter: impl Fn(&SessionMeta) -> bool,
    ) -> Option<SessionMatch> {
        let mut best: Option<SessionMatch> = None;
        for label in self.sessions() {
            let Some(meta) = self.session_meta(&label) else { continue };
            if meta.fingerprint.is_empty() || !filter(&meta) {
                continue;
            }
            let distance = cosine_distance(fingerprint, &meta.fingerprint);
            if best.as_ref().is_none_or(|b| distance < b.distance) {
                best = Some(SessionMatch { session: label, workload: meta.workload, distance });
            }
        }
        best
    }

    /// The top-`k` optimizer-space points of a stored session, ordered
    /// by penalized score (best first) and deduplicated by *decoded
    /// configuration* — LlamaTune's bucketization collapses many points
    /// onto one configuration, and transferring the "same" top config
    /// five times would waste the very init budget transfer is meant to
    /// save. Iteration 0 and crashed trials are excluded (the default
    /// config is free, and a config that crashed a similar workload is
    /// a liability, not knowledge).
    pub fn top_points(&self, session: &str, k: usize) -> Vec<Vec<f64>> {
        let mut trials = self.trials_for(session);
        trials.retain(|t| t.iteration > 0 && t.raw_score.is_some() && !t.point.is_empty());
        // Stable ordering: score descending, iteration ascending on ties.
        trials.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(k);
        for t in trials {
            let key: Vec<String> =
                t.config.iter().map(crate::record::knob_value_to_token).collect();
            if seen.insert(key) {
                out.push(t.point);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Convenience: the top-`k` points of the nearest finished session
    /// within `max_distance`, or empty when nothing similar is stored.
    pub fn warm_points(
        &self,
        fingerprint: &[f64],
        k: usize,
        max_distance: f64,
        filter: impl Fn(&SessionMeta) -> bool,
    ) -> Vec<Vec<f64>> {
        match self.nearest_session_where(fingerprint, filter) {
            Some(m) if m.distance <= max_distance => self.top_points(&m.session, k),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SessionStatus, StoredTrial};
    use llamatune_space::KnobValue;

    fn tmp_store(tag: &str) -> TrialStore {
        let dir = std::env::temp_dir()
            .join("llamatune_store_transfer")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TrialStore::open(dir).unwrap()
    }

    fn meta(session: &str, workload: &str, fp: Vec<f64>) -> SessionMeta {
        SessionMeta {
            session: session.to_string(),
            workload: workload.to_string(),
            adapter: "identity/s1".to_string(),
            status: SessionStatus::Done,
            stopped_at: None,
            fingerprint: fp,
            warm_points: vec![],
            lease: None,
        }
    }

    fn trial(session: &str, iteration: usize, score: f64, crashed: bool) -> StoredTrial {
        StoredTrial {
            session: session.to_string(),
            iteration,
            raw_score: if crashed { None } else { Some(score) },
            score,
            point: if iteration == 0 { vec![] } else { vec![iteration as f64 / 10.0, 0.5] },
            config: vec![KnobValue::Int(iteration as i64)],
            metrics: vec![],
            status: llamatune::session::TrialStatus::derived(if crashed {
                None
            } else {
                Some(score)
            }),
            attempts: 1,
        }
    }

    #[test]
    fn cosine_distance_basics() {
        assert!(cosine_distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(cosine_distance(&[1.0], &[1.0, 0.0]), 2.0, "length mismatch");
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 2.0, "zero vector");
        assert_eq!(cosine_distance(&[], &[]), 2.0);
    }

    #[test]
    fn nearest_session_matches_by_fingerprint_and_filter() {
        let store = tmp_store("nearest");
        store.append_session(&meta("a/x/s1", "a", vec![1.0, 0.0])).unwrap();
        store.append_session(&meta("b/x/s1", "b", vec![0.8, 0.6])).unwrap();
        store.append_session(&meta("c/x/s1", "c", vec![0.0, 1.0])).unwrap();
        let probe = [0.9, 0.1];
        let m = store.nearest_session_where(&probe, |_| true).unwrap();
        assert_eq!(m.session, "a/x/s1");
        assert!(m.distance < 0.01);
        // Filtering out the closest falls through to the next closest.
        let m = store.nearest_session_where(&probe, |meta| meta.workload != "a").unwrap();
        assert_eq!(m.session, "b/x/s1");
        // No candidate at all.
        assert!(store.nearest_session_where(&probe, |_| false).is_none());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn sessions_without_fingerprints_never_match() {
        let store = tmp_store("nofp");
        store.append_session(&meta("a/x/s1", "a", vec![])).unwrap();
        assert!(store.nearest_session_where(&[1.0, 0.0], |_| true).is_none());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn top_points_rank_dedup_and_exclude_crashes_and_default() {
        let store = tmp_store("top");
        let s = "a/x/s1";
        store.append_trial(&trial(s, 0, 100.0, false)).unwrap(); // default: excluded
        store.append_trial(&trial(s, 1, 5.0, false)).unwrap();
        store.append_trial(&trial(s, 2, 50.0, true)).unwrap(); // crashed: excluded
        store.append_trial(&trial(s, 3, 9.0, false)).unwrap();
        store.append_trial(&trial(s, 4, 7.0, false)).unwrap();
        // A lower-scoring trial whose point differs but whose *decoded
        // config* duplicates iteration 3's (bucketization collapse).
        let mut dup = trial(s, 5, 1.0, false);
        dup.config = trial(s, 3, 0.0, false).config;
        store.append_trial(&dup).unwrap();
        let top = store.top_points(s, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], vec![0.3, 0.5], "iteration 3 scored highest");
        assert_eq!(top[1], vec![0.4, 0.5], "iteration 4 next; duplicate config skipped");
        let all = store.top_points(s, 10);
        assert_eq!(all.len(), 3, "three distinct non-crashed configurations");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn warm_points_respect_the_distance_threshold() {
        let store = tmp_store("warm");
        store.append_session(&meta("a/x/s1", "a", vec![0.0, 1.0])).unwrap();
        store.append_trial(&trial("a/x/s1", 0, 1.0, false)).unwrap();
        store.append_trial(&trial("a/x/s1", 1, 5.0, false)).unwrap();
        let near = [0.1, 0.995];
        let far = [1.0, 0.0];
        assert_eq!(store.warm_points(&near, 3, 0.25, |_| true).len(), 1);
        assert!(store.warm_points(&far, 3, 0.25, |_| true).is_empty());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}

//! Determinism under interruption — the acceptance test of the
//! persistent knowledge store: a campaign checkpointed into a store,
//! killed at an *arbitrary* point in its record stream (any trial
//! boundary, and even mid-write), and resumed produces a byte-identical
//! exported JSONL event history to the same campaign run uninterrupted.
//!
//! The interruption is simulated at the storage layer, which is exactly
//! where a real `kill -9` bites: the uninterrupted campaign's record
//! stream is replayed up to a cut point into a fresh store directory
//! (optionally tearing the final line in half, as a crash mid-`write`
//! would), and `Campaign::resume` continues from whatever survived.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignOptions, CampaignSpec, OptimizerKind, WarmStartOptions,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::{
    ObjectStoreBackend, ObjectStoreOptions, StoreBackend, StoreOptions, TrialStore,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_checkpoint_resume")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign() -> Campaign {
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1, 2],
    };
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: 2,
        session_parallelism: 1,
        run_options: Some(run_opts),
        ..Default::default()
    };
    Campaign::new(postgres_v9_6(), spec, opts)
}

/// The store's raw record stream: every segment's text, in manifest
/// order, the active segment last.
fn record_stream(dir: &std::path::Path) -> String {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let sealed: Vec<&str> = manifest.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let mut out = String::new();
    for name in &sealed {
        out.push_str(&std::fs::read_to_string(dir.join(name)).unwrap());
    }
    let active = dir.join(format!("seg-{:06}.jsonl", sealed.len() + 1));
    if active.exists() {
        out.push_str(&std::fs::read_to_string(active).unwrap());
    }
    out
}

/// Writes a prefix of a record stream as a fresh single-segment store
/// directory — the on-disk state a kill at that byte would leave.
fn store_from_prefix(dir: &std::path::Path, stream_prefix: &str) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("MANIFEST"), "llamatune-store v1\n").unwrap();
    std::fs::write(dir.join("seg-000001.jsonl"), stream_prefix).unwrap();
}

#[test]
fn resume_from_any_cut_reproduces_the_uninterrupted_history() {
    let campaign = campaign();

    // Ground truth: the same campaign, uninterrupted (with rotation
    // exercised: tiny segments).
    let truth_dir = tmp_dir("truth");
    let truth_store =
        TrialStore::open_with(&truth_dir, StoreOptions { segment_records: 7 }).unwrap();
    let truth = campaign.run_with_store(&truth_store).unwrap();
    assert!(truth_store.sealed_segments().len() >= 2, "rotation exercised");
    let truth_export = truth_store.export_jsonl();
    let stream = record_stream(&truth_dir);
    let lines: Vec<&str> = stream.lines().collect();
    assert!(lines.len() > 20, "2 sessions x (meta + 9 trials + meta)");

    // Kill the campaign after K whole records, for cuts inside session
    // 1, at the session boundary, and inside session 2.
    for cut_records in [1, 4, 8, 12, 15, lines.len() - 1] {
        let prefix: String = lines[..cut_records].iter().map(|l| format!("{l}\n")).collect();
        let dir = tmp_dir(&format!("cut_{cut_records}"));
        store_from_prefix(&dir, &prefix);
        let store = TrialStore::open(&dir).unwrap();
        let resumed = campaign.resume(&store).unwrap();
        assert_eq!(
            store.export_jsonl(),
            truth_export,
            "cut after {cut_records} records must resume to the identical history"
        );
        for (a, b) in truth.iter().zip(&resumed) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.history.scores, b.history.scores);
            assert_eq!(a.history.points, b.history.points);
            assert_eq!(a.history.configs, b.history.configs);
            assert_eq!(a.history.best_curve, b.history.best_curve);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&truth_dir).unwrap();
}

#[test]
fn resume_after_a_torn_write_reproduces_the_uninterrupted_history() {
    let campaign = campaign();
    let truth_dir = tmp_dir("torn_truth");
    let truth_store = TrialStore::open(&truth_dir).unwrap();
    campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();
    let stream = record_stream(&truth_dir);

    // Kill mid-write: cut the stream at raw byte offsets, leaving a
    // half-written final line behind.
    for frac in [0.2, 0.5, 0.8] {
        let cut = (stream.len() as f64 * frac) as usize;
        let cut = (cut..stream.len()).find(|&i| stream.is_char_boundary(i)).unwrap();
        let dir = tmp_dir(&format!("torn_{cut}"));
        store_from_prefix(&dir, &stream[..cut]);
        let store = TrialStore::open(&dir).unwrap();
        let resumed_export_before = store.export_jsonl();
        assert!(
            truth_export.starts_with(&resumed_export_before) || !resumed_export_before.is_empty(),
            "recovered prefix is a clean subset"
        );
        campaign.resume(&store).unwrap();
        assert_eq!(store.export_jsonl(), truth_export, "torn cut at byte {cut}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&truth_dir).unwrap();
}

#[test]
fn resumed_thrice_campaign_compacts_to_the_same_export() {
    let campaign = campaign();

    // Ground truth: the uninterrupted campaign.
    let truth_dir = tmp_dir("compact_truth");
    let truth_store = TrialStore::open(&truth_dir).unwrap();
    campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();

    // Kill-and-resume the campaign three times: each cycle truncates
    // the previous cycle's record stream mid-flight and resumes from
    // the survivors, re-running the partial trailing round and thereby
    // appending duplicate (session, iteration) records.
    let mut stream = record_stream(&truth_dir);
    let mut final_dir = None;
    for (cycle, frac) in [(1, 0.3), (2, 0.55), (3, 0.8)] {
        let lines: Vec<&str> = stream.lines().collect();
        let keep = ((lines.len() as f64 * frac) as usize).max(1);
        let prefix: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        let dir = tmp_dir(&format!("compact_cycle_{cycle}"));
        store_from_prefix(&dir, &prefix);
        let store = TrialStore::open(&dir).unwrap();
        campaign.resume(&store).unwrap();
        assert_eq!(store.export_jsonl(), truth_export, "cycle {cycle} resumed to truth");
        stream = record_stream(&dir);
        if let Some(old) = final_dir.replace(dir) {
            std::fs::remove_dir_all(old).unwrap();
        }
    }

    // The thrice-resumed store drags duplicate records and superseded
    // metadata; compaction rewrites them away without changing the
    // exported history — byte for byte.
    let dir = final_dir.unwrap();
    let store = TrialStore::open(&dir).unwrap();
    assert!(
        store.trial_records() > store.trial_count(),
        "resume cycles must have appended duplicates for this test to bite"
    );
    let stats = store.compact().unwrap();
    assert_eq!(stats.trial_records_after, store.trial_count());
    assert!(stats.trial_records_before > stats.trial_records_after);
    assert_eq!(store.export_jsonl(), truth_export, "compaction preserves the export");

    // And the compacted store still resumes for free: rebuilt
    // histories, zero re-evaluation, identical export.
    drop(store);
    let store = TrialStore::open(&dir).unwrap();
    assert_eq!(store.export_jsonl(), truth_export);
    let records_before = store.trial_records();
    campaign.resume(&store).unwrap();
    assert_eq!(store.trial_records(), records_before, "no re-evaluation after compaction");
    assert_eq!(store.export_jsonl(), truth_export);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&truth_dir).unwrap();
}

// ---------------------------------------------------------------------
// The same guarantees, parameterized over the S3-style object backend:
// no rename (manifest committed by conditional put), eventual listings
// on. The cut/torn states are installed through backend puts — the
// object-store equivalent of the wreckage a killed worker leaves.
// ---------------------------------------------------------------------

fn object_backend() -> Arc<dyn StoreBackend> {
    Arc::new(ObjectStoreBackend::new(ObjectStoreOptions { eventual_list: true }))
}

/// The object-store analogue of [`store_from_prefix`]: one segment
/// object holding the stream prefix, plus an empty committed manifest.
fn object_store_from_prefix(prefix: &str) -> TrialStore {
    let be = object_backend();
    be.put("seg-000001.jsonl", prefix.as_bytes()).unwrap();
    be.commit_manifest(b"llamatune-store v1\n", 0).unwrap().unwrap();
    TrialStore::open_backend(be, StoreOptions::default()).unwrap()
}

/// The record stream of a single-writer store on an object backend, in
/// manifest order, the derived active segment last.
fn object_record_stream(be: &dyn StoreBackend) -> String {
    let (bytes, _) = be.read_manifest().unwrap();
    let manifest = String::from_utf8(bytes.unwrap()).unwrap();
    let sealed: Vec<&str> = manifest.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let mut out = String::new();
    let mut max_index = 0usize;
    for name in &sealed {
        out.push_str(std::str::from_utf8(&be.get(name).unwrap().unwrap()).unwrap());
        let idx: usize =
            name.trim_start_matches("seg-").trim_end_matches(".jsonl").parse().unwrap();
        max_index = max_index.max(idx);
    }
    let active = format!("seg-{:06}.jsonl", max_index + 1);
    if let Some(bytes) = be.get(&active).unwrap() {
        out.push_str(std::str::from_utf8(&bytes).unwrap());
    }
    out
}

#[test]
fn object_store_campaign_matches_the_local_store_byte_for_byte() {
    // The backend must be invisible to the recorded history: the same
    // campaign checkpointed into a local directory and into the object
    // store exports identical JSONL.
    let campaign = campaign();
    let local_dir = tmp_dir("object_vs_local");
    let local = TrialStore::open(&local_dir).unwrap();
    campaign.run_with_store(&local).unwrap();

    let store =
        TrialStore::open_backend(object_backend(), StoreOptions { segment_records: 7 }).unwrap();
    campaign.run_with_store(&store).unwrap();
    assert!(store.sealed_segments().len() >= 2, "CAS rotation exercised");
    assert_eq!(store.export_jsonl(), local.export_jsonl());
    std::fs::remove_dir_all(&local_dir).unwrap();
}

#[test]
fn object_store_resume_from_any_cut_reproduces_the_uninterrupted_history() {
    let campaign = campaign();
    let truth_be = object_backend();
    let truth_store =
        TrialStore::open_backend(truth_be.clone(), StoreOptions { segment_records: 7 }).unwrap();
    let truth = campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();
    let stream = object_record_stream(&*truth_be);
    let lines: Vec<&str> = stream.lines().collect();
    assert!(lines.len() > 20, "2 sessions x (meta + 9 trials + meta)");

    for cut_records in [1, 4, 8, 12, 15, lines.len() - 1] {
        let prefix: String = lines[..cut_records].iter().map(|l| format!("{l}\n")).collect();
        let store = object_store_from_prefix(&prefix);
        let resumed = campaign.resume(&store).unwrap();
        assert_eq!(
            store.export_jsonl(),
            truth_export,
            "cut after {cut_records} records must resume to the identical history"
        );
        for (a, b) in truth.iter().zip(&resumed) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.history.scores, b.history.scores);
            assert_eq!(a.history.points, b.history.points);
            assert_eq!(a.history.configs, b.history.configs);
            assert_eq!(a.history.best_curve, b.history.best_curve);
        }
    }
}

#[test]
fn object_store_resume_after_a_torn_write_reproduces_the_history() {
    let campaign = campaign();
    let truth_be = object_backend();
    let truth_store = TrialStore::open_backend(truth_be.clone(), StoreOptions::default()).unwrap();
    campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();
    let stream = object_record_stream(&*truth_be);

    for frac in [0.2, 0.5, 0.8] {
        let cut = (stream.len() as f64 * frac) as usize;
        let cut = (cut..stream.len()).find(|&i| stream.is_char_boundary(i)).unwrap();
        let store = object_store_from_prefix(&stream[..cut]);
        campaign.resume(&store).unwrap();
        assert_eq!(store.export_jsonl(), truth_export, "torn cut at byte {cut}");

        // And the resumed object store still compacts losslessly.
        store.compact().unwrap();
        assert_eq!(store.export_jsonl(), truth_export, "compaction after torn-cut resume");
    }
}

#[test]
fn sparse_gp_campaign_is_worker_invariant_and_resumes_byte_identically() {
    // The sparse surrogate fans its data-term build and blocked
    // factorizations across `trial_workers` threads; none of that
    // parallelism may leak into recorded histories. The same campaign
    // at different worker counts must export byte-identical JSONL, and
    // a mid-flight kill must resume to that same export.
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::GpBoSparse],
        seeds: vec![1],
    };
    let opts_for = |workers: usize| CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: workers,
        session_parallelism: 1,
        run_options: Some(run_opts.clone()),
        ..Default::default()
    };

    let truth_dir = tmp_dir("sparse_truth");
    let truth_store = TrialStore::open(&truth_dir).unwrap();
    let campaign = Campaign::new(postgres_v9_6(), spec.clone(), opts_for(1));
    campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();

    for workers in [2usize, 4] {
        let dir = tmp_dir(&format!("sparse_w{workers}"));
        let store = TrialStore::open(&dir).unwrap();
        Campaign::new(postgres_v9_6(), spec.clone(), opts_for(workers))
            .run_with_store(&store)
            .unwrap();
        assert_eq!(
            store.export_jsonl(),
            truth_export,
            "trial_workers={workers} changed the sparse campaign's history"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Kill at a few trial boundaries and resume (at yet another worker
    // count) to the identical export.
    let stream = record_stream(&truth_dir);
    let lines: Vec<&str> = stream.lines().collect();
    let resume_campaign = Campaign::new(postgres_v9_6(), spec, opts_for(2));
    for cut_records in [2, lines.len() / 2, lines.len() - 1] {
        let prefix: String = lines[..cut_records].iter().map(|l| format!("{l}\n")).collect();
        let dir = tmp_dir(&format!("sparse_cut_{cut_records}"));
        store_from_prefix(&dir, &prefix);
        let store = TrialStore::open(&dir).unwrap();
        resume_campaign.resume(&store).unwrap();
        assert_eq!(
            store.export_jsonl(),
            truth_export,
            "sparse campaign cut after {cut_records} records must resume to truth"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&truth_dir).unwrap();
}

#[test]
fn warm_started_campaign_resumes_with_its_recorded_warm_points() {
    // A warm-started session interrupted during initialization must
    // resume with the warm points recorded in its metadata — not
    // re-match against a store that may have learned more since.
    let catalog = postgres_v9_6();
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let base_opts = CampaignOptions {
        session: SessionOptions { iterations: 6, n_init: 3, ..Default::default() },
        batch_size: 2,
        trial_workers: 2,
        run_options: Some(run_opts),
        ..Default::default()
    };
    let source = CampaignSpec {
        workloads: vec!["ycsb_a".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![7],
    };
    let dir = tmp_dir("warm_resume");
    let store = TrialStore::open(&dir).unwrap();
    Campaign::new(catalog.clone(), source, base_opts.clone()).run_with_store(&store).unwrap();

    let target = CampaignSpec {
        workloads: vec!["ycsb_f".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![7],
    };
    let opts = CampaignOptions {
        warm_start: Some(WarmStartOptions { k: 2, max_distance: 1.9 }),
        ..base_opts
    };
    let campaign = Campaign::new(catalog, target, opts);
    let truth = campaign.run_with_store(&store).unwrap();
    let label = &truth[0].label;
    let meta = store.session_meta(label).unwrap();
    assert!(
        !meta.warm_points.is_empty(),
        "the target session must have transferred at least one warm point"
    );
    let truth_export = store.export_jsonl();

    // Interrupt the *target* session right after its first trial: keep
    // the stream up to (and including) the target's meta + 2 records.
    let stream = record_stream(&dir);
    let target_meta_line = stream
        .lines()
        .position(|l| l.contains("\"kind\":\"session\"") && l.contains("ycsb_f"))
        .expect("target session meta recorded");
    let keep = target_meta_line + 3;
    let prefix: String = stream.lines().take(keep).map(|l| format!("{l}\n")).collect();
    let cut_dir = tmp_dir("warm_resume_cut");
    std::fs::create_dir_all(&cut_dir).unwrap();
    std::fs::write(cut_dir.join("MANIFEST"), "llamatune-store v1\n").unwrap();
    std::fs::write(cut_dir.join("seg-000001.jsonl"), &prefix).unwrap();
    let cut_store = TrialStore::open(&cut_dir).unwrap();
    let resumed_meta = cut_store.session_meta(label).unwrap();
    assert_eq!(resumed_meta.warm_points, meta.warm_points, "warm points survive the cut");
    campaign.resume(&cut_store).unwrap();
    assert_eq!(cut_store.export_jsonl(), truth_export);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&cut_dir).unwrap();
}

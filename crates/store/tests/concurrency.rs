//! Fleet concurrency suite: writers racing segment rotation and
//! compaction against the object-store backend must never lose a
//! committed trial.
//!
//! The schedule is seeded, not clock-driven: each seed varies the
//! per-writer record counts and compaction cadence, the threads then
//! interleave freely, and every assertion is an *invariant* over the
//! final merged state (each acked append visible, in order, bit-exact)
//! rather than over one particular interleaving. With 2-record
//! segments, every few appends cross a rotation — so the manifest CAS
//! retry loop, the compaction rebase loop, and the
//! keep-foreign-actives-registered rule are all exercised on every
//! run.

use llamatune::backoff::BackoffPolicy;
use llamatune_store::{
    CasConflict, ObjectStoreBackend, ObjectStoreOptions, Revision, StoreBackend, StoreOptions,
    StoredTrial, TrialStore,
};
use std::io;
use std::sync::Arc;

fn trial(session: &str, iteration: usize, score: f64) -> StoredTrial {
    StoredTrial {
        session: session.to_string(),
        iteration,
        raw_score: Some(score),
        score,
        point: vec![score / 100.0],
        config: vec![llamatune_space::KnobValue::Int(iteration as i64)],
        metrics: vec![score],
        status: llamatune::session::TrialStatus::Ok,
        attempts: 1,
    }
}

fn eventual_object_backend() -> Arc<dyn StoreBackend> {
    // Eventual listings on: correctness must come from the manifest.
    Arc::new(ObjectStoreBackend::new(ObjectStoreOptions { eventual_list: true }))
}

#[test]
fn racing_rotation_and_compaction_never_lose_a_committed_trial() {
    for seed in 0..5usize {
        let be = eventual_object_backend();
        let n_per_writer = 40 + seed * 9;
        let compact_every = 7 + seed * 2;
        std::thread::scope(|scope| {
            for (w, tag) in ["wa", "wb"].into_iter().enumerate() {
                let be = be.clone();
                scope.spawn(move || {
                    let store =
                        TrialStore::open_shared(be, tag, StoreOptions { segment_records: 2 })
                            .unwrap();
                    let session = format!("sess_{tag}");
                    for i in 0..n_per_writer {
                        store.append_trial(&trial(&session, i, (i * (w + 2)) as f64)).unwrap();
                        // Offset cadences so the two writers' compactions
                        // and rotations collide at varying phases.
                        if (i + w * 3) % compact_every == compact_every - 1 {
                            store.compact().unwrap();
                        }
                    }
                });
            }
        });

        let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
        for (w, tag) in ["wa", "wb"].into_iter().enumerate() {
            let trials = reader.trials_for(&format!("sess_{tag}"));
            assert_eq!(
                trials.len(),
                n_per_writer,
                "seed {seed}: writer {tag} lost committed trials"
            );
            for (i, t) in trials.iter().enumerate() {
                assert_eq!(t.iteration, i, "seed {seed}/{tag}");
                assert_eq!(
                    t.score.to_bits(),
                    ((i * (w + 2)) as f64).to_bits(),
                    "seed {seed}/{tag}: trial {i} corrupted"
                );
            }
        }
    }
}

#[test]
fn one_shared_handle_is_safe_across_threads_too() {
    // A single fleet handle is Sync: campaign workers within one
    // process may share it, interleaving appends to different sessions.
    let be = eventual_object_backend();
    let store = Arc::new(
        TrialStore::open_shared(be.clone(), "w0", StoreOptions { segment_records: 3 }).unwrap(),
    );
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let store = store.clone();
            scope.spawn(move || {
                let session = format!("lane_{t}");
                for i in 0..25 {
                    store.append_trial(&trial(&session, i, i as f64)).unwrap();
                }
            });
        }
    });
    store.compact().unwrap();
    drop(store);
    let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
    for t in 0..4 {
        assert_eq!(reader.trials_for(&format!("lane_{t}")).len(), 25);
    }
}

/// A backend on which every manifest commit loses the race: it mimics
/// a peer fleet that always commits first. All other operations pass
/// through. The conflict reports the inner backend's real manifest, so
/// retrying CAS loops re-read a consistent view and lose again.
#[derive(Debug)]
struct AlwaysContendedBackend {
    inner: Arc<dyn StoreBackend>,
}

impl StoreBackend for AlwaysContendedBackend {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get(name)
    }
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put(name, data)
    }
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.append(name, data)
    }
    fn sync(&self, name: &str) -> io::Result<()> {
        self.inner.sync(name)
    }
    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }
    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
    fn delete(&self, name: &str) -> io::Result<()> {
        self.inner.delete(name)
    }
    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn read_manifest(&self) -> io::Result<(Option<Vec<u8>>, Revision)> {
        self.inner.read_manifest()
    }
    fn commit_manifest(
        &self,
        _data: &[u8],
        _expected: Revision,
    ) -> io::Result<Result<Revision, CasConflict>> {
        let (current, revision) = self.inner.read_manifest()?;
        Ok(Err(CasConflict { current, revision }))
    }
}

/// Pins the CAS retry budget: a writer that loses *every* manifest race
/// must give up after exactly [`BackoffPolicy::STORE_CAS`]'s 32
/// attempts with a clean `TimedOut` error naming the contended step —
/// never spin forever, never panic, never corrupt the winning store.
#[test]
fn cas_exhaustion_is_a_clean_timeout_after_the_pinned_budget() {
    let inner: Arc<dyn StoreBackend> = eventual_object_backend();
    // A healthy writer installs the manifest the loser will keep losing
    // against.
    let winner =
        TrialStore::open_shared(inner.clone(), "w0", StoreOptions { segment_records: 2 }).unwrap();
    winner.append_trial(&trial("sess_w0", 0, 7.0)).unwrap();

    let contended: Arc<dyn StoreBackend> =
        Arc::new(AlwaysContendedBackend { inner: inner.clone() });
    let err = TrialStore::open_shared(contended, "loser", StoreOptions::default())
        .expect_err("registration against a permanently contended manifest must fail");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut, "livelock surfaces as a timeout: {err}");
    let msg = err.to_string();
    assert!(msg.contains("manifest CAS contention"), "unexpected message: {msg}");
    // The budget is pinned to the shared policy — if STORE_CAS changes,
    // this string (and the latency envelope of every CAS loop) changes
    // with it, and this assertion is the reminder to re-justify it.
    assert_eq!(BackoffPolicy::STORE_CAS.max_retries, 32);
    assert!(
        msg.contains("lost 32 consecutive races"),
        "retry count must match STORE_CAS's budget: {msg}"
    );

    // The loser's failed registration leaked nothing into the winning
    // store: no stray segments, the acked trial intact.
    drop(winner);
    let reader = TrialStore::open_reader(inner, StoreOptions::default()).unwrap();
    assert_eq!(reader.trials_for("sess_w0").len(), 1);
}

#[test]
fn takeover_duplicates_across_writers_merge_content_identically() {
    // After a kill, a resuming fleet worker re-runs a dead peer's
    // partial round: same (session, iteration) keys, identical content
    // (determinism). The merged view must collapse them regardless of
    // which writer's segments replay first.
    let be = eventual_object_backend();
    {
        let dead =
            TrialStore::open_shared(be.clone(), "w_dead", StoreOptions { segment_records: 2 })
                .unwrap();
        for i in 0..5 {
            dead.append_trial(&trial("shared_sess", i, i as f64)).unwrap();
        }
        // Dies here; its active segment stays registered.
    }
    let heir =
        TrialStore::open_shared(be.clone(), "w_heir", StoreOptions { segment_records: 2 }).unwrap();
    // The heir sees the dead writer's records at open...
    assert_eq!(heir.trials_for("shared_sess").len(), 5);
    // ...and re-appends the trailing round (identical content) before
    // continuing — exactly what Campaign::run_shared's takeover does.
    for i in 3..8 {
        heir.append_trial(&trial("shared_sess", i, i as f64)).unwrap();
    }
    heir.compact().unwrap();
    drop(heir);
    let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
    let trials = reader.trials_for("shared_sess");
    assert_eq!(trials.len(), 8, "5 originals + 5 re-runs dedup to 8 distinct iterations");
    for (i, t) in trials.iter().enumerate() {
        assert_eq!(t.score.to_bits(), (i as f64).to_bits());
    }
}

//! Crash-recovery smoke test (run explicitly in CI): a campaign is
//! "killed" mid-flight — its store left with a torn, half-written final
//! record — then resumed. The resumed store must recover cleanly, finish
//! the campaign, and export a final history identical to an
//! uninterrupted run's; resuming again must be a no-op.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_runtime::{AdapterKind, Campaign, CampaignOptions, CampaignSpec, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::{SessionStatus, TrialStore};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_crash_recovery")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign() -> Campaign {
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![3],
    };
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: 2,
        run_options: Some(run_opts),
        ..Default::default()
    };
    Campaign::new(postgres_v9_6(), spec, opts)
}

#[test]
fn kill_mid_campaign_then_resume_yields_the_identical_final_history() {
    let campaign = campaign();

    // Uninterrupted ground truth.
    let truth_dir = tmp_dir("truth");
    let truth_store = TrialStore::open(&truth_dir).unwrap();
    campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();

    // The "crashed" store: the truth store's segment cut mid-record —
    // the bytes a SIGKILL during an append would leave on disk.
    let crash_dir = tmp_dir("crashed");
    std::fs::create_dir_all(&crash_dir).unwrap();
    let seg = std::fs::read_to_string(truth_dir.join("seg-000001.jsonl")).unwrap();
    let cut = (0..seg.len() * 3 / 5).rev().find(|&i| seg.is_char_boundary(i)).unwrap();
    assert!(seg.as_bytes()[cut.saturating_sub(1)] != b'\n', "cut tears a record in half");
    std::fs::write(crash_dir.join("MANIFEST"), "llamatune-store v1\n").unwrap();
    std::fs::write(crash_dir.join("seg-000001.jsonl"), &seg[..cut]).unwrap();

    // Recovery drops the torn record and the campaign resumes.
    let store = TrialStore::open(&crash_dir).unwrap();
    assert!(store.trial_count() < truth_store.trial_count(), "the kill lost work");
    let session = store.sessions()[0].clone();
    assert_eq!(store.session_meta(&session).unwrap().status, SessionStatus::Running);
    let results = campaign.resume(&store).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(store.export_jsonl(), truth_export, "resumed history is byte-identical");
    assert_eq!(store.session_meta(&session).unwrap().status, SessionStatus::Done);

    // A second resume (e.g. a supervisor restarting an already-finished
    // campaign) re-evaluates nothing and changes nothing on disk.
    let records = store.trial_records();
    campaign.resume(&store).unwrap();
    assert_eq!(store.trial_records(), records);
    assert_eq!(store.export_jsonl(), truth_export);

    std::fs::remove_dir_all(&truth_dir).unwrap();
    std::fs::remove_dir_all(&crash_dir).unwrap();
}

//! Kill-at-random-byte store fuzz (seeded, deterministic — part of the
//! CI fault-injection gate).
//!
//! Each case wires a [`TrialStore`] over a [`FailingBackend`] whose
//! byte budget is drawn from a seeded RNG, then appends trials (with
//! tiny segments, so rotation's manifest commits are in the blast
//! radius) and periodically compacts, until the injected kill fires.
//! The wreckage left on the *underlying* backend is exactly what a
//! `kill -9` at that byte would leave: full records up to the kill, a
//! torn prefix of the record in flight, manifest either old or new.
//!
//! The invariant under test: **no acknowledged append is ever lost.**
//! Reopening the underlying backend must succeed, recover every trial
//! whose `append_trial` returned `Ok` (bit-exact scores), at most one
//! extra trailing record (an append that tore after its closing brace
//! but before the ack — keeping it is correct, dropping it would only
//! be legal because the caller never saw `Ok`), and keep accepting
//! appends.

use llamatune_store::{
    FailingBackend, FaultPlan, LocalDirBackend, ObjectStoreBackend, StoreBackend, StoreOptions,
    StoredTrial, TrialStore,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_store_fuzz")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn trial(session: &str, iteration: usize, score: f64) -> StoredTrial {
    StoredTrial {
        session: session.to_string(),
        iteration,
        raw_score: Some(score),
        score,
        point: vec![score / 1000.0, 0.25],
        config: vec![llamatune_space::KnobValue::Int(iteration as i64)],
        metrics: vec![score, 1.0],
        status: llamatune::session::TrialStatus::Ok,
        attempts: 1,
    }
}

/// One fuzz case: returns the number of acknowledged appends, for the
/// meta-assertion that the suite actually exercised mid-stream kills.
fn run_case(seed: u64, inner: Arc<dyn StoreBackend>) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f022);
    let budget = rng.random_range(10..6000usize) as u64;
    let failing: Arc<dyn StoreBackend> =
        Arc::new(FailingBackend::new(inner.clone(), FaultPlan::KillAtByte(budget)));

    let mut acked: Vec<StoredTrial> = Vec::new();
    // The kill can land inside open() itself (manifest creation): that
    // case must still recover below, to an empty store.
    if let Ok(store) = TrialStore::open_backend(failing, StoreOptions { segment_records: 3 }) {
        for i in 0..200 {
            let t = trial("fuzz", i, (i as f64) * 1.5 + rng.random::<f64>());
            match store.append_trial(&t) {
                Ok(()) => acked.push(t),
                Err(_) => break,
            }
            // Compaction rewrites segments and commits a manifest —
            // putting its whole commit protocol inside the kill window.
            if i % 17 == 16 && store.compact().is_err() {
                break;
            }
        }
    }

    // Recovery on the clean underlying backend sees the raw wreckage.
    let recovered = TrialStore::open_backend(inner, StoreOptions::default())
        .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    let trials = recovered.trials_for("fuzz");
    assert!(
        trials.len() >= acked.len() && trials.len() <= acked.len() + 1,
        "seed {seed}: {} acked but {} recovered",
        acked.len(),
        trials.len()
    );
    for (i, t) in acked.iter().enumerate() {
        assert_eq!(trials[i].iteration, t.iteration, "seed {seed}");
        assert_eq!(
            trials[i].score.to_bits(),
            t.score.to_bits(),
            "seed {seed}: recovered trial {i} differs"
        );
    }
    // The recovered store is fully live: appends and export both work.
    let next = trials.len();
    recovered.append_trial(&trial("fuzz", next, 9.0)).unwrap();
    assert_eq!(recovered.trials_for("fuzz").len(), next + 1);
    assert!(llamatune::history_io::events_from_jsonl(&recovered.export_jsonl()).is_ok());
    acked.len()
}

#[test]
fn kill_at_random_byte_never_loses_an_acknowledged_trial_on_local_dirs() {
    let mut mid_stream_kills = 0;
    for seed in 0..12u64 {
        let dir = tmp_dir(&format!("local_{seed}"));
        let inner: Arc<dyn StoreBackend> = Arc::new(LocalDirBackend::create(&dir).unwrap());
        let acked = run_case(seed, inner);
        if acked > 0 && acked < 200 {
            mid_stream_kills += 1;
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(mid_stream_kills >= 6, "budgets must mostly kill mid-stream: {mid_stream_kills}");
}

#[test]
fn kill_at_random_byte_never_loses_an_acknowledged_trial_on_object_stores() {
    let mut mid_stream_kills = 0;
    for seed in 100..112u64 {
        let inner: Arc<dyn StoreBackend> = Arc::new(ObjectStoreBackend::default());
        let acked = run_case(seed, inner);
        if acked > 0 && acked < 200 {
            mid_stream_kills += 1;
        }
    }
    assert!(mid_stream_kills >= 6, "budgets must mostly kill mid-stream: {mid_stream_kills}");
}

#[test]
fn kill_during_a_fleet_writers_stream_spares_the_other_writers_records() {
    // The shared-mode variant: worker "wa" is killed at a seeded byte
    // while "wb" keeps appending; every record either worker was acked
    // for must be in the merged view afterwards.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1ee7);
        let inner: Arc<dyn StoreBackend> = Arc::new(ObjectStoreBackend::default());
        let budget = rng.random_range(400..4000usize) as u64;
        let failing: Arc<dyn StoreBackend> =
            Arc::new(FailingBackend::new(inner.clone(), FaultPlan::KillAtByte(budget)));

        let wa = TrialStore::open_shared(failing, "wa", StoreOptions { segment_records: 3 })
            .map(Arc::new);
        let wb = Arc::new(
            TrialStore::open_shared(inner.clone(), "wb", StoreOptions { segment_records: 3 })
                .unwrap(),
        );
        let mut acked_a = 0usize;
        if let Ok(wa) = wa {
            for i in 0..80 {
                if wa.append_trial(&trial("sa", i, i as f64)).is_err() {
                    break;
                }
                acked_a = i + 1;
            }
        }
        for i in 0..80 {
            wb.append_trial(&trial("sb", i, i as f64)).unwrap();
        }
        drop(wb);

        let reader = TrialStore::open_reader(inner, StoreOptions::default()).unwrap();
        assert!(reader.trials_for("sa").len() >= acked_a, "seed {seed}: wa lost acked trials");
        assert_eq!(reader.trials_for("sb").len(), 80, "seed {seed}: wb unaffected by wa's kill");
    }
}

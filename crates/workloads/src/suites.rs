//! Workload definitions: YCSB-A/B/F, TPC-C, SEATS, Twitter,
//! ResourceStresser.

use llamatune_engine::{KeyDist, OpTemplate, TableSpec, TxnTemplate, WorkloadSpec};

/// Names of all registered workloads: the paper's six, in the paper's
/// order, plus the YCSB-F read-modify-write extension.
pub const WORKLOAD_NAMES: [&str; 7] =
    ["ycsb_a", "ycsb_b", "tpcc", "seats", "twitter", "resource_stresser", "ycsb_f"];

/// The six workloads of the paper's evaluation (Table 4), in the
/// paper's order — what the table/figure reproduction benches iterate.
/// Registry extensions such as YCSB-F are deliberately excluded.
pub const PAPER_WORKLOAD_NAMES: [&str; 6] =
    ["ycsb_a", "ycsb_b", "tpcc", "seats", "twitter", "resource_stresser"];

/// YCSB zipfian skew (the suite's default).
const YCSB_THETA: f64 = 0.99;

fn ycsb_tables() -> Vec<TableSpec> {
    // 20M rows x ~1 kB = ~20 GB, one 11-column usertable.
    vec![TableSpec { name: "usertable", rows: 20_000_000, row_bytes: 1_000, columns: 11 }]
}

/// YCSB-A: 50% reads / 50% updates, zipfian keys.
pub fn ycsb_a() -> WorkloadSpec {
    WorkloadSpec {
        name: "ycsb_a",
        tables: ycsb_tables(),
        txns: vec![
            TxnTemplate {
                name: "read",
                weight: 0.5,
                ops: vec![OpTemplate::PointRead { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) }],
                read_only: true,
            },
            TxnTemplate {
                name: "update",
                weight: 0.5,
                ops: vec![OpTemplate::PointUpdate { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) }],
                read_only: false,
            },
        ],
        base_cpu_us: 110.0,
    }
}

/// YCSB-B: 95% reads / 5% updates, zipfian keys.
pub fn ycsb_b() -> WorkloadSpec {
    WorkloadSpec {
        name: "ycsb_b",
        txns: vec![
            TxnTemplate {
                name: "read",
                weight: 0.95,
                ops: vec![OpTemplate::PointRead { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) }],
                read_only: true,
            },
            TxnTemplate {
                name: "update",
                weight: 0.05,
                ops: vec![OpTemplate::PointUpdate { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) }],
                read_only: false,
            },
        ],
        tables: ycsb_tables(),
        base_cpu_us: 95.0,
    }
}

/// YCSB-F: 50% reads / 50% read-modify-writes, zipfian keys. A
/// read-modify-write reads a row and writes the same row back in one
/// transaction, so update traffic is preceded by a (usually hot-cached)
/// read of the same page.
pub fn ycsb_f() -> WorkloadSpec {
    WorkloadSpec {
        name: "ycsb_f",
        tables: ycsb_tables(),
        txns: vec![
            TxnTemplate {
                name: "read",
                weight: 0.5,
                ops: vec![OpTemplate::PointRead { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) }],
                read_only: true,
            },
            TxnTemplate {
                name: "read_modify_write",
                weight: 0.5,
                ops: vec![
                    OpTemplate::PointRead { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) },
                    OpTemplate::PointUpdate { table: 0, dist: KeyDist::Zipfian(YCSB_THETA) },
                ],
                read_only: false,
            },
        ],
        base_cpu_us: 115.0,
    }
}

/// TPC-C at scale factor ~200 warehouses (≈20 GB): order processing with
/// five transaction types, 8% read-only.
pub fn tpcc() -> WorkloadSpec {
    // Table indices.
    const WAREHOUSE: usize = 0;
    const DISTRICT: usize = 1;
    const CUSTOMER: usize = 2;
    const HISTORY: usize = 3;
    const ORDERS: usize = 4;
    const NEW_ORDER: usize = 5;
    const ORDER_LINE: usize = 6;
    const STOCK: usize = 7;
    const ITEM: usize = 8;

    let tables = vec![
        TableSpec { name: "warehouse", rows: 200, row_bytes: 89, columns: 9 },
        TableSpec { name: "district", rows: 2_000, row_bytes: 95, columns: 11 },
        TableSpec { name: "customer", rows: 6_000_000, row_bytes: 655, columns: 21 },
        TableSpec { name: "history", rows: 6_000_000, row_bytes: 46, columns: 8 },
        TableSpec { name: "orders", rows: 6_000_000, row_bytes: 24, columns: 8 },
        TableSpec { name: "new_order", rows: 1_800_000, row_bytes: 8, columns: 3 },
        TableSpec { name: "order_line", rows: 90_000_000, row_bytes: 54, columns: 10 },
        TableSpec { name: "stock", rows: 20_000_000, row_bytes: 306, columns: 17 },
        TableSpec { name: "item", rows: 100_000, row_bytes: 82, columns: 5 },
    ];

    let mut new_order_ops = vec![
        OpTemplate::PointRead { table: WAREHOUSE, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: DISTRICT, dist: KeyDist::Uniform },
        OpTemplate::PointRead { table: CUSTOMER, dist: KeyDist::Uniform },
    ];
    for _ in 0..10 {
        new_order_ops.push(OpTemplate::PointRead { table: ITEM, dist: KeyDist::Uniform });
        new_order_ops.push(OpTemplate::PointUpdate { table: STOCK, dist: KeyDist::Uniform });
    }
    new_order_ops.push(OpTemplate::Insert { table: ORDERS, rows: 1 });
    new_order_ops.push(OpTemplate::Insert { table: NEW_ORDER, rows: 1 });
    new_order_ops.push(OpTemplate::Insert { table: ORDER_LINE, rows: 10 });

    let payment_ops = vec![
        OpTemplate::PointUpdate { table: WAREHOUSE, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: DISTRICT, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: CUSTOMER, dist: KeyDist::Uniform },
        OpTemplate::Insert { table: HISTORY, rows: 1 },
    ];

    let order_status_ops = vec![
        OpTemplate::PointRead { table: CUSTOMER, dist: KeyDist::Uniform },
        OpTemplate::RangeScan { table: ORDERS, dist: KeyDist::Uniform, rows: 1 },
        OpTemplate::RangeScan { table: ORDER_LINE, dist: KeyDist::Uniform, rows: 10 },
    ];

    let mut delivery_ops = Vec::new();
    for _ in 0..10 {
        delivery_ops.push(OpTemplate::PointUpdate { table: NEW_ORDER, dist: KeyDist::Uniform });
        delivery_ops.push(OpTemplate::PointUpdate { table: ORDERS, dist: KeyDist::Uniform });
        delivery_ops.push(OpTemplate::PointUpdate { table: CUSTOMER, dist: KeyDist::Uniform });
    }
    delivery_ops.push(OpTemplate::RangeScan {
        table: ORDER_LINE,
        dist: KeyDist::Uniform,
        rows: 100,
    });

    let stock_level_ops = vec![
        OpTemplate::PointRead { table: DISTRICT, dist: KeyDist::Uniform },
        OpTemplate::Join { tables: 3, driving_rows: 200, dist: KeyDist::Uniform, table: STOCK },
    ];

    WorkloadSpec {
        name: "tpcc",
        tables,
        txns: vec![
            TxnTemplate { name: "new_order", weight: 0.45, ops: new_order_ops, read_only: false },
            TxnTemplate { name: "payment", weight: 0.43, ops: payment_ops, read_only: false },
            TxnTemplate {
                name: "order_status",
                weight: 0.04,
                ops: order_status_ops,
                read_only: true,
            },
            TxnTemplate { name: "delivery", weight: 0.04, ops: delivery_ops, read_only: false },
            TxnTemplate {
                name: "stock_level",
                weight: 0.04,
                ops: stock_level_ops,
                read_only: true,
            },
        ],
        base_cpu_us: 180.0,
    }
}

/// SEATS: airline ticketing back-end; ten tables, six transaction types,
/// 45% read-only.
pub fn seats() -> WorkloadSpec {
    const COUNTRY: usize = 0;
    const AIRPORT: usize = 1;
    const AIRLINE: usize = 2;
    const CUSTOMER: usize = 3;
    const FREQUENT_FLYER: usize = 4;
    const FLIGHT: usize = 5;
    const RESERVATION: usize = 6;
    const AIRPORT_DISTANCE: usize = 9;

    let tables = vec![
        TableSpec { name: "country", rows: 250, row_bytes: 60, columns: 4 },
        TableSpec { name: "airport", rows: 10_000, row_bytes: 120, columns: 10 },
        TableSpec { name: "airline", rows: 1_250, row_bytes: 100, columns: 6 },
        TableSpec { name: "customer", rows: 8_000_000, row_bytes: 400, columns: 44 },
        TableSpec { name: "frequent_flyer", rows: 12_000_000, row_bytes: 120, columns: 27 },
        TableSpec { name: "flight", rows: 3_000_000, row_bytes: 180, columns: 31 },
        TableSpec { name: "reservation", rows: 60_000_000, row_bytes: 150, columns: 34 },
        TableSpec { name: "config_profile", rows: 1, row_bytes: 500, columns: 12 },
        TableSpec { name: "config_histograms", rows: 100, row_bytes: 200, columns: 4 },
        TableSpec { name: "airport_distance", rows: 500_000, row_bytes: 30, columns: 17 },
    ];

    let find_flights = vec![
        OpTemplate::PointRead { table: AIRPORT, dist: KeyDist::Uniform },
        OpTemplate::PointRead { table: AIRLINE, dist: KeyDist::Uniform },
        OpTemplate::RangeScan { table: AIRPORT_DISTANCE, dist: KeyDist::Uniform, rows: 20 },
        OpTemplate::Join { tables: 3, driving_rows: 60, dist: KeyDist::Uniform, table: FLIGHT },
    ];
    let find_open_seats = vec![
        OpTemplate::PointRead { table: FLIGHT, dist: KeyDist::Zipfian(0.9) },
        OpTemplate::RangeScan { table: RESERVATION, dist: KeyDist::Zipfian(0.9), rows: 150 },
    ];
    let new_reservation = vec![
        OpTemplate::PointRead { table: FLIGHT, dist: KeyDist::Zipfian(0.9) },
        OpTemplate::PointRead { table: CUSTOMER, dist: KeyDist::Uniform },
        OpTemplate::Insert { table: RESERVATION, rows: 1 },
        OpTemplate::PointUpdate { table: FLIGHT, dist: KeyDist::Zipfian(0.9) },
    ];
    let update_customer = vec![
        OpTemplate::PointRead { table: CUSTOMER, dist: KeyDist::Uniform },
        OpTemplate::RangeScan { table: FREQUENT_FLYER, dist: KeyDist::Uniform, rows: 5 },
        OpTemplate::PointUpdate { table: CUSTOMER, dist: KeyDist::Uniform },
    ];
    let update_reservation = vec![
        OpTemplate::PointUpdate { table: RESERVATION, dist: KeyDist::Zipfian(0.9) },
        OpTemplate::PointRead { table: COUNTRY, dist: KeyDist::Uniform },
    ];
    let delete_reservation = vec![
        OpTemplate::PointRead { table: CUSTOMER, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: RESERVATION, dist: KeyDist::Zipfian(0.9) },
        OpTemplate::PointUpdate { table: FREQUENT_FLYER, dist: KeyDist::Uniform },
    ];

    WorkloadSpec {
        name: "seats",
        tables,
        txns: vec![
            TxnTemplate {
                name: "delete_reservation",
                weight: 0.10,
                ops: delete_reservation,
                read_only: false,
            },
            TxnTemplate { name: "find_flights", weight: 0.10, ops: find_flights, read_only: true },
            TxnTemplate {
                name: "find_open_seats",
                weight: 0.35,
                ops: find_open_seats,
                read_only: true,
            },
            TxnTemplate {
                name: "new_reservation",
                weight: 0.20,
                ops: new_reservation,
                read_only: false,
            },
            TxnTemplate {
                name: "update_customer",
                weight: 0.10,
                ops: update_customer,
                read_only: false,
            },
            TxnTemplate {
                name: "update_reservation",
                weight: 0.15,
                ops: update_reservation,
                read_only: false,
            },
        ],
        base_cpu_us: 140.0,
    }
}

/// Twitter: micro-blogging core, five tables with heavily-skewed access,
/// 1% read-only (Table 4).
pub fn twitter() -> WorkloadSpec {
    const USER_PROFILES: usize = 0;
    const TWEETS: usize = 1;
    const FOLLOWS: usize = 2;
    const FOLLOWERS: usize = 3;
    const ADDED_TWEETS: usize = 4;

    let tables = vec![
        TableSpec { name: "user_profiles", rows: 500_000, row_bytes: 200, columns: 6 },
        TableSpec { name: "tweets", rows: 55_000_000, row_bytes: 280, columns: 4 },
        TableSpec { name: "follows", rows: 10_000_000, row_bytes: 16, columns: 2 },
        TableSpec { name: "followers", rows: 10_000_000, row_bytes: 16, columns: 2 },
        TableSpec { name: "added_tweets", rows: 2_000_000, row_bytes: 280, columns: 4 },
    ];

    let insert_tweet = vec![
        OpTemplate::PointRead { table: USER_PROFILES, dist: KeyDist::Zipfian(0.95) },
        OpTemplate::Insert { table: ADDED_TWEETS, rows: 1 },
    ];
    let get_tweet = vec![OpTemplate::PointRead { table: TWEETS, dist: KeyDist::Zipfian(0.95) }];
    let get_followers = vec![
        OpTemplate::RangeScan { table: FOLLOWERS, dist: KeyDist::Zipfian(0.95), rows: 20 },
        OpTemplate::PointRead { table: USER_PROFILES, dist: KeyDist::Zipfian(0.95) },
    ];
    let follow = vec![
        OpTemplate::PointUpdate { table: FOLLOWS, dist: KeyDist::Zipfian(0.95) },
        OpTemplate::PointUpdate { table: FOLLOWERS, dist: KeyDist::Zipfian(0.95) },
    ];
    let retweet = vec![
        OpTemplate::PointRead { table: TWEETS, dist: KeyDist::Zipfian(0.95) },
        OpTemplate::Insert { table: ADDED_TWEETS, rows: 1 },
    ];

    WorkloadSpec {
        name: "twitter",
        tables,
        txns: vec![
            TxnTemplate { name: "insert_tweet", weight: 0.65, ops: insert_tweet, read_only: false },
            TxnTemplate { name: "get_tweet", weight: 0.01, ops: get_tweet, read_only: true },
            TxnTemplate {
                name: "get_followers",
                weight: 0.04,
                ops: get_followers,
                read_only: false, // also records an access-count update upstream
            },
            TxnTemplate { name: "follow", weight: 0.10, ops: follow, read_only: false },
            TxnTemplate { name: "retweet", weight: 0.20, ops: retweet, read_only: false },
        ],
        base_cpu_us: 55.0,
    }
}

/// ResourceStresser: synthetic contention on CPU, disk I/O, and locks;
/// 33% read-only.
pub fn resource_stresser() -> WorkloadSpec {
    const CPU_TABLE: usize = 0;
    const IO_TABLE_A: usize = 1;
    const IO_TABLE_B: usize = 2;
    const LOCK_TABLE: usize = 3;

    let tables = vec![
        TableSpec { name: "cputable", rows: 100_000, row_bytes: 100, columns: 4 },
        TableSpec { name: "iotable", rows: 10_000_000, row_bytes: 1_000, columns: 15 },
        TableSpec { name: "iotablesmallrow", rows: 40_000_000, row_bytes: 120, columns: 2 },
        TableSpec { name: "locktable", rows: 1_000, row_bytes: 100, columns: 2 },
    ];

    let cpu1 = vec![
        OpTemplate::Compute { us: 1_800 },
        OpTemplate::PointRead { table: CPU_TABLE, dist: KeyDist::Uniform },
    ];
    let cpu2 = vec![
        OpTemplate::Compute { us: 900 },
        OpTemplate::PointRead { table: CPU_TABLE, dist: KeyDist::Uniform },
    ];
    let io1 = vec![
        OpTemplate::PointUpdate { table: IO_TABLE_A, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: IO_TABLE_A, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: IO_TABLE_A, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: IO_TABLE_A, dist: KeyDist::Uniform },
    ];
    let io2 = vec![
        OpTemplate::PointUpdate { table: IO_TABLE_B, dist: KeyDist::Uniform },
        OpTemplate::PointUpdate { table: IO_TABLE_B, dist: KeyDist::Uniform },
    ];
    let contended_lock = vec![
        OpTemplate::PointUpdate { table: LOCK_TABLE, dist: KeyDist::HotRange(0.05) },
        OpTemplate::Compute { us: 150 },
    ];

    WorkloadSpec {
        name: "resource_stresser",
        tables,
        txns: vec![
            TxnTemplate { name: "cpu1", weight: 0.17, ops: cpu1, read_only: true },
            TxnTemplate { name: "cpu2", weight: 0.16, ops: cpu2, read_only: true },
            TxnTemplate { name: "io1", weight: 0.25, ops: io1, read_only: false },
            TxnTemplate { name: "io2", weight: 0.25, ops: io2, read_only: false },
            TxnTemplate {
                name: "contended_lock",
                weight: 0.17,
                ops: contended_lock,
                read_only: false,
            },
        ],
        base_cpu_us: 70.0,
    }
}

/// Looks a workload up by its [`WORKLOAD_NAMES`] entry.
pub fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    match name {
        "ycsb_a" => Some(ycsb_a()),
        "ycsb_b" => Some(ycsb_b()),
        "ycsb_f" => Some(ycsb_f()),
        "tpcc" => Some(tpcc()),
        "seats" => Some(seats()),
        "twitter" => Some(twitter()),
        "resource_stresser" => Some(resource_stresser()),
        _ => None,
    }
}

/// All registered workloads, in [`WORKLOAD_NAMES`] order.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    WORKLOAD_NAMES.iter().map(|n| workload_by_name(n).unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for spec in all_workloads() {
            assert!(spec.validate().is_ok(), "{} invalid", spec.name);
        }
    }

    #[test]
    fn table4_table_counts_and_columns() {
        // Table 4: # tables (# columns).
        let expect = [
            ("ycsb_a", 1usize, 11u32),
            ("ycsb_b", 1, 11),
            ("ycsb_f", 1, 11),
            ("tpcc", 9, 92),
            ("seats", 10, 189),
            ("twitter", 5, 18),
            ("resource_stresser", 4, 23),
        ];
        for (name, tables, columns) in expect {
            let spec = workload_by_name(name).unwrap();
            assert_eq!(spec.tables.len(), tables, "{name} table count");
            let total: u32 = spec.tables.iter().map(|t| t.columns).sum();
            assert_eq!(total, columns, "{name} column count");
        }
    }

    #[test]
    fn table4_read_only_fractions() {
        let expect = [
            ("ycsb_a", 0.50),
            ("ycsb_b", 0.95),
            ("ycsb_f", 0.50),
            ("tpcc", 0.08),
            ("seats", 0.45),
            ("twitter", 0.01),
            ("resource_stresser", 0.33),
        ];
        for (name, ro) in expect {
            let spec = workload_by_name(name).unwrap();
            assert!(
                (spec.read_only_fraction() - ro).abs() < 1e-9,
                "{name}: expected {ro}, got {}",
                spec.read_only_fraction()
            );
        }
    }

    #[test]
    fn databases_are_roughly_20gb() {
        for spec in all_workloads() {
            let gb = spec.total_bytes() as f64 / (1u64 << 30) as f64;
            assert!((10.0..32.0).contains(&gb), "{}: {:.1} GB is not ~20 GB", spec.name, gb);
        }
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn names_round_trip() {
        for name in WORKLOAD_NAMES {
            assert_eq!(workload_by_name(name).unwrap().name, name);
        }
    }

    #[test]
    fn ycsb_f_is_registered_and_read_modify_write() {
        assert!(WORKLOAD_NAMES.contains(&"ycsb_f"));
        let spec = workload_by_name("ycsb_f").unwrap();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.tables.len(), 1, "single usertable like the other YCSB mixes");
        // The RMW transaction reads then updates the same table.
        let rmw = spec.txns.iter().find(|t| t.name == "read_modify_write").unwrap();
        assert!(!rmw.read_only);
        assert!(matches!(rmw.ops[0], OpTemplate::PointRead { table: 0, .. }));
        assert!(matches!(rmw.ops[1], OpTemplate::PointUpdate { table: 0, .. }));
        // 50/50 mix: half the transactions are read-only.
        assert!((spec.read_only_fraction() - 0.5).abs() < 1e-9);
        assert!(all_workloads().iter().any(|w| w.name == "ycsb_f"));
    }

    #[test]
    fn paper_workloads_are_a_registry_subset_without_extensions() {
        for name in PAPER_WORKLOAD_NAMES {
            assert!(WORKLOAD_NAMES.contains(&name), "{name} must stay registered");
        }
        assert!(
            !PAPER_WORKLOAD_NAMES.contains(&"ycsb_f"),
            "extensions must not leak into the paper's table/figure benches"
        );
    }
}

//! Workload fingerprints: the similarity signal behind warm-start
//! transfer.
//!
//! A fingerprint is the engine's 27 internal metrics sampled from one
//! *probe run* of the server default configuration, compressed by
//! [`llamatune_engine::fingerprint_features`] into a scale-free unit
//! vector. Probing the *default* configuration (rather than a tuned
//! one) keeps fingerprints comparable across campaigns: every session
//! measures the same operating point, so two fingerprints differ only
//! by how the workloads themselves stress the DBMS — read/write mix,
//! working-set locality, lock contention, WAL pressure — which is
//! exactly the structure past tuning knowledge transfers along.

use crate::runner::WorkloadRunner;
use llamatune_engine::fingerprint_features;

/// The fixed seed of fingerprint probe runs. Fingerprints must be
/// comparable across sessions and campaigns, so the probe never uses a
/// session-specific seed.
pub const FINGERPRINT_PROBE_SEED: u64 = 0xF1F0;

/// Runs one probe evaluation of the default configuration and returns
/// the workload's fingerprint (a 27-dimensional unit vector).
pub fn workload_fingerprint(runner: &WorkloadRunner, probe_seed: u64) -> Vec<f64> {
    let space = runner.catalog();
    let result = runner.run(space, &space.default_config(), probe_seed);
    fingerprint_features(&result.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{tpcc, ycsb_a, ycsb_b, ycsb_f};
    use llamatune_engine::RunOptions;
    use llamatune_space::catalog::postgres_v9_6;

    fn quick(spec: llamatune_engine::WorkloadSpec) -> WorkloadRunner {
        let opts = RunOptions { duration_s: 0.4, warmup_s: 0.1, ..RunOptions::default() };
        WorkloadRunner::new(spec, postgres_v9_6()).with_options(opts)
    }

    fn cosine(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn fingerprints_are_deterministic_unit_vectors() {
        let r = quick(ycsb_a());
        let a = workload_fingerprint(&r, FINGERPRINT_PROBE_SEED);
        let b = workload_fingerprint(&r, FINGERPRINT_PROBE_SEED);
        assert_eq!(a, b, "same probe seed, same fingerprint");
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "unit length: {norm}");
    }

    #[test]
    fn similar_workloads_fingerprint_closer_than_dissimilar_ones() {
        // Read-heavy YCSB-B (95% reads, single table) must fingerprint
        // closer to its YCSB sibling F than to write-dominated TPC-C
        // (92% writes, 9 tables): the fingerprint tracks how a workload
        // stresses the DBMS, and the read/write balance is the dominant
        // axis of that stress.
        let b = workload_fingerprint(&quick(ycsb_b()), FINGERPRINT_PROBE_SEED);
        let f = workload_fingerprint(&quick(ycsb_f()), FINGERPRINT_PROBE_SEED);
        let t = workload_fingerprint(&quick(tpcc()), FINGERPRINT_PROBE_SEED);
        let bf = cosine(&b, &f);
        let bt = cosine(&b, &t);
        assert!(bf > bt, "cos(ycsb_b, ycsb_f) = {bf} must exceed cos(ycsb_b, tpcc) = {bt}");
        // And the self-similarity of any workload is maximal.
        let a = workload_fingerprint(&quick(ycsb_a()), FINGERPRINT_PROBE_SEED);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-9);
    }
}

//! Benchmark runner: evaluates a DBMS configuration on a workload and
//! reduces the run to the single objective value a tuning session optimizes.

use llamatune_engine::{run_workload, Arrival, RunOptions, RunResult, WorkloadSpec};
use llamatune_space::{Config, ConfigSpace};
use std::sync::Arc;

/// What a tuning session optimizes (Section 6.1/6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximize committed transactions per second (closed loop).
    Throughput,
    /// Minimize 95th-percentile latency at a fixed request rate (open loop).
    TailLatency95 { rate_tps: f64 },
}

/// Evaluates configurations of a fixed workload: the paper's "experiment
/// controller" plus benchmark client.
///
/// The workload spec and knob catalog are held behind [`Arc`]s, so
/// cloning a runner — one clone per worker in the parallel runtime — is
/// a couple of reference-count bumps, not a deep copy of a multi-table
/// schema and a 90-knob catalog.
#[derive(Debug, Clone)]
pub struct WorkloadRunner {
    spec: Arc<WorkloadSpec>,
    catalog: Arc<ConfigSpace>,
    objective: Objective,
    opts: RunOptions,
}

impl WorkloadRunner {
    /// Creates a throughput-oriented runner with per-workload simulation
    /// windows (heavier workloads need longer virtual windows, lighter ones
    /// produce enough transactions in less virtual time).
    pub fn new(spec: WorkloadSpec, catalog: ConfigSpace) -> Self {
        let opts = suggested_options(spec.name);
        WorkloadRunner {
            spec: Arc::new(spec),
            catalog: Arc::new(catalog),
            objective: Objective::Throughput,
            opts,
        }
    }

    /// Switches the objective (tail-latency mode also switches the arrival
    /// process to open-loop at the fixed rate).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        if let Objective::TailLatency95 { rate_tps } = objective {
            self.opts.arrival = Arrival::Open { rate_tps };
        }
        self
    }

    /// Overrides the run options (tests use shorter windows).
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The workload being tuned.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The knob catalog configurations resolve against.
    pub fn catalog(&self) -> &ConfigSpace {
        &self.catalog
    }

    /// The configured objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Virtual milliseconds one evaluation simulates (the run window).
    /// The engine is a simulator, so this — not wall time — is what the
    /// execution policy's watchdog compares against its timeout.
    pub fn virtual_duration_ms(&self) -> f64 {
        self.opts.duration_s * 1000.0
    }

    /// Runs one evaluation. `space` may be a subset of the catalog; any
    /// knob it does not mention stays at its default.
    pub fn run(&self, space: &ConfigSpace, config: &Config, seed: u64) -> RunResult {
        let assignment = space.assignment(config);
        let mut opts = self.opts.clone();
        opts.seed = seed;
        run_workload(&assignment, &self.catalog, &self.spec, &opts)
    }

    /// Runs one evaluation and reduces it to the objective value, which is
    /// always maximized (latencies are negated). Crashed runs return `None`
    /// — the tuning session applies the paper's ¼-of-worst penalty.
    pub fn evaluate(&self, space: &ConfigSpace, config: &Config, seed: u64) -> EvalOutcome {
        let result = self.run(space, config, seed);
        if result.crashed {
            return EvalOutcome { score: None, result };
        }
        let score = match self.objective {
            Objective::Throughput => result.throughput_tps,
            Objective::TailLatency95 { .. } => -result.p95_latency_ms,
        };
        EvalOutcome { score: Some(score), result }
    }
}

/// One evaluation: the maximizable score (None when crashed) and the raw
/// run result (metrics feed the DDPG optimizer).
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    pub score: Option<f64>,
    pub result: RunResult,
}

/// Per-workload simulation windows, chosen so each evaluation simulates a
/// statistically useful number of transactions (~20-60k) regardless of the
/// workload's absolute throughput.
pub fn suggested_options(workload: &str) -> RunOptions {
    let (duration_s, warmup_s) = match workload {
        "ycsb_a" => (1.6, 0.35),
        "ycsb_b" => (0.8, 0.2),
        "ycsb_f" => (1.4, 0.3),
        "tpcc" => (2.6, 0.5),
        "seats" => (1.6, 0.35),
        "twitter" => (0.5, 0.12),
        "resource_stresser" => (1.6, 0.35),
        _ => (1.6, 0.35),
    };
    RunOptions { duration_s, warmup_s, ..RunOptions::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{ycsb_a, ycsb_b};
    use llamatune_space::catalog::postgres_v9_6;
    use llamatune_space::KnobValue;

    fn quick(spec: WorkloadSpec) -> WorkloadRunner {
        let catalog = postgres_v9_6();
        let mut opts = suggested_options(spec.name);
        opts.duration_s = 0.3;
        opts.warmup_s = 0.08;
        opts.max_txns = 30_000;
        WorkloadRunner::new(spec, catalog).with_options(opts)
    }

    #[test]
    fn default_ycsb_a_scores_positive_throughput() {
        let r = quick(ycsb_a());
        let cfg = r.catalog().default_config();
        let space = r.catalog().clone();
        let out = r.evaluate(&space, &cfg, 1);
        assert!(out.score.unwrap() > 100.0);
        assert!(!out.result.crashed);
    }

    #[test]
    fn crashed_config_scores_none() {
        let r = quick(ycsb_a());
        let space = r.catalog().clone();
        let mut cfg = space.default_config();
        let sb = space.index_of("shared_buffers").unwrap();
        cfg.values_mut()[sb] = KnobValue::Int(2_097_152); // 16 GB -> OOM
        let out = r.evaluate(&space, &cfg, 1);
        assert!(out.score.is_none());
        assert!(out.result.crashed);
    }

    #[test]
    fn tail_latency_objective_negates_latency() {
        let spec = ycsb_b();
        let catalog = postgres_v9_6();
        let mut opts = suggested_options(spec.name);
        opts.duration_s = 0.3;
        opts.warmup_s = 0.08;
        let r = WorkloadRunner::new(spec, catalog)
            .with_options(opts)
            .with_objective(Objective::TailLatency95 { rate_tps: 2_000.0 });
        let space = r.catalog().clone();
        let cfg = space.default_config();
        let out = r.evaluate(&space, &cfg, 3);
        let score = out.score.unwrap();
        assert!(score < 0.0, "latency objective must be negated: {score}");
        assert!((-score - out.result.p95_latency_ms).abs() < 1e-12);
    }

    #[test]
    fn subset_space_evaluations_work() {
        let r = quick(ycsb_a());
        let sub = r.catalog().subspace(&["shared_buffers", "commit_delay"]);
        let cfg = sub.default_config();
        let out = r.evaluate(&sub, &cfg, 5);
        assert!(out.score.is_some());
    }

    #[test]
    fn clones_share_spec_and_catalog_allocations() {
        let r = quick(ycsb_a());
        let clones: Vec<WorkloadRunner> = (0..8).map(|_| r.clone()).collect();
        for c in &clones {
            // Arc-backed: a clone points at the same spec and catalog.
            assert!(std::ptr::eq(r.spec(), c.spec()));
            assert!(std::ptr::eq(r.catalog(), c.catalog()));
        }
        // Clones evaluate identically to the original.
        let space = r.catalog().clone();
        let cfg = space.default_config();
        let a = r.evaluate(&space, &cfg, 4).score;
        let b = clones[7].evaluate(&space, &cfg, 4).score;
        assert_eq!(a, b);
    }

    #[test]
    fn evaluations_are_deterministic_per_seed() {
        let r = quick(ycsb_a());
        let space = r.catalog().clone();
        let cfg = space.default_config();
        let a = r.evaluate(&space, &cfg, 9).score.unwrap();
        let b = r.evaluate(&space, &cfg, 9).score.unwrap();
        let c = r.evaluate(&space, &cfg, 10).score.unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Deterministic fault injection at the trial-execution seam — the
//! runner-side mirror of `llamatune_store::faults`.
//!
//! [`FaultyRunner`] wraps any [`TrialRunner`] and misbehaves on a
//! *seeded schedule*: whether a given configuration panics, fails
//! transiently, hangs, slows down, or returns a corrupted score is a
//! pure function of `(schedule seed, configuration)` — independent of
//! evaluation order, worker count, and (except for transient faults,
//! which clear on retry) attempt number. That makes every robustness
//! behavior of the execution policy testable and *replayable*: re-run
//! the same campaign with the same fault seed and the same trials fault
//! the same way, which is what lets kill-mid-fault resume be
//! byte-identical.
//!
//! The injected failure modes map onto real trial-execution hazards:
//!
//! * [`FaultKind::Panic`] — the evaluation itself panics (a bug in the
//!   benchmark client, a poisoned runner). Contained per-trial by the
//!   execution policy's `catch_unwind` isolation.
//! * [`FaultKind::Transient`] — the attempt fails but a retry can
//!   succeed (connection refused, spurious OOM): the fault clears once
//!   the attempt number exceeds [`FaultPlan::transient_attempts`].
//! * [`FaultKind::Hang`] — the run never finishes: modeled (the engine
//!   is a simulator) as an absurdly large virtual duration, so a
//!   watchdog with any finite timeout fires and a policy without one
//!   still terminates.
//! * [`FaultKind::Slow`] — a straggler: the run completes with its
//!   virtual duration inflated, exercising hedging and near-timeout
//!   paths without failing.
//! * [`FaultKind::Corrupt`] — a wrong result: the score is
//!   deterministically perturbed but reported as a success, the failure
//!   mode no retry policy can catch (recorded histories stay
//!   deterministic — the corruption is part of the schedule).

use crate::runner::WorkloadRunner;
use llamatune_space::{Config, ConfigSpace, KnobValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of one evaluation *attempt* — what the execution policy's
/// retry loop consumes. A plain `EvalResult` (core crate) is produced
/// only after the policy settles on a final disposition.
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    /// Objective score; `None` when the attempt failed.
    pub score: Option<f64>,
    /// Internal DBMS metrics of the run (empty on failure).
    pub metrics: Vec<f64>,
    /// Virtual milliseconds the attempt took. The engine simulates, so
    /// the watchdog compares this — never wall time — to its timeout.
    pub virtual_ms: f64,
    /// Whether the failure is worth retrying: `true` for transient
    /// errors, `false` for deterministic crashes (a config that OOMs
    /// the DBMS will OOM it again).
    pub retryable: bool,
}

/// The seam between the execution policy and whatever actually runs a
/// benchmark. `attempt` is 1-based; deterministic runners ignore it,
/// fault injectors use it to clear transient faults on retry.
pub trait TrialRunner: Send + Sync {
    /// Runs one evaluation attempt of `config` under `seed`.
    fn evaluate_attempt(
        &self,
        space: &ConfigSpace,
        config: &Config,
        seed: u64,
        attempt: u32,
    ) -> AttemptOutcome;
}

impl TrialRunner for WorkloadRunner {
    fn evaluate_attempt(
        &self,
        space: &ConfigSpace,
        config: &Config,
        seed: u64,
        _attempt: u32,
    ) -> AttemptOutcome {
        let out = self.evaluate(space, config, seed);
        AttemptOutcome {
            score: out.score,
            metrics: out.result.metrics,
            virtual_ms: self.virtual_duration_ms(),
            // A simulated DBMS crash is a pure function of the config:
            // retrying cannot help.
            retryable: false,
        }
    }
}

/// What kind of trial fault to inject; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The evaluation panics.
    Panic,
    /// The attempt fails retryably; clears after
    /// [`FaultPlan::transient_attempts`] attempts.
    Transient,
    /// The run "never" finishes (huge virtual duration).
    Hang,
    /// The run finishes late (inflated virtual duration).
    Slow,
    /// The run reports a deterministically wrong score as a success.
    Corrupt,
}

/// A seeded fault schedule over configurations. Rates are per-mille and
/// partition the roll space, so a configuration draws at most one fault
/// kind; the all-zero default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed: the same seed reproduces the same faults.
    pub seed: u64,
    /// Per-mille of configs whose evaluation panics.
    pub panic_per_mille: u32,
    /// Per-mille of configs that fail transiently.
    pub transient_per_mille: u32,
    /// Per-mille of configs that hang.
    pub hang_per_mille: u32,
    /// Per-mille of configs that straggle.
    pub slow_per_mille: u32,
    /// Per-mille of configs whose score is corrupted.
    pub corrupt_per_mille: u32,
    /// Attempts a transient fault persists for before a retry succeeds.
    pub transient_attempts: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_per_mille: 0,
            transient_per_mille: 0,
            hang_per_mille: 0,
            slow_per_mille: 0,
            corrupt_per_mille: 0,
            transient_attempts: 1,
        }
    }
}

impl FaultPlan {
    /// A chaos-test mix touching every fault kind (~30% of configs
    /// faulted overall), parameterized by schedule seed.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_per_mille: 60,
            transient_per_mille: 80,
            hang_per_mille: 50,
            slow_per_mille: 70,
            corrupt_per_mille: 40,
            transient_attempts: 1,
        }
    }

    /// The fault assigned to a configuration fingerprint, if any — a
    /// pure function of `(self.seed, fingerprint)`.
    pub fn fault_for(&self, fingerprint: u64) -> Option<FaultKind> {
        let total = self.panic_per_mille
            + self.transient_per_mille
            + self.hang_per_mille
            + self.slow_per_mille
            + self.corrupt_per_mille;
        if total == 0 {
            return None;
        }
        let roll = (splitmix64(self.seed ^ fingerprint) % 1000) as u32;
        let mut band = self.panic_per_mille;
        if roll < band {
            return Some(FaultKind::Panic);
        }
        band += self.transient_per_mille;
        if roll < band {
            return Some(FaultKind::Transient);
        }
        band += self.hang_per_mille;
        if roll < band {
            return Some(FaultKind::Hang);
        }
        band += self.slow_per_mille;
        if roll < band {
            return Some(FaultKind::Slow);
        }
        band += self.corrupt_per_mille;
        if roll < band {
            return Some(FaultKind::Corrupt);
        }
        None
    }
}

/// Virtual duration reported by a hung evaluation — far beyond any
/// sane watchdog timeout, but finite so schedules without a watchdog
/// still fold the trial and terminate.
pub const HANG_VIRTUAL_MS: f64 = 1e12;

/// Inflation factor of a straggling ([`FaultKind::Slow`]) evaluation.
pub const SLOWDOWN_FACTOR: f64 = 8.0;

/// Counts of faults actually injected, by kind (observability for the
/// chaos suites: a green run with zero injections proves nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub panics: u64,
    pub transients: u64,
    pub hangs: u64,
    pub slowdowns: u64,
    pub corruptions: u64,
}

impl FaultCounts {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.panics + self.transients + self.hangs + self.slowdowns + self.corruptions
    }
}

/// A [`TrialRunner`] wrapper that injects trial-execution faults per a
/// [`FaultPlan`]; see the module docs.
pub struct FaultyRunner {
    inner: Arc<dyn TrialRunner>,
    plan: FaultPlan,
    panics: AtomicU64,
    transients: AtomicU64,
    hangs: AtomicU64,
    slowdowns: AtomicU64,
    corruptions: AtomicU64,
}

impl std::fmt::Debug for FaultyRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyRunner")
            .field("plan", &self.plan)
            .field("injected", &self.injected())
            .finish()
    }
}

impl FaultyRunner {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn TrialRunner>, plan: FaultPlan) -> FaultyRunner {
        FaultyRunner {
            inner,
            plan,
            panics: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            hangs: AtomicU64::new(0),
            slowdowns: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// The schedule this runner injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far, by kind.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            panics: self.panics.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
            hangs: self.hangs.load(Ordering::Relaxed),
            slowdowns: self.slowdowns.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }
}

impl TrialRunner for FaultyRunner {
    fn evaluate_attempt(
        &self,
        space: &ConfigSpace,
        config: &Config,
        seed: u64,
        attempt: u32,
    ) -> AttemptOutcome {
        let fp = config_fingerprint(config);
        match self.plan.fault_for(fp) {
            Some(FaultKind::Panic) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: trial runner panic (config {fp:#018x})");
            }
            Some(FaultKind::Transient) if attempt <= self.plan.transient_attempts => {
                self.transients.fetch_add(1, Ordering::Relaxed);
                AttemptOutcome {
                    score: None,
                    metrics: Vec::new(),
                    // The failure is quick (a refused connection), not a
                    // full run window.
                    virtual_ms: 1.0,
                    retryable: true,
                }
            }
            Some(FaultKind::Hang) => {
                self.hangs.fetch_add(1, Ordering::Relaxed);
                let mut out = self.inner.evaluate_attempt(space, config, seed, attempt);
                out.virtual_ms = HANG_VIRTUAL_MS;
                out
            }
            Some(FaultKind::Slow) => {
                self.slowdowns.fetch_add(1, Ordering::Relaxed);
                let mut out = self.inner.evaluate_attempt(space, config, seed, attempt);
                out.virtual_ms *= SLOWDOWN_FACTOR;
                out
            }
            Some(FaultKind::Corrupt) => {
                self.corruptions.fetch_add(1, Ordering::Relaxed);
                let mut out = self.inner.evaluate_attempt(space, config, seed, attempt);
                if let Some(s) = out.score {
                    // Deterministic wrong answer: scale by a factor in
                    // [0.25, 0.75] drawn from the schedule.
                    let u = (splitmix64(self.plan.seed ^ fp ^ 0xC02_2B47) % 1000) as f64 / 1000.0;
                    out.score = Some(s * (0.25 + 0.5 * u));
                }
                out
            }
            Some(FaultKind::Transient) | None => {
                self.inner.evaluate_attempt(space, config, seed, attempt)
            }
        }
    }
}

/// FNV-1a fingerprint of a decoded configuration (same construction as
/// the runtime cache's `config_key`, duplicated here because this crate
/// sits below the runtime in the dependency order).
pub fn config_fingerprint(config: &Config) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, v) in config.values().iter().enumerate() {
        mix(&(i as u64).to_le_bytes());
        match v {
            KnobValue::Int(x) => {
                mix(&[1]);
                mix(&x.to_le_bytes());
            }
            KnobValue::Float(x) => {
                mix(&[2]);
                mix(&x.to_bits().to_le_bytes());
            }
            KnobValue::Cat(x) => {
                mix(&[3]);
                mix(&(*x as u64).to_le_bytes());
            }
        }
    }
    h
}

/// Fast, well-mixed 64-bit hash (splitmix64 finalizer).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::suggested_options;
    use crate::suites::ycsb_a;
    use llamatune_space::catalog::postgres_v9_6;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn quick_runner() -> WorkloadRunner {
        let spec = ycsb_a();
        let mut opts = suggested_options(spec.name);
        opts.duration_s = 0.3;
        opts.warmup_s = 0.08;
        opts.max_txns = 30_000;
        WorkloadRunner::new(spec, postgres_v9_6()).with_options(opts)
    }

    fn configs(space: &ConfigSpace, n: usize) -> Vec<Config> {
        // Vary an integer knob to get n distinct fingerprints.
        let sb = space.index_of("shared_buffers").unwrap();
        (0..n)
            .map(|i| {
                let mut cfg = space.default_config();
                cfg.values_mut()[sb] = KnobValue::Int(16_384 + i as i64);
                cfg
            })
            .collect()
    }

    #[test]
    fn fault_assignment_is_deterministic_and_order_independent() {
        let plan = FaultPlan::chaos(42);
        let space = postgres_v9_6();
        let cfgs = configs(&space, 200);
        let forward: Vec<_> = cfgs.iter().map(|c| plan.fault_for(config_fingerprint(c))).collect();
        let mut backward: Vec<_> =
            cfgs.iter().rev().map(|c| plan.fault_for(config_fingerprint(c))).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        // Every kind appears somewhere in 200 configs at chaos rates.
        for kind in [
            FaultKind::Panic,
            FaultKind::Transient,
            FaultKind::Hang,
            FaultKind::Slow,
            FaultKind::Corrupt,
        ] {
            assert!(forward.contains(&Some(kind)), "{kind:?} never drawn");
        }
        // Most configs are healthy (rates sum to 300‰).
        let healthy = forward.iter().filter(|f| f.is_none()).count();
        assert!(healthy > 100, "only {healthy}/200 healthy");
        // A different seed reshuffles the schedule.
        let other = FaultPlan::chaos(43);
        let reshuffled: Vec<_> =
            cfgs.iter().map(|c| other.fault_for(config_fingerprint(c))).collect();
        assert_ne!(forward, reshuffled);
    }

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        let space = postgres_v9_6();
        for c in configs(&space, 50) {
            assert_eq!(plan.fault_for(config_fingerprint(&c)), None);
        }
    }

    #[test]
    fn transient_fault_clears_after_the_configured_attempts() {
        let space = postgres_v9_6();
        let runner = Arc::new(quick_runner());
        // Find a transiently faulted config under this plan.
        let plan = FaultPlan {
            transient_per_mille: 1000,
            transient_attempts: 2,
            ..FaultPlan { seed: 7, ..Default::default() }
        };
        let faulty = FaultyRunner::new(runner.clone(), plan);
        let cfg = space.default_config();
        let a1 = faulty.evaluate_attempt(&space, &cfg, 1, 1);
        assert!(a1.score.is_none() && a1.retryable, "attempt 1 fails transiently");
        let a2 = faulty.evaluate_attempt(&space, &cfg, 1, 2);
        assert!(a2.score.is_none() && a2.retryable, "attempt 2 still fails");
        let a3 = faulty.evaluate_attempt(&space, &cfg, 1, 3);
        assert!(a3.score.is_some(), "attempt 3 clears the fault");
        // The cleared attempt matches the unfaulted evaluation exactly.
        let clean = runner.evaluate_attempt(&space, &cfg, 1, 1);
        assert_eq!(a3.score, clean.score);
        assert_eq!(faulty.injected().transients, 2);
    }

    #[test]
    fn hang_and_slow_inflate_virtual_time_deterministically() {
        let space = postgres_v9_6();
        let runner = Arc::new(quick_runner());
        let base = runner.evaluate_attempt(&space, &space.default_config(), 1, 1).virtual_ms;
        let hang = FaultyRunner::new(
            runner.clone(),
            FaultPlan { hang_per_mille: 1000, ..Default::default() },
        );
        let out = hang.evaluate_attempt(&space, &space.default_config(), 1, 1);
        assert_eq!(out.virtual_ms, HANG_VIRTUAL_MS);
        assert!(out.score.is_some(), "a hang still completes in virtual time");
        let slow = FaultyRunner::new(
            runner.clone(),
            FaultPlan { slow_per_mille: 1000, ..Default::default() },
        );
        let out = slow.evaluate_attempt(&space, &space.default_config(), 1, 1);
        assert_eq!(out.virtual_ms, base * SLOWDOWN_FACTOR);
        assert_eq!(hang.injected().hangs, 1);
        assert_eq!(slow.injected().slowdowns, 1);
    }

    #[test]
    fn corruption_is_wrong_but_deterministic() {
        let space = postgres_v9_6();
        let runner = Arc::new(quick_runner());
        let cfg = space.default_config();
        let clean = runner.evaluate_attempt(&space, &cfg, 3, 1).score.unwrap();
        let plan = FaultPlan { corrupt_per_mille: 1000, seed: 9, ..Default::default() };
        let a = FaultyRunner::new(runner.clone(), plan);
        let b = FaultyRunner::new(runner.clone(), plan);
        let sa = a.evaluate_attempt(&space, &cfg, 3, 1).score.unwrap();
        let sb = b.evaluate_attempt(&space, &cfg, 3, 1).score.unwrap();
        assert_eq!(sa.to_bits(), sb.to_bits(), "corruption is replayable");
        assert_ne!(sa.to_bits(), clean.to_bits(), "and actually wrong");
        assert!(sa > 0.0 && sa < clean, "bounded perturbation");
    }

    #[test]
    fn panic_fault_panics_and_is_catchable() {
        let space = postgres_v9_6();
        let faulty = FaultyRunner::new(
            Arc::new(quick_runner()),
            FaultPlan { panic_per_mille: 1000, ..Default::default() },
        );
        let cfg = space.default_config();
        let caught = catch_unwind(AssertUnwindSafe(|| faulty.evaluate_attempt(&space, &cfg, 1, 1)));
        assert!(caught.is_err(), "panic fault must panic");
        assert_eq!(faulty.injected().panics, 1);
    }

    #[test]
    fn plain_runner_attempts_are_attempt_invariant() {
        let space = postgres_v9_6();
        let runner = quick_runner();
        let cfg = space.default_config();
        let a = runner.evaluate_attempt(&space, &cfg, 5, 1);
        let b = runner.evaluate_attempt(&space, &cfg, 5, 4);
        assert_eq!(a.score, b.score);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert!(!a.retryable);
    }
}

//! The six OLTP workloads of the paper's evaluation (Table 4), plus the
//! YCSB-F read-modify-write mix, built as
//! [`llamatune_engine::WorkloadSpec`]s, plus the benchmark runner used by
//! every tuning session.
//!
//! | Workload | Tables (cols) | RO txns |
//! |----------|---------------|---------|
//! | YCSB-A   | 1 (11)        | 50%     |
//! | YCSB-B   | 1 (11)        | 95%     |
//! | YCSB-F   | 1 (11)        | 50%     |
//! | TPC-C    | 9 (92)        | 8%      |
//! | SEATS    | 10 (189)      | 45%     |
//! | Twitter  | 5 (18)        | 1%      |
//! | RS       | 4 (23)        | 33%     |
//!
//! All databases are sized to roughly 20 GB and driven by 40 clients
//! (Section 6.1). Schemas and transaction mixes follow the YCSB suite
//! \[6\] and BenchBase \[8\] definitions, simplified to the
//! logical-operation vocabulary of the engine.

pub mod faulty;
pub mod fingerprint;
pub mod runner;
pub mod suites;

pub use faulty::{
    config_fingerprint, AttemptOutcome, FaultCounts, FaultKind, FaultPlan, FaultyRunner,
    TrialRunner, HANG_VIRTUAL_MS, SLOWDOWN_FACTOR,
};
pub use fingerprint::{workload_fingerprint, FINGERPRINT_PROBE_SEED};
pub use runner::{suggested_options, Objective, WorkloadRunner};
pub use suites::{
    all_workloads, resource_stresser, seats, tpcc, twitter, workload_by_name, ycsb_a, ycsb_b,
    ycsb_f, PAPER_WORKLOAD_NAMES, WORKLOAD_NAMES,
};

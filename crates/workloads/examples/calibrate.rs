//! Prints default-config throughput and evaluation wall time per workload.
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{all_workloads, WorkloadRunner};
use std::time::Instant;

fn main() {
    let catalog = postgres_v9_6();
    for spec in all_workloads() {
        let name = spec.name;
        let runner = WorkloadRunner::new(spec, catalog.clone());
        let cfg = catalog.default_config();
        let _warm = runner.evaluate(&catalog, &cfg, 0); // amortize zeta caches
        let t0 = Instant::now();
        let out = runner.evaluate(&catalog, &cfg, 1);
        let dt = t0.elapsed();
        let r = &out.result;
        println!(
            "{name:<20} tput={:>9.0} tps  p50={:>8.2}ms p95={:>8.2}ms  committed={:>7}  wall={:?}",
            r.throughput_tps, r.p50_latency_ms, r.p95_latency_ms, r.committed, dt
        );
    }
}

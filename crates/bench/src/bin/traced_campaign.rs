//! Runs a small store-backed campaign with a live [`RecordingTracer`]
//! and leaves the telemetry on disk — the CI observability job's
//! driver, and a worked example of the tracing stack end to end.
//!
//! Usage: `traced_campaign <dir> [--workers N]`. The directory receives
//! the trial store (MANIFEST + seg-*.jsonl) plus telemetry pairs:
//! single-writer runs persist `telemetry-local.{trace.jsonl,metrics.json}`;
//! with `--workers N` (N ≥ 1) the campaign runs as an N-worker fleet
//! and persists one `telemetry-wK.*` pair per worker plus the derived
//! `telemetry-fleet.*` pair — `llamatune-report --fleet <dir>` renders
//! the merged view. Every persisted trace is validated through the
//! schema-checking parser before the process exits, so a zero exit
//! status certifies well-formed telemetry.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_obs::trace::{parse_trace_jsonl, RecordingTracer};
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignAttachments, CampaignOptions, CampaignSpec, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::{LocalDirBackend, StoreOptions, TrialStore};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, workers) = match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        [dir] => (dir.to_string(), None),
        [dir, "--workers", n] => match n.parse::<usize>() {
            Ok(n) if n >= 1 => (dir.to_string(), Some(n)),
            _ => {
                eprintln!("traced_campaign: --workers takes a positive integer");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: traced_campaign <dir> [--workers N]");
            return ExitCode::FAILURE;
        }
    };
    match run(&dir, workers) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("traced_campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(dir: &str, workers: Option<usize>) -> Result<(), String> {
    let tracer = Arc::new(RecordingTracer::new());
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: 2,
        session_parallelism: 2,
        run_options: Some(RunOptions {
            duration_s: 0.2,
            warmup_s: 0.05,
            max_txns: 20_000,
            ..Default::default()
        }),
        tracer: tracer.clone(),
        ..Default::default()
    };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".to_string(), "ycsb_f".to_string()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1],
    };
    let campaign = Campaign::new(postgres_v9_6(), spec, opts);

    let (results, tags) = match workers {
        // Fleet mode: N shared writers pull sessions from one queue;
        // each persists its own telemetry pair next to the fleet pair.
        Some(n) => {
            let backend: Arc<dyn llamatune_store::StoreBackend> = Arc::new(
                LocalDirBackend::create(dir).map_err(|e| format!("open store {dir}: {e}"))?,
            );
            let results = campaign
                .run_attached(CampaignAttachments::new().with_fleet(
                    backend,
                    n,
                    StoreOptions::default(),
                ))
                .map_err(|e| format!("campaign: {e}"))?;
            let mut tags: Vec<String> = (0..n).map(|w| format!("w{w}")).collect();
            tags.push("fleet".to_string());
            (results, tags)
        }
        None => {
            let store = TrialStore::open(dir).map_err(|e| format!("open store {dir}: {e}"))?;
            let results = campaign
                .run_attached(CampaignAttachments::new().with_store(&store))
                .map_err(|e| format!("campaign: {e}"))?;
            (results, vec!["local".to_string()])
        }
    };

    // Re-read every persisted telemetry pair through the
    // schema-validating parser: the exit status certifies what is on
    // disk, not what was in memory. (A fleet worker that never won a
    // session still writes a pair — possibly with zero events.)
    let reader: Arc<dyn llamatune_store::StoreBackend> =
        Arc::new(LocalDirBackend::create(dir).map_err(|e| format!("reopen store {dir}: {e}"))?);
    let store = TrialStore::open_reader(reader, StoreOptions::default())
        .map_err(|e| format!("reopen store {dir}: {e}"))?;
    let mut total_events = 0usize;
    for tag in &tags {
        let trace = store
            .read_telemetry(&format!("{tag}.trace.jsonl"))
            .map_err(|e| format!("read trace {tag}: {e}"))?
            .ok_or_else(|| format!("telemetry-{tag}.trace.jsonl was not written"))?;
        let trace = String::from_utf8(trace).map_err(|e| format!("trace {tag} not UTF-8: {e}"))?;
        let events =
            parse_trace_jsonl(&trace).map_err(|e| format!("trace {tag} validation: {e}"))?;
        if *tag == "local" || *tag == "fleet" {
            total_events = events.len();
        }
        let metrics = store
            .read_telemetry(&format!("{tag}.metrics.json"))
            .map_err(|e| format!("read metrics {tag}: {e}"))?
            .ok_or_else(|| format!("telemetry-{tag}.metrics.json was not written"))?;
        let metrics =
            String::from_utf8(metrics).map_err(|e| format!("metrics {tag} not UTF-8: {e}"))?;
        llamatune_obs::MetricsSnapshot::from_json(&metrics)
            .map_err(|e| format!("metrics {tag} validation: {e}"))?;
    }

    println!(
        "traced {} sessions across {} telemetry pair(s): {} campaign trace events, telemetry in {dir}",
        results.len(),
        tags.len(),
        total_events
    );
    Ok(())
}

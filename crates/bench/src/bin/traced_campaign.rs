//! Runs a small store-backed campaign with a live [`RecordingTracer`]
//! and leaves the telemetry on disk — the CI observability job's
//! driver, and a worked example of the tracing stack end to end.
//!
//! Usage: `traced_campaign <dir>`. The directory receives the trial
//! store (MANIFEST + seg-*.jsonl) plus `telemetry-local.trace.jsonl`
//! and `telemetry-local.metrics.json`, which `llamatune-report` renders
//! into the session report. The trace is validated through the
//! schema-checking parser before the process exits, so a zero exit
//! status certifies well-formed telemetry.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_obs::trace::{parse_trace_jsonl, RecordingTracer};
use llamatune_runtime::{AdapterKind, Campaign, CampaignOptions, CampaignSpec, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::TrialStore;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(dir), None) = (args.next(), args.next()) else {
        eprintln!("usage: traced_campaign <dir>");
        return ExitCode::FAILURE;
    };
    match run(&dir) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("traced_campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(dir: &str) -> Result<(), String> {
    let tracer = Arc::new(RecordingTracer::new());
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: 2,
        session_parallelism: 2,
        run_options: Some(RunOptions {
            duration_s: 0.2,
            warmup_s: 0.05,
            max_txns: 20_000,
            ..Default::default()
        }),
        tracer: tracer.clone(),
        ..Default::default()
    };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".to_string(), "ycsb_f".to_string()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1],
    };
    let campaign = Campaign::new(postgres_v9_6(), spec, opts);
    let store = TrialStore::open(dir).map_err(|e| format!("open store {dir}: {e}"))?;
    let results = campaign.run_with_store(&store).map_err(|e| format!("campaign: {e}"))?;

    // Re-read the persisted telemetry through the schema-validating
    // parser: the exit status certifies what is on disk, not what was
    // in memory.
    let trace = store
        .read_telemetry("local.trace.jsonl")
        .map_err(|e| format!("read trace: {e}"))?
        .ok_or("telemetry-local.trace.jsonl was not written")?;
    let trace = String::from_utf8(trace).map_err(|e| format!("trace not UTF-8: {e}"))?;
    let events = parse_trace_jsonl(&trace).map_err(|e| format!("trace validation: {e}"))?;
    let metrics = store
        .read_telemetry("local.metrics.json")
        .map_err(|e| format!("read metrics: {e}"))?
        .ok_or("telemetry-local.metrics.json was not written")?;
    let metrics = String::from_utf8(metrics).map_err(|e| format!("metrics not UTF-8: {e}"))?;
    llamatune_obs::MetricsSnapshot::from_json(&metrics)
        .map_err(|e| format!("metrics validation: {e}"))?;

    println!(
        "traced {} sessions: {} trace events, telemetry in {dir}",
        results.len(),
        events.len()
    );
    Ok(())
}

//! CI bench-regression gate (see `llamatune_bench::gate` for the rules).
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [factor]
//! ```
//!
//! Compares the committed baseline artifact against a freshly generated
//! one and exits non-zero when any `_us` latency regressed by more than
//! `factor` (default 2.0, or `BENCH_GATE_FACTOR`), or when the two
//! artifacts are not comparable (different scales, reordered rows —
//! that is a workflow bug, not a pass).

use llamatune_bench::gate;
use std::process::ExitCode;

fn load(path: &str) -> Result<gate::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    gate::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path, factor_arg) = match args.as_slice() {
        [b, c] => (b, c, None),
        [b, c, f] => (b, c, Some(f.clone())),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <current.json> [factor]");
            return ExitCode::from(2);
        }
    };
    let factor: f64 = factor_arg
        .or_else(|| std::env::var("BENCH_GATE_FACTOR").ok())
        .map(|s| s.parse().expect("factor must be a number"))
        .unwrap_or(2.0);

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    println!("bench_gate: {baseline_path} (baseline) vs {current_path} (current)\n");
    match gate::compare(&baseline, &current, factor) {
        Ok(cmp) => {
            print!("{}", cmp.report(factor));
            if cmp.regressions().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench_gate: artifacts are not comparable: {e}");
            ExitCode::from(2)
        }
    }
}

//! Quick headline validation: LlamaTune (SMAC) vs vanilla SMAC on YCSB-A.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune_bench::{paired_rows, print_curve_table, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner};
use std::time::Instant;

fn main() {
    let scale = ExpScale { seeds: 3, iterations: 60, quick: true };
    let catalog = postgres_v9_6();
    let wl = std::env::args().nth(1).unwrap_or_else(|| "ycsb_a".into());
    let spec = workload_by_name(&wl).expect("workload");
    let runner = WorkloadRunner::new(spec, catalog.clone());

    let t0 = Instant::now();
    let base = run_tuning_arm(
        "SMAC",
        &runner,
        &catalog,
        |_seed| Box::new(IdentityAdapter::new(&catalog)),
        OptimizerKind::Smac,
        scale,
    );
    println!("baseline done in {:?}", t0.elapsed());
    let t1 = Instant::now();
    let llama = run_tuning_arm(
        "LlamaTune",
        &runner,
        &catalog,
        |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
        OptimizerKind::Smac,
        scale,
    );
    println!("llamatune done in {:?}", t1.elapsed());

    let row = paired_rows(&wl, &base, &llama);
    println!(
        "\n{wl}: improvement {:+.2}% [{:+.1}%, {:+.1}%], speedup {:.2}x (catch-up at {:?})",
        row.improvement.mean,
        row.improvement.ci_lo,
        row.improvement.ci_hi,
        row.speedup.mean,
        row.catch_up_iter
    );
    print_curve_table(&["SMAC", "LlamaTune"], &[base.mean_curve(), llama.mean_curve()], 5);
}

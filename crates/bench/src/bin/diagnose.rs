//! Single-knob sweeps around the default config, plus best-config diffs.
use llamatune_space::catalog::postgres_v9_6;
use llamatune_space::KnobValue;
use llamatune_workloads::{workload_by_name, WorkloadRunner};

fn main() {
    let catalog = postgres_v9_6();
    let wl = std::env::args().nth(1).unwrap_or_else(|| "ycsb_a".into());
    let spec = workload_by_name(&wl).expect("workload");
    let runner = WorkloadRunner::new(spec, catalog.clone());
    let base_cfg = catalog.default_config();
    let base = runner.evaluate(&catalog, &base_cfg, 1).score.unwrap();
    println!("default: {base:.0} tps");

    let sweeps: Vec<(&str, Vec<KnobValue>)> = vec![
        (
            "shared_buffers",
            vec![
                KnobValue::Int(2048),
                KnobValue::Int(131072),
                KnobValue::Int(524288),
                KnobValue::Int(1048576),
            ],
        ),
        ("synchronous_commit", vec![KnobValue::Cat(1)]),
        ("fsync", vec![KnobValue::Cat(0)]),
        ("commit_delay", vec![KnobValue::Int(2000), KnobValue::Int(20000)]),
        ("wal_buffers", vec![KnobValue::Int(8), KnobValue::Int(2048)]),
        ("max_wal_size", vec![KnobValue::Int(2), KnobValue::Int(16), KnobValue::Int(4096)]),
        ("checkpoint_timeout", vec![KnobValue::Int(30), KnobValue::Int(3600)]),
        ("full_page_writes", vec![KnobValue::Cat(0)]),
        ("autovacuum", vec![KnobValue::Cat(0)]),
        ("autovacuum_vacuum_scale_factor", vec![KnobValue::Float(0.01), KnobValue::Float(0.9)]),
        ("backend_flush_after", vec![KnobValue::Int(2), KnobValue::Int(64), KnobValue::Int(256)]),
        ("bgwriter_lru_maxpages", vec![KnobValue::Int(0), KnobValue::Int(1000)]),
        (
            "wal_writer_flush_after",
            vec![KnobValue::Int(0), KnobValue::Int(8), KnobValue::Int(100000)],
        ),
        ("work_mem", vec![KnobValue::Int(64), KnobValue::Int(1048576)]),
        ("effective_io_concurrency", vec![KnobValue::Int(0), KnobValue::Int(200)]),
        ("random_page_cost", vec![KnobValue::Float(1.0), KnobValue::Float(50.0)]),
        ("enable_seqscan", vec![KnobValue::Cat(0)]),
        ("enable_indexscan", vec![KnobValue::Cat(0)]),
        ("deadlock_timeout", vec![KnobValue::Int(10), KnobValue::Int(600000)]),
        ("max_connections", vec![KnobValue::Int(45), KnobValue::Int(1000)]),
    ];
    for (name, values) in sweeps {
        let idx = catalog.index_of(name).unwrap();
        for v in values {
            let mut cfg = base_cfg.clone();
            cfg.values_mut()[idx] = v;
            let out = runner.evaluate(&catalog, &cfg, 1);
            match out.score {
                Some(s) => println!(
                    "{name:>32} = {v:>10} -> {s:>8.0} tps ({:+.1}%)",
                    (s - base) / base * 100.0
                ),
                None => println!("{name:>32} = {v:>10} -> CRASH"),
            }
        }
    }
}

//! Dump the 27 metrics for a workload's default config.
use llamatune_engine::METRIC_NAMES;
use llamatune_space::catalog::postgres_v9_6;
use llamatune_space::KnobValue;
use llamatune_workloads::{workload_by_name, WorkloadRunner};

fn main() {
    let catalog = postgres_v9_6();
    let wl = std::env::args().nth(1).unwrap_or_else(|| "ycsb_b".into());
    let spec = workload_by_name(&wl).expect("workload");
    let runner = WorkloadRunner::new(spec, catalog.clone());
    let mut cfg = catalog.default_config();
    if let Some(knob) = std::env::args().nth(2) {
        let val: i64 = std::env::args().nth(3).unwrap().parse().unwrap();
        let idx = catalog.index_of(&knob).unwrap();
        cfg.values_mut()[idx] = KnobValue::Int(val);
    }
    let out = runner.run(&catalog, &cfg, 1);
    println!(
        "tput={:.0} p50={:.2}ms p95={:.2}ms",
        out.throughput_tps, out.p50_latency_ms, out.p95_latency_ms
    );
    for (n, v) in METRIC_NAMES.iter().zip(&out.metrics) {
        println!("{n:>28} = {v:.2}");
    }
}

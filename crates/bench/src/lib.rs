//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each bench target (`cargo bench -p llamatune-bench --bench <name>`)
//! prints the corresponding table rows or figure series. Scale is
//! controlled by environment variables:
//!
//! * `LLAMATUNE_SEEDS` — tuning sessions per arm (default 5, as in the
//!   paper);
//! * `LLAMATUNE_ITERS` — iterations per session (default 100);
//! * `LLAMATUNE_QUICK=1` — shrink to 3 seeds x 50 iterations and shorter
//!   simulated runs, for smoke-testing the harness.

pub mod exp;
pub mod gate;
pub mod printing;

pub use exp::{
    aggregate_curves, arm_summary, paired_rows, run_tuning_arm, ArmResult, ExpScale, OptimizerKind,
    PairedRow,
};
pub use printing::{print_curve_table, print_header, print_row, print_table};

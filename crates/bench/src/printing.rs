//! Text rendering of tables and figure series (the harness prints the
//! same rows the paper reports). Rendering itself lives in
//! [`llamatune_obs::fmt`] so bench output and `llamatune-report`
//! session reports share one set of shapes; this module binds those
//! renderers to the harness's row types and to stdout.

use crate::exp::PairedRow;

/// Prints an experiment header banner.
pub fn print_header(title: &str, detail: &str) {
    print!("{}", llamatune_obs::fmt::header(title, detail));
}

/// Prints one paired-comparison row in the style of Tables 5-9.
pub fn print_row(row: &PairedRow, _metric: &str) {
    let catch = match row.catch_up_iter {
        Some(i) => format!("[{i} iter]"),
        None => "[not reached]".to_string(),
    };
    println!(
        "{:<18} {:>8.2}% [{:>6.1}%, {:>6.1}%]   {:>6.2}x {:<14} [{:.1}x, {:.1}x]",
        row.workload,
        row.improvement.mean,
        row.improvement.ci_lo,
        row.improvement.ci_hi,
        row.speedup.mean,
        catch,
        row.speedup.ci_lo,
        row.speedup.ci_hi,
    );
}

/// Prints best-so-far curves as an iteration-indexed table (one column per
/// labelled series), sampled every `step` iterations.
pub fn print_curve_table(labels: &[&str], curves: &[Vec<f64>], step: usize) {
    print!("{}", llamatune_obs::fmt::curve_table(labels, curves, step));
}

/// Prints a column-aligned table (first column left-aligned, the rest
/// right-aligned) — ad-hoc bench rows go through here instead of
/// hand-padded `println!` format strings.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", llamatune_obs::fmt::table(headers, rows));
}

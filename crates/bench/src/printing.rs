//! Text rendering of tables and figure series (the harness prints the
//! same rows the paper reports).

use crate::exp::PairedRow;

/// Prints an experiment header banner.
pub fn print_header(title: &str, detail: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!("================================================================");
}

/// Prints one paired-comparison row in the style of Tables 5-9.
pub fn print_row(row: &PairedRow, _metric: &str) {
    let catch = match row.catch_up_iter {
        Some(i) => format!("[{i} iter]"),
        None => "[not reached]".to_string(),
    };
    println!(
        "{:<18} {:>8.2}% [{:>6.1}%, {:>6.1}%]   {:>6.2}x {:<14} [{:.1}x, {:.1}x]",
        row.workload,
        row.improvement.mean,
        row.improvement.ci_lo,
        row.improvement.ci_hi,
        row.speedup.mean,
        catch,
        row.speedup.ci_lo,
        row.speedup.ci_hi,
    );
}

/// Prints best-so-far curves as an iteration-indexed table (one column per
/// labelled series), sampled every `step` iterations.
pub fn print_curve_table(labels: &[&str], curves: &[Vec<f64>], step: usize) {
    assert_eq!(labels.len(), curves.len());
    print!("{:>6}", "iter");
    for l in labels {
        print!(" {l:>18}");
    }
    println!();
    let len = curves.iter().map(Vec::len).max().unwrap_or(0);
    let mut i = 0;
    while i < len {
        print!("{i:>6}");
        for c in curves {
            match c.get(i).or(c.last()) {
                Some(v) => print!(" {v:>18.1}"),
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
        i += step.max(1);
    }
    // Always close with the final iteration.
    if (len > 0) && (len - 1) % step.max(1) != 0 {
        let i = len - 1;
        print!("{i:>6}");
        for c in curves {
            match c.get(i).or(c.last()) {
                Some(v) => print!(" {v:>18.1}"),
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
}

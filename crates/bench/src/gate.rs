//! The bench-regression gate: compares a freshly generated `BENCH_*.json`
//! artifact against the committed baseline and flags latency regressions.
//!
//! The benches record latencies in fields ending in `_us`; everything
//! else in the artifacts is either *identity* (which measurement a row
//! is — `n`, `backend`, `optimizer`, …) or *derived* (`speedup`
//! ratios). The gate walks both documents in parallel:
//!
//! * identity mismatches (different `n`, reordered rows, a `quick`-mode
//!   artifact compared against a full-mode baseline, missing keys,
//!   different row counts) are **errors** — the comparison would be
//!   meaningless;
//! * every `_us` pair is compared: a regression is `current >
//!   baseline * factor` **and** `current > baseline + ABS_SLACK_US` —
//!   the multiplicative threshold (default 2x, deliberately tolerant of
//!   shared-runner noise) catches real slowdowns, the absolute slack
//!   keeps micro-measurements (a 3 µs append that jitters to 8 µs)
//!   from crying wolf;
//! * derived ratios and unknown numeric fields are ignored.
//!
//! Parsing rides on the core crate's [`JsonScanner`] (the store's own
//! tokenizer), with a small recursive value layer on top — one JSON
//! implementation per workspace. Used by `src/bin/bench_gate.rs`,
//! which CI runs after regenerating the artifacts (see
//! `.github/workflows/ci.yml`, job `bench-gate`).

use llamatune::history_io::JsonScanner;
use std::fmt::Write as _;

/// Absolute slack on top of the multiplicative threshold: differences
/// smaller than this many microseconds are never regressions.
pub const ABS_SLACK_US: f64 = 25.0;

/// Numeric identity fields: a mismatch means the two artifacts measure
/// different things, not that one is slower.
const IDENTITY_NUM_KEYS: &[&str] =
    &["n", "q", "dims", "reps", "rounds", "writers", "records", "segment_records", "sessions"];

/// A minimal JSON value tree (the artifacts' dialect).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn value(sc: &mut JsonScanner) -> Result<Json, String> {
    match sc.peek().ok_or("unexpected end of input")? {
        b'{' => object(sc),
        b'[' => array(sc),
        b'"' => Ok(Json::Str(sc.string()?)),
        b't' | b'f' | b'n' => {
            if sc.literal("true") {
                Ok(Json::Bool(true))
            } else if sc.literal("false") {
                Ok(Json::Bool(false))
            } else if sc.literal("null") {
                Ok(Json::Null)
            } else {
                Err("bad literal (expected true/false/null)".to_string())
            }
        }
        _ => sc.number().map(Json::Num),
    }
}

fn array(sc: &mut JsonScanner) -> Result<Json, String> {
    sc.expect(b'[')?;
    let mut items = Vec::new();
    if sc.peek() == Some(b']') {
        sc.expect(b']')?;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(sc)?);
        match sc.peek() {
            Some(b',') => sc.expect(b',')?,
            _ => {
                sc.expect(b']')?;
                return Ok(Json::Arr(items));
            }
        }
    }
}

fn object(sc: &mut JsonScanner) -> Result<Json, String> {
    sc.expect(b'{')?;
    let mut members = Vec::new();
    if sc.peek() == Some(b'}') {
        sc.expect(b'}')?;
        return Ok(Json::Obj(members));
    }
    loop {
        let key = sc.string()?;
        sc.expect(b':')?;
        members.push((key, value(sc)?));
        match sc.peek() {
            Some(b',') => sc.expect(b',')?,
            _ => {
                sc.expect(b'}')?;
                return Ok(Json::Obj(members));
            }
        }
    }
}

/// Parses a JSON document (the bench artifacts' dialect).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut sc = JsonScanner::new(text);
    let v = value(&mut sc)?;
    if !sc.done() {
        return Err("trailing content after document".to_string());
    }
    Ok(v)
}

/// One latency pair the gate compared.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyCheck {
    /// Dotted path of the field, e.g. `gp_observe[2].incremental_us`.
    pub path: String,
    pub baseline_us: f64,
    pub current_us: f64,
    /// Whether this pair trips the regression rule.
    pub regressed: bool,
}

/// The gate's verdict over two artifacts.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Every `_us` pair, in document order.
    pub checks: Vec<LatencyCheck>,
}

impl Comparison {
    /// The checks that regressed.
    pub fn regressions(&self) -> Vec<&LatencyCheck> {
        self.checks.iter().filter(|c| c.regressed).collect()
    }

    /// Human-readable report table.
    pub fn report(&self, factor: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>8}",
            "measurement", "baseline", "current", "ratio"
        );
        for c in &self.checks {
            let ratio =
                if c.baseline_us > 0.0 { c.current_us / c.baseline_us } else { f64::INFINITY };
            let _ = writeln!(
                out,
                "{:<44} {:>10.1}us {:>10.1}us {:>7.2}x{}",
                c.path,
                c.baseline_us,
                c.current_us,
                ratio,
                if c.regressed { "  << REGRESSION" } else { "" }
            );
        }
        let n_reg = self.regressions().len();
        let _ = writeln!(
            out,
            "{} measurements checked, {} regression{} (threshold {factor}x + {ABS_SLACK_US}us slack)",
            self.checks.len(),
            n_reg,
            if n_reg == 1 { "" } else { "s" },
        );
        out
    }
}

fn walk(
    path: &str,
    baseline: &Json,
    current: &Json,
    factor: f64,
    out: &mut Comparison,
) -> Result<(), String> {
    match (baseline, current) {
        (Json::Obj(base_members), Json::Obj(_)) => {
            for (key, base_val) in base_members {
                let sub = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                let cur_val = current
                    .get(key)
                    .ok_or_else(|| format!("{sub}: present in baseline, missing in current"))?;
                walk(&sub, base_val, cur_val, factor, out)?;
            }
            Ok(())
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                return Err(format!(
                    "{path}: {} baseline rows vs {} current rows",
                    a.len(),
                    b.len()
                ));
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                walk(&format!("{path}[{i}]"), x, y, factor, out)?;
            }
            Ok(())
        }
        (Json::Num(a), Json::Num(b)) => {
            let key = path.rsplit('.').next().unwrap_or(path);
            if key.ends_with("_us") {
                let regressed = *b > *a * factor && *b > *a + ABS_SLACK_US;
                out.checks.push(LatencyCheck {
                    path: path.to_string(),
                    baseline_us: *a,
                    current_us: *b,
                    regressed,
                });
            } else if IDENTITY_NUM_KEYS.contains(&key) && a != b {
                return Err(format!(
                    "{path}: baseline measured {a}, current measured {b} — different scales, not comparable"
                ));
            }
            // Other numerics (speedup ratios etc.) are derived: ignored.
            Ok(())
        }
        (Json::Str(a), Json::Str(b)) => {
            if a != b {
                return Err(format!(
                    "{path}: baseline row is {a:?}, current is {b:?} — rows reordered or renamed"
                ));
            }
            Ok(())
        }
        (Json::Bool(a), Json::Bool(b)) => {
            if a != b {
                return Err(format!(
                    "{path}: baseline {a} vs current {b} (quick-mode artifact compared against full-mode baseline?)"
                ));
            }
            Ok(())
        }
        (Json::Null, Json::Null) => Ok(()),
        _ => Err(format!("{path}: type mismatch between baseline and current")),
    }
}

/// Compares two artifacts. `Err` means the documents are not comparable
/// (shape/identity drift); `Ok` carries every latency check performed.
pub fn compare(baseline: &Json, current: &Json, factor: f64) -> Result<Comparison, String> {
    let mut out = Comparison::default();
    walk("", baseline, current, factor, &mut out)?;
    if out.checks.is_empty() {
        return Err("no *_us measurements found — artifact shape changed?".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "config": {"dims": 16, "quick": false, "reps": 9},
      "rows": [
        {"n": 50, "fast_us": 10.0, "slow_us": 1000.0, "speedup": 100.0},
        {"n": 100, "fast_us": 20.0, "slow_us": 4000.0, "speedup": 200.0}
      ]
    }"#;

    fn base() -> Json {
        parse(BASE).unwrap()
    }

    fn with(f: impl Fn(&mut String)) -> Json {
        let mut s = BASE.to_string();
        f(&mut s);
        parse(&s).unwrap()
    }

    #[test]
    fn parser_roundtrips_the_artifact_dialect() {
        let doc = base();
        assert_eq!(doc.get("config").unwrap().get("dims"), Some(&Json::Num(16.0)));
        assert_eq!(doc.get("config").unwrap().get("quick"), Some(&Json::Bool(false)));
        match doc.get("rows").unwrap() {
            Json::Arr(rows) => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a": [1, 2,]}"#).is_err());
        // Nulls, escapes, and non-ASCII survive (JsonScanner underneath).
        let doc = parse(r#"{"name": "µbench \"q\"", "x": null}"#).unwrap();
        assert_eq!(doc.get("name"), Some(&Json::Str("µbench \"q\"".to_string())));
        assert_eq!(doc.get("x"), Some(&Json::Null));
    }

    #[test]
    fn identical_artifacts_pass_with_all_checks_counted() {
        let cmp = compare(&base(), &base(), 2.0).unwrap();
        assert_eq!(cmp.checks.len(), 4, "two rows x two _us fields");
        assert!(cmp.regressions().is_empty());
        assert!(cmp.report(2.0).contains("0 regressions"));
    }

    #[test]
    fn a_real_slowdown_is_flagged_and_noise_is_not() {
        // slow_us doubles-plus: regression.
        let cur = with(|s| *s = s.replace("\"slow_us\": 4000.0", "\"slow_us\": 9000.0"));
        let cmp = compare(&base(), &cur, 2.0).unwrap();
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "rows[1].slow_us");
        assert!(cmp.report(2.0).contains("REGRESSION"));

        // fast_us triples but stays inside the absolute slack: noise.
        let cur = with(|s| *s = s.replace("\"fast_us\": 10.0", "\"fast_us\": 30.0"));
        assert!(compare(&base(), &cur, 2.0).unwrap().regressions().is_empty());

        // Getting faster is never a regression.
        let cur = with(|s| *s = s.replace("\"slow_us\": 4000.0", "\"slow_us\": 100.0"));
        assert!(compare(&base(), &cur, 2.0).unwrap().regressions().is_empty());

        // Derived ratios are ignored entirely.
        let cur = with(|s| *s = s.replace("\"speedup\": 200.0", "\"speedup\": 1.0"));
        assert!(compare(&base(), &cur, 2.0).unwrap().regressions().is_empty());
    }

    #[test]
    fn identity_drift_is_an_error_not_a_pass() {
        // Different n: these are different measurements.
        let cur = with(|s| *s = s.replace("\"n\": 100", "\"n\": 200"));
        assert!(compare(&base(), &cur, 2.0).unwrap_err().contains("different scales"));
        // Quick-mode artifact vs full-mode baseline.
        let cur = with(|s| *s = s.replace("\"quick\": false", "\"quick\": true"));
        assert!(compare(&base(), &cur, 2.0).is_err());
        // Dropped row.
        let cur = parse(
            r#"{"config": {"dims": 16, "quick": false, "reps": 9},
                "rows": [{"n": 50, "fast_us": 10.0, "slow_us": 1000.0, "speedup": 100.0}]}"#,
        )
        .unwrap();
        assert!(compare(&base(), &cur, 2.0).unwrap_err().contains("rows"));
        // Missing key.
        let cur = with(|s| *s = s.replace("\"slow_us\"", "\"renamed_us\""));
        assert!(compare(&base(), &cur, 2.0).unwrap_err().contains("missing in current"));
        // No latency fields at all.
        let none = parse(r#"{"a": 1}"#).unwrap();
        assert!(compare(&none, &none, 2.0).is_err());
    }

    #[test]
    fn the_factor_is_configurable() {
        let cur = with(|s| *s = s.replace("\"slow_us\": 4000.0", "\"slow_us\": 7000.0"));
        assert!(compare(&base(), &cur, 2.0).unwrap().regressions().is_empty(), "1.75x < 2x");
        assert_eq!(compare(&base(), &cur, 1.5).unwrap().regressions().len(), 1, "1.75x > 1.5x");
    }
}

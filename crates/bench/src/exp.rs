//! Shared experiment machinery: arm runners (parallel over seeds),
//! aggregation, and the paper's summary statistics.

use llamatune::pipeline::SearchSpaceAdapter;
use llamatune::report::{final_improvement_pct, time_to_optimal};
use llamatune::session::{run_session, EvalResult, SessionHistory, SessionOptions};
use llamatune_math::Summary;
use llamatune_space::ConfigSpace;
use llamatune_workloads::WorkloadRunner;

/// Experiment scale, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExpScale {
    pub seeds: u64,
    pub iterations: usize,
    pub quick: bool,
}

impl ExpScale {
    /// Reads `LLAMATUNE_SEEDS` / `LLAMATUNE_ITERS` / `LLAMATUNE_QUICK`.
    pub fn from_env() -> Self {
        let quick = std::env::var("LLAMATUNE_QUICK").is_ok_and(|v| v == "1");
        let seeds = std::env::var("LLAMATUNE_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 3 } else { 5 });
        let iterations = std::env::var("LLAMATUNE_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 50 } else { 100 });
        ExpScale { seeds, iterations, quick }
    }
}

pub use llamatune_optim::OptimizerKind;

/// All sessions of one experiment arm (one per seed).
#[derive(Debug, Clone)]
pub struct ArmResult {
    pub label: String,
    pub histories: Vec<SessionHistory>,
}

impl ArmResult {
    /// Best final score per seed.
    pub fn final_bests(&self) -> Vec<f64> {
        self.histories.iter().filter_map(SessionHistory::best_score).collect()
    }

    /// Mean final best across seeds.
    pub fn mean_final_best(&self) -> f64 {
        llamatune_math::mean(&self.final_bests())
    }

    /// Mean best-so-far curve across seeds.
    pub fn mean_curve(&self) -> Vec<f64> {
        aggregate_curves(&self.histories)
    }
}

/// Runs one tuning arm: `seeds` sessions of `iterations` each, in parallel
/// across seeds. The `adapter_for` and `optimizer_for` factories receive
/// the seed so that projections and optimizers vary per session (the
/// paper repeats each experiment "five times with different random seeds").
pub fn run_tuning_arm(
    label: &str,
    runner: &WorkloadRunner,
    tuned_space: &ConfigSpace,
    adapter_for: impl Fn(u64) -> Box<dyn SearchSpaceAdapter> + Sync,
    optimizer: OptimizerKind,
    scale: ExpScale,
) -> ArmResult {
    let mut histories: Vec<Option<SessionHistory>> = (0..scale.seeds).map(|_| None).collect();
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get()).min(8);
    let chunk = histories.len().div_ceil(threads);

    crossbeam::thread::scope(|scope| {
        for (t, slot_chunk) in histories.chunks_mut(chunk).enumerate() {
            let adapter_for = &adapter_for;
            scope.spawn(move |_| {
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let seed = (t * chunk + off) as u64;
                    let adapter = adapter_for(seed);
                    let opt = optimizer.build(adapter.optimizer_spec(), seed ^ 0x0BB5);
                    let opts = SessionOptions {
                        iterations: scale.iterations,
                        n_init: 10.min(scale.iterations / 2).max(1),
                        seed,
                        ..Default::default()
                    };
                    let objective = |cfg: &llamatune_space::Config| {
                        let out = runner.evaluate(tuned_space, cfg, seed ^ 0x5EED);
                        EvalResult {
                            score: out.score,
                            metrics: out.result.metrics,
                            ..Default::default()
                        }
                    };
                    *slot = Some(run_session(adapter.as_ref(), opt, objective, &opts));
                }
            });
        }
    })
    .expect("experiment threads");

    ArmResult {
        label: label.to_string(),
        histories: histories.into_iter().map(|h| h.expect("session ran")).collect(),
    }
}

/// Mean best-so-far curve across sessions (curves may differ in length
/// when early stopping fires; shorter curves extend with their last value).
pub fn aggregate_curves(histories: &[SessionHistory]) -> Vec<f64> {
    let len = histories.iter().map(|h| h.best_curve.len()).max().unwrap_or(0);
    let mut out = vec![0.0; len];
    for h in histories {
        for (i, slot) in out.iter_mut().enumerate() {
            let v = h.best_curve.get(i).or(h.best_curve.last()).copied().unwrap_or(0.0);
            *slot += v;
        }
    }
    for v in out.iter_mut() {
        *v /= histories.len().max(1) as f64;
    }
    out
}

/// One row of a Table 5/6/7/8/9-style comparison.
#[derive(Debug, Clone)]
pub struct PairedRow {
    pub workload: String,
    /// Final-improvement % of candidate over baseline: mean and CI.
    pub improvement: Summary,
    /// Time-to-optimal speedup (candidate vs baseline-final): mean and CI,
    /// plus the candidate iteration at which the mean curve catches up.
    pub speedup: Summary,
    pub catch_up_iter: Option<usize>,
}

/// Builds the paired comparison row between a baseline arm and a candidate
/// arm, seed-by-seed (matching seeds are paired).
pub fn paired_rows(workload: &str, baseline: &ArmResult, candidate: &ArmResult) -> PairedRow {
    let base_bests = baseline.final_bests();
    let cand_bests = candidate.final_bests();
    let base_mean_final = llamatune_math::mean(&base_bests);

    let improvements: Vec<f64> =
        cand_bests.iter().zip(&base_bests).map(|(c, b)| final_improvement_pct(*b, *c)).collect();

    let total_iters = baseline
        .histories
        .iter()
        .map(|h| h.best_curve.len().saturating_sub(1))
        .max()
        .unwrap_or(0)
        .max(1);
    let speedups: Vec<f64> = candidate
        .histories
        .iter()
        .map(|h| {
            // Skip the iteration-0 default entry.
            match time_to_optimal(&h.best_curve[1..], base_mean_final) {
                Some(iter) => total_iters as f64 / iter as f64,
                None => 1.0, // never caught up within the budget
            }
        })
        .collect();
    let catch_up_iter = time_to_optimal(&candidate.mean_curve()[1..], base_mean_final);

    PairedRow {
        workload: workload.to_string(),
        improvement: Summary::from_samples(&improvements),
        speedup: Summary::from_samples(&speedups),
        catch_up_iter,
    }
}

/// Convenience: summary of one arm's final bests.
pub fn arm_summary(arm: &ArmResult) -> Summary {
    Summary::from_samples(&arm.final_bests())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune::session::SessionHistory;

    fn history(curve: Vec<f64>) -> SessionHistory {
        SessionHistory {
            configs: Vec::new(),
            points: Vec::new(),
            scores: Vec::new(),
            raw_scores: Vec::new(),
            best_curve: curve,
            stopped_at: None,
            statuses: Vec::new(),
            attempts: Vec::new(),
            degradations: Vec::new(),
        }
    }

    #[test]
    fn aggregate_extends_short_curves() {
        let h1 = history(vec![1.0, 2.0, 3.0]);
        let h2 = history(vec![2.0, 4.0]);
        let mean = aggregate_curves(&[h1, h2]);
        assert_eq!(mean, vec![1.5, 3.0, 3.5]);
    }

    #[test]
    fn paired_rows_compute_improvement_and_speedup() {
        // Baseline reaches 100 at the end of 10 iterations.
        let base = ArmResult {
            label: "base".into(),
            histories: vec![history(
                std::iter::once(0.0).chain((1..=10).map(|i| 10.0 * i as f64)).collect(),
            )],
        };
        // Candidate hits 110 from iteration 2 onward.
        let cand = ArmResult {
            label: "cand".into(),
            histories: vec![history(
                std::iter::once(0.0)
                    .chain((1..=10).map(|i| if i >= 2 { 110.0 } else { 50.0 }))
                    .collect(),
            )],
        };
        let row = paired_rows("test", &base, &cand);
        assert!((row.improvement.mean - 10.0).abs() < 1e-9);
        assert_eq!(row.catch_up_iter, Some(2));
        assert!((row.speedup.mean - 5.0).abs() < 1e-9, "10 iters / 2 = 5x");
    }

    #[test]
    fn never_catching_up_counts_as_1x() {
        let base =
            ArmResult { label: "base".into(), histories: vec![history(vec![0.0, 100.0, 100.0])] };
        let cand =
            ArmResult { label: "cand".into(), histories: vec![history(vec![0.0, 50.0, 60.0])] };
        let row = paired_rows("t", &base, &cand);
        assert_eq!(row.speedup.mean, 1.0);
        assert_eq!(row.catch_up_iter, None);
        assert!(row.improvement.mean < 0.0);
    }

    #[test]
    fn scale_from_env_defaults() {
        // Without env vars: paper scale.
        std::env::remove_var("LLAMATUNE_SEEDS");
        std::env::remove_var("LLAMATUNE_ITERS");
        std::env::remove_var("LLAMATUNE_QUICK");
        let s = ExpScale::from_env();
        assert_eq!(s.seeds, 5);
        assert_eq!(s.iterations, 100);
        assert!(!s.quick);
    }
}

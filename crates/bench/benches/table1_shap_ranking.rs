//! Table 1: SHAP's top-8 knobs for YCSB-A vs the hand-picked expert set
//! (Section 2.3 methodology: LHS-evaluate configurations, fit a random
//! forest, rank knobs by mean |SHAP|).
use llamatune_analysis::{rank_knobs, shap_importance};
use llamatune_bench::{print_header, ExpScale};
use llamatune_math::latin_hypercube;
use llamatune_optim::{ParamKind, RandomForest, RandomForestConfig, SearchSpec};
use llamatune_space::catalog::{postgres_v9_6, HAND_PICKED_TOP8_YCSB_A};
use llamatune_space::Domain;
use llamatune_workloads::{ycsb_a, WorkloadRunner};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = ExpScale::from_env();
    // The paper evaluates 2,500 LHS configurations.
    let n = if scale.quick { 300 } else { 2_500 };
    let catalog = postgres_v9_6();
    let runner = WorkloadRunner::new(ycsb_a(), catalog.clone());
    print_header(
        "Table 1: SHAP top-8 knobs vs hand-picked (YCSB-A)",
        &format!("{n} LHS samples over 90 knobs; RF + path-dependent TreeSHAP"),
    );

    let spec = SearchSpec {
        params: catalog
            .knobs()
            .iter()
            .map(|k| match &k.domain {
                Domain::Categorical { choices } => ParamKind::Categorical { n: choices.len() },
                _ => ParamKind::Continuous { buckets: None },
            })
            .collect(),
    };
    let mut rng = StdRng::seed_from_u64(1);
    let points = latin_hypercube(n, catalog.len(), &mut rng);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut worst = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        let cfg = catalog.config_from_unit(p);
        let out = runner.evaluate(&catalog, &cfg, i as u64);
        let y = match out.score {
            Some(v) => {
                worst = worst.min(v);
                v
            }
            None => worst.min(1_000.0) / 4.0, // crash penalty
        };
        xs.push(p.clone());
        ys.push(y);
    }
    let forest = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 7);
    let importance = shap_importance(&forest, &xs[..xs.len().min(400)]);
    let names: Vec<&str> = catalog.knobs().iter().map(|k| k.name).collect();
    let ranked = rank_knobs(&names, &importance);

    println!("{:<40} Hand-picked (top-8)", "SHAP (top-8)");
    let mut hand: Vec<&str> = HAND_PICKED_TOP8_YCSB_A.to_vec();
    hand.sort_unstable();
    let mut shap_top: Vec<&str> = ranked.iter().take(8).map(|(n, _)| *n).collect();
    shap_top.sort_unstable();
    for i in 0..8 {
        println!("{:<40} {}", shap_top[i], hand[i]);
    }
    println!("\nFull top-16 SHAP ranking (mean |SHAP| in tps):");
    for (name, imp) in ranked.iter().take(16) {
        println!("  {name:<36} {imp:>10.1}");
    }
    let overlap = shap_top.iter().filter(|n| hand.contains(n)).count();
    println!("\nOverlap between SHAP top-8 and hand-picked: {overlap}/8");
}

//! Figure 4: effect of backend_flush_after's special value "0" on YCSB-B
//! throughput (single-knob sweep, defaults elsewhere).
use llamatune_bench::print_header;
use llamatune_space::catalog::postgres_v9_6;
use llamatune_space::KnobValue;
use llamatune_workloads::{ycsb_b, WorkloadRunner};

fn main() {
    let catalog = postgres_v9_6();
    let runner = WorkloadRunner::new(ycsb_b(), catalog.clone());
    let idx = catalog.index_of("backend_flush_after").unwrap();
    print_header(
        "Figure 4: Effect on perf. of special value \"0\" (backend_flush_after, YCSB-B)",
        "value 0 disables forced writeback entirely; small values defeat write coalescing",
    );
    println!("{:>8} {:>14}", "value", "tput (tps)");
    for v in [0i64, 1, 2, 5, 10, 20, 40, 80, 120, 160, 200, 256] {
        let mut tputs = Vec::new();
        for seed in 0..3 {
            let mut cfg = catalog.default_config();
            cfg.values_mut()[idx] = KnobValue::Int(v);
            tputs.push(runner.evaluate(&catalog, &cfg, seed).score.unwrap_or(0.0));
        }
        let mark = if v == 0 { "  <- special value (writeback disabled)" } else { "" };
        println!("{v:>8} {:>14.0}{mark}", llamatune_math::mean(&tputs));
    }
}

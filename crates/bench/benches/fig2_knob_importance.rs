//! Figure 2: (a) tuning SHAP's top-8 knobs vs hand-picked top-8 vs all 90
//! knobs on YCSB-A; (b) transferring YCSB-A's top-8 sets to TPC-C.
use llamatune::pipeline::IdentityAdapter;
use llamatune_analysis::{rank_knobs, shap_importance};
use llamatune_bench::{print_curve_table, print_header, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_math::latin_hypercube;
use llamatune_optim::{ParamKind, RandomForest, RandomForestConfig, SearchSpec};
use llamatune_space::catalog::{postgres_v9_6, HAND_PICKED_TOP8_YCSB_A};
use llamatune_space::Domain;
use llamatune_workloads::{tpcc, ycsb_a, WorkloadRunner};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ranks knobs for YCSB-A with SHAP over an LHS sample (small budget — the
/// unreliability of cheap rankings is part of the point of this figure).
fn shap_top8(catalog: &llamatune_space::ConfigSpace, quick: bool) -> Vec<&'static str> {
    let n = if quick { 200 } else { 800 };
    let runner = WorkloadRunner::new(ycsb_a(), catalog.clone());
    let spec = SearchSpec {
        params: catalog
            .knobs()
            .iter()
            .map(|k| match &k.domain {
                Domain::Categorical { choices } => ParamKind::Categorical { n: choices.len() },
                _ => ParamKind::Continuous { buckets: None },
            })
            .collect(),
    };
    let mut rng = StdRng::seed_from_u64(2);
    let points = latin_hypercube(n, catalog.len(), &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut worst = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        let cfg = catalog.config_from_unit(p);
        let out = runner.evaluate(catalog, &cfg, i as u64);
        let y = match out.score {
            Some(v) => {
                worst = worst.min(v);
                v
            }
            None => worst.min(1_000.0) / 4.0,
        };
        xs.push(p.clone());
        ys.push(y);
    }
    let forest = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 3);
    let importance = shap_importance(&forest, &xs[..xs.len().min(300)]);
    let names: Vec<&str> = catalog.knobs().iter().map(|k| k.name).collect();
    rank_knobs(&names, &importance)
        .into_iter()
        .take(8)
        .map(|(n, _)| catalog.knob(n).unwrap().name)
        .collect()
}

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    let shap8 = shap_top8(&catalog, scale.quick);
    println!("SHAP top-8 for YCSB-A: {shap8:?}");

    for (wl_label, spec) in
        [("YCSB-A (Fig 2a)", ycsb_a()), ("TPC-C with YCSB-A's top-8 (Fig 2b)", tpcc())]
    {
        let runner = WorkloadRunner::new(spec, catalog.clone());
        print_header(
            &format!("Figure 2: knob-subset tuning on {wl_label}"),
            &format!("{} seeds x {} iterations (SMAC)", scale.seeds, scale.iterations),
        );
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        let hand: Vec<&str> = HAND_PICKED_TOP8_YCSB_A.to_vec();
        let arms: [(&str, Option<&[&str]>); 3] =
            [("All knobs", None), ("SHAP top-8", Some(&shap8)), ("Hand-picked top-8", Some(&hand))];
        for (label, subset) in arms {
            let tuned_space = match subset {
                None => catalog.clone(),
                Some(names) => catalog.subspace(names),
            };
            let arm = run_tuning_arm(
                label,
                &runner,
                &tuned_space,
                |_| Box::new(IdentityAdapter::new(&tuned_space)),
                OptimizerKind::Smac,
                scale,
            );
            labels.push(label.to_string());
            curves.push(arm.mean_curve());
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        print_curve_table(&label_refs, &curves, 10);
    }
}

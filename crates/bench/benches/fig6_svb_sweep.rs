//! Figure 6: special-value biasing sweep (0/5/10/20/30%) on YCSB-A and
//! YCSB-B, applied to the full knob space with SMAC (Section 4.1 setup).
use llamatune::pipeline::IdentityAdapter;
use llamatune_bench::{print_curve_table, print_header, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    for wl in ["ycsb_a", "ycsb_b"] {
        let runner = WorkloadRunner::new(workload_by_name(wl).unwrap(), catalog.clone());
        print_header(
            &format!("Figure 6: special value biasing sweep on {wl} (SMAC, full space)"),
            &format!("{} seeds x {} iterations", scale.seeds, scale.iterations),
        );
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        for bias in [None, Some(0.05), Some(0.10), Some(0.20), Some(0.30)] {
            let label = match bias {
                None => "No SVB".to_string(),
                Some(p) => format!("SVB={}%", (p * 100.0) as u32),
            };
            let arm = run_tuning_arm(
                &label,
                &runner,
                &catalog,
                |_| Box::new(IdentityAdapter::with_options(&catalog, bias, None)),
                OptimizerKind::Smac,
                scale,
            );
            labels.push(label);
            curves.push(arm.mean_curve());
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        print_curve_table(&label_refs, &curves, 10);
    }
}

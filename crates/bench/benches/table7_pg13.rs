//! Table 7: LlamaTune(SMAC) vs SMAC on the newer PostgreSQL v13.6 catalog
//! (112 knobs, 23 hybrid), same hyperparameters as v9.6.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune_bench::{
    paired_rows, print_header, print_row, run_tuning_arm, ExpScale, OptimizerKind,
};
use llamatune_space::catalog::postgres_v13_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner, PAPER_WORKLOAD_NAMES};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v13_6();
    print_header(
        "Table 7: LlamaTune + SMAC on PostgreSQL v13.6 (112 knobs, 23 hybrid)",
        &format!(
            "{} seeds x {} iterations; same LlamaTune hyperparameters as v9.6",
            scale.seeds, scale.iterations
        ),
    );
    println!(
        "{:<18} {:>9} {:<19} {:>8} {:<14} [5%,95%] CI",
        "Workload", "FinalImp", " [5%,95%] CI", "Speedup", "(catch-up)"
    );
    for name in PAPER_WORKLOAD_NAMES {
        let spec = workload_by_name(name).unwrap();
        let runner = WorkloadRunner::new(spec, catalog.clone());
        let base = run_tuning_arm(
            "SMAC",
            &runner,
            &catalog,
            |_| Box::new(IdentityAdapter::new(&catalog)),
            OptimizerKind::Smac,
            scale,
        );
        let llama = run_tuning_arm(
            "LlamaTune (SMAC)",
            &runner,
            &catalog,
            |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
            OptimizerKind::Smac,
            scale,
        );
        print_row(&paired_rows(name, &base, &llama), "throughput");
    }
}

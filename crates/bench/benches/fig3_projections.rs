//! Figure 3: HeSBO vs REMBO low-dimensional projections (d = 8, 16, 24)
//! against the high-dimensional SMAC baseline on YCSB-A.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline, ProjectionKind};
use llamatune_bench::{print_curve_table, print_header, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{ycsb_a, WorkloadRunner};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    let runner = WorkloadRunner::new(ycsb_a(), catalog.clone());
    print_header(
        "Figure 3: Best throughput on YCSB-A with REMBO/HeSBO projections (SMAC)",
        &format!(
            "{} seeds x {} iterations; projection only (no SVB / bucketization)",
            scale.seeds, scale.iterations
        ),
    );

    let mut labels: Vec<String> = vec!["High-Dim".into()];
    let mut curves = vec![run_tuning_arm(
        "High-Dim",
        &runner,
        &catalog,
        |_| Box::new(IdentityAdapter::new(&catalog)),
        OptimizerKind::Smac,
        scale,
    )
    .mean_curve()];

    for kind in [ProjectionKind::Hesbo, ProjectionKind::Rembo] {
        for d in [8usize, 16, 24] {
            let name =
                format!("{}-{d}", if kind == ProjectionKind::Hesbo { "HeSBO" } else { "REMBO" });
            let cfg = LlamaTuneConfig {
                target_dim: d,
                projection: kind,
                special_value_bias: None,
                bucket_count: None,
            };
            let arm = run_tuning_arm(
                &name,
                &runner,
                &catalog,
                |seed| Box::new(LlamaTunePipeline::new(&catalog, &cfg, seed)),
                OptimizerKind::Smac,
                scale,
            );
            labels.push(name);
            curves.push(arm.mean_curve());
        }
    }
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    print_curve_table(&label_refs, &curves, 10);
    println!("\nFinal bests:");
    for (l, c) in labels.iter().zip(&curves) {
        println!("  {l:<10} {:.0} tps", c.last().unwrap());
    }
}

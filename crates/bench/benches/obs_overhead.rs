//! Observability overhead: what the tracing seam costs a run that does
//! not trace, and what live recording costs a run that does.
//!
//! Two measurements:
//!
//! * **Span site** — one guarded instrumentation site (`enabled()`
//!   check through `Arc<dyn Tracer>`; build + record the event only
//!   when live) hammered in a tight loop. The [`NoopTracer`] row is the
//!   price every untraced hot path pays per site — one virtual call
//!   returning a constant, the event never built. The
//!   [`RecordingTracer`] row adds event construction and the locked
//!   append.
//! * **Campaign** — one small in-memory campaign, untraced vs traced:
//!   the end-to-end overhead, which the per-site numbers predict should
//!   be lost in evaluation noise.
//!
//! Results are printed and recorded in `BENCH_obs.json` (workspace
//! root) for the CI bench gate:
//!
//!     cargo bench -p llamatune-bench --bench obs_overhead
//!
//! `LLAMATUNE_QUICK=1` shrinks call counts and repetitions.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_bench::print_header;
use llamatune_engine::RunOptions;
use llamatune_obs::trace::{NoopTracer, RecordingTracer, TraceEvent, Tracer};
use llamatune_runtime::{AdapterKind, Campaign, CampaignOptions, CampaignSpec, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One instrumentation site, shaped exactly like the session loop's:
/// guard on `enabled()`, build the event only when someone listens.
#[inline(never)]
fn span_site(tracer: &Arc<dyn Tracer>, iteration: u64) {
    if tracer.enabled() {
        tracer.record(
            TraceEvent::new("bench", "trial").field("iteration", iteration).field("score", 1.0),
        );
    }
}

struct SpanSiteRow {
    tracer: &'static str,
    n: usize,
    total_us: f64,
    per_call_ns: f64,
}

fn span_site_row(tracer_name: &'static str, n: usize, reps: usize) -> SpanSiteRow {
    let mut times = Vec::new();
    for _ in 0..reps {
        // A fresh recorder per rep: recording costs must include the
        // growing-vector reality, not an ever-warmer allocation.
        let tracer: Arc<dyn Tracer> = match tracer_name {
            "noop" => Arc::new(NoopTracer),
            _ => Arc::new(RecordingTracer::new()),
        };
        let t = Instant::now();
        for i in 0..n {
            span_site(&tracer, i as u64);
        }
        std::hint::black_box(&tracer);
        times.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total_us = median_us(times);
    SpanSiteRow { tracer: tracer_name, n, total_us, per_call_ns: total_us * 1e3 / n as f64 }
}

struct CampaignRow {
    tracer: &'static str,
    sessions: usize,
    total_us: f64,
}

fn campaign_row(tracer_name: &'static str, reps: usize) -> CampaignRow {
    let catalog = postgres_v9_6();
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into(), "ycsb_f".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1],
    };
    let sessions = spec.workloads.len();
    let mut times = Vec::new();
    for _ in 0..reps {
        let tracer: Arc<dyn Tracer> = match tracer_name {
            "noop" => Arc::new(NoopTracer),
            _ => Arc::new(RecordingTracer::new()),
        };
        let opts = CampaignOptions {
            session: SessionOptions { iterations: 6, n_init: 2, ..Default::default() },
            batch_size: 2,
            trial_workers: 2,
            session_parallelism: 1,
            run_options: Some(RunOptions {
                duration_s: 0.02,
                warmup_s: 0.005,
                max_txns: 5_000,
                ..Default::default()
            }),
            tracer,
            ..Default::default()
        };
        let t = Instant::now();
        let results = Campaign::new(catalog.clone(), spec.clone(), opts).run();
        times.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(results.len(), sessions);
    }
    CampaignRow { tracer: tracer_name, sessions, total_us: median_us(times) }
}

fn main() {
    let quick = std::env::var("LLAMATUNE_QUICK").is_ok_and(|v| v == "1");
    let (noop_n, rec_n, reps, campaign_reps): (usize, usize, usize, usize) =
        if quick { (100_000, 10_000, 3, 1) } else { (2_000_000, 200_000, 5, 3) };

    print_header(
        "Observability overhead",
        &format!(
            "guarded span site (noop vs recording) and end-to-end campaign; \
             medians over {reps} reps"
        ),
    );

    let span_rows =
        vec![span_site_row("noop", noop_n, reps), span_site_row("recording", rec_n, reps)];
    println!("\nSpan site (one guarded instrumentation point):");
    println!("{:>10} {:>10} {:>12} {:>12}", "tracer", "calls", "total", "per call");
    for r in &span_rows {
        println!("{:>10} {:>10} {:>10.0}us {:>10.2}ns", r.tracer, r.n, r.total_us, r.per_call_ns);
    }

    let campaign_rows =
        vec![campaign_row("noop", campaign_reps), campaign_row("recording", campaign_reps)];
    println!("\nCampaign (2 sessions, 6 iterations, in-memory):");
    println!("{:>10} {:>10} {:>12}", "tracer", "sessions", "total");
    for r in &campaign_rows {
        println!("{:>10} {:>10} {:>10.0}us", r.tracer, r.sessions, r.total_us);
    }
    let (noop, traced) = (campaign_rows[0].total_us, campaign_rows[1].total_us);
    println!(
        "tracing overhead end to end: {:+.1}%",
        if noop > 0.0 { (traced - noop) / noop * 100.0 } else { 0.0 }
    );

    // The regression artifact.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"config\": {{\"quick\": {quick}, \"reps\": {reps}}},\n"));
    json.push_str("  \"span_site\": [\n");
    for (i, r) in span_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tracer\": \"{}\", \"n\": {}, \"total_us\": {:.2}, \"per_call_ns\": {:.3}}}{}\n",
            r.tracer,
            r.n,
            r.total_us,
            r.per_call_ns,
            if i + 1 < span_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"campaign\": [\n");
    for (i, r) in campaign_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tracer\": \"{}\", \"sessions\": {}, \"total_us\": {:.2}}}{}\n",
            r.tracer,
            r.sessions,
            r.total_us,
            if i + 1 < campaign_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_obs.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_obs.json");
    f.write_all(json.as_bytes()).expect("write BENCH_obs.json");
    println!("\nrecorded {}", path.display());
}

//! Figure 11: ablation of LlamaTune's components on YCSB-A, YCSB-B, TPC-C:
//! SMAC baseline vs HeSBO-16 only vs +SVB vs the full pipeline.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline, ProjectionKind};
use llamatune_bench::{print_curve_table, print_header, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    let variants: [(&str, Option<LlamaTuneConfig>); 4] = [
        ("SMAC", None),
        (
            "Low-Dim",
            Some(LlamaTuneConfig {
                target_dim: 16,
                projection: ProjectionKind::Hesbo,
                special_value_bias: None,
                bucket_count: None,
            }),
        ),
        (
            "Low-Dim+SVB",
            Some(LlamaTuneConfig {
                target_dim: 16,
                projection: ProjectionKind::Hesbo,
                special_value_bias: Some(0.2),
                bucket_count: None,
            }),
        ),
        ("LlamaTune", Some(LlamaTuneConfig::default())),
    ];
    for wl in ["ycsb_a", "ycsb_b", "tpcc"] {
        let runner = WorkloadRunner::new(workload_by_name(wl).unwrap(), catalog.clone());
        print_header(
            &format!("Figure 11: ablation study on {wl}"),
            &format!("{} seeds x {} iterations (SMAC)", scale.seeds, scale.iterations),
        );
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        for (label, cfg) in &variants {
            let arm = run_tuning_arm(
                label,
                &runner,
                &catalog,
                |seed| match cfg {
                    None => Box::new(IdentityAdapter::new(&catalog)),
                    Some(c) => Box::new(LlamaTunePipeline::new(&catalog, c, seed)),
                },
                OptimizerKind::Smac,
                scale,
            );
            labels.push(label.to_string());
            curves.push(arm.mean_curve());
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        print_curve_table(&label_refs, &curves, 10);
    }
}

//! Table 5 + Figures 9 and 10: LlamaTune (SMAC) vs vanilla SMAC, optimizing
//! throughput on all six workloads.

use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune::report::convergence_map;
use llamatune_bench::{
    paired_rows, print_curve_table, print_header, print_row, run_tuning_arm, ExpScale,
    OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner, PAPER_WORKLOAD_NAMES};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    print_header(
        "Table 5: Perf. gains of LlamaTune when coupled with SMAC",
        &format!(
            "{} seeds x {} iterations; throughput objective; PostgreSQL v9.6 (simulated)",
            scale.seeds, scale.iterations
        ),
    );
    println!(
        "{:<18} {:>9} {:<19} {:>8} {:<14} [5%,95%] CI",
        "Workload", "FinalImp", " [5%,95%] CI", "Speedup", "(catch-up)"
    );

    let mut curves: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for name in PAPER_WORKLOAD_NAMES {
        let spec = workload_by_name(name).expect("workload");
        let runner = WorkloadRunner::new(spec, catalog.clone());
        let base = run_tuning_arm(
            "SMAC",
            &runner,
            &catalog,
            |_| Box::new(IdentityAdapter::new(&catalog)),
            OptimizerKind::Smac,
            scale,
        );
        let llama = run_tuning_arm(
            "LlamaTune (SMAC)",
            &runner,
            &catalog,
            |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
            OptimizerKind::Smac,
            scale,
        );
        let row = paired_rows(name, &base, &llama);
        print_row(&row, "throughput");
        curves.push((name.to_string(), base.mean_curve(), llama.mean_curve()));
    }

    print_header(
        "Figure 9: Best throughput convergence (mean over seeds)",
        "Columns: vanilla SMAC vs LlamaTune(SMAC); YCSB-A, TPC-C, Twitter",
    );
    for name in ["ycsb_a", "tpcc", "twitter"] {
        let (_, base, llama) = curves.iter().find(|(n, _, _)| n == name).unwrap();
        println!("\n--- {name} ---");
        print_curve_table(&["SMAC", "LlamaTune"], &[base.clone(), llama.clone()], 10);
    }

    print_header(
        "Figure 10: LlamaTune convergence gains vs SMAC",
        "For each LlamaTune iteration: earliest SMAC iteration with the same best perf \
         ('-' = SMAC never reaches it; diamond = LlamaTune surpasses SMAC's final best)",
    );
    print!("{:>6}", "iter");
    for (name, _, _) in &curves {
        print!(" {name:>18}");
    }
    println!();
    let maps: Vec<Vec<Option<usize>>> =
        curves.iter().map(|(_, base, llama)| convergence_map(&llama[1..], &base[1..])).collect();
    let len = maps.iter().map(Vec::len).max().unwrap_or(0);
    let mut i = 0;
    while i < len {
        print!("{:>6}", i + 1);
        for m in &maps {
            match m.get(i) {
                Some(Some(b)) => print!(" {b:>18}"),
                _ => print!(" {:>18}", "-"),
            }
        }
        println!();
        i += 10;
    }
}

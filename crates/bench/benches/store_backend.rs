//! Store backend latency: what checkpointing costs through each
//! [`StoreBackend`], single-writer and as a fleet.
//!
//! Four measurements, on both backends (`local` directory with real
//! fsyncs, in-process `object` store emulating S3 semantics):
//!
//! * **append** — N trial records through one writer, tiny-ish segments
//!   so rotation's manifest commits (rename-commit vs CAS-commit) are
//!   inside the measured window;
//! * **open** — recovery time: reopen the N-record store and replay it;
//! * **compact** — rewrite the N-record store deduplicated;
//! * **fleet append** — 4 shared writers appending N records total into
//!   one store, racing their rotations through the manifest CAS loop.
//!
//! Results are printed as a table and recorded in `BENCH_store.json`
//! (at the workspace root) — the baseline the CI bench-regression gate
//! (`bench_gate`) compares freshly generated artifacts against:
//!
//!     cargo bench -p llamatune-bench --bench store_backend
//!
//! `LLAMATUNE_QUICK=1` shrinks record counts to smoke-test scale.

use llamatune_bench::print_header;
use llamatune_space::KnobValue;
use llamatune_store::{
    LocalDirBackend, ObjectStoreBackend, StoreBackend, StoreOptions, StoredTrial, TrialStore,
};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_store_bench")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A realistic record: 16-dim point (the LlamaTune projected space),
/// a handful of knobs, a dozen metrics.
fn trial(session: &str, iteration: usize) -> StoredTrial {
    StoredTrial {
        session: session.to_string(),
        iteration,
        raw_score: Some(1234.5 + iteration as f64),
        score: 1234.5 + iteration as f64,
        point: (0..16).map(|d| (iteration * 31 + d) as f64 / 1e4).collect(),
        config: vec![
            KnobValue::Int(16_384 + iteration as i64),
            KnobValue::Float(0.25),
            KnobValue::Cat(2),
            KnobValue::Int(8),
        ],
        metrics: (0..12).map(|m| (iteration + m) as f64).collect(),
        status: llamatune::session::TrialStatus::Ok,
        attempts: 1,
    }
}

struct Backends {
    local_dir: PathBuf,
}

impl Backends {
    fn make(&self, kind: &str) -> Arc<dyn StoreBackend> {
        match kind {
            "local" => {
                let _ = std::fs::remove_dir_all(&self.local_dir);
                Arc::new(LocalDirBackend::create(&self.local_dir).unwrap())
            }
            "object" => Arc::new(ObjectStoreBackend::default()),
            other => panic!("unknown backend {other}"),
        }
    }
}

struct Row {
    backend: &'static str,
    records: usize,
    append_total_us: f64,
    append_per_record_us: f64,
    open_us: f64,
    compact_us: f64,
}

fn single_writer_row(kind: &'static str, records: usize, backends: &Backends) -> Row {
    let be = backends.make(kind);
    let opts = StoreOptions { segment_records: 256 };

    let store = TrialStore::open_backend(be.clone(), opts.clone()).unwrap();
    let t = Instant::now();
    for i in 0..records {
        store.append_trial(&trial("bench", i)).unwrap();
    }
    store.sync().unwrap();
    let append_total_us = t.elapsed().as_secs_f64() * 1e6;
    drop(store);

    let t = Instant::now();
    let store = TrialStore::open_backend(be.clone(), opts.clone()).unwrap();
    let open_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(store.trial_count(), records);

    let t = Instant::now();
    store.compact().unwrap();
    let compact_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(store.trial_count(), records);

    Row {
        backend: kind,
        records,
        append_total_us,
        append_per_record_us: append_total_us / records as f64,
        open_us,
        compact_us,
    }
}

struct FleetRow {
    backend: &'static str,
    writers: usize,
    records: usize,
    total_us: f64,
    per_record_us: f64,
}

fn fleet_row(kind: &'static str, writers: usize, records: usize, backends: &Backends) -> FleetRow {
    let be = backends.make(kind);
    let per_writer = records / writers;
    let t = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let be = be.clone();
            scope.spawn(move || {
                let store = TrialStore::open_shared(
                    be,
                    &format!("w{w}"),
                    StoreOptions { segment_records: 64 },
                )
                .unwrap();
                let session = format!("bench_w{w}");
                for i in 0..per_writer {
                    store.append_trial(&trial(&session, i)).unwrap();
                }
                store.sync().unwrap();
            });
        }
    });
    let total_us = t.elapsed().as_secs_f64() * 1e6;
    let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
    assert_eq!(reader.trial_count(), per_writer * writers, "no committed trial lost");
    FleetRow {
        backend: kind,
        writers,
        records: per_writer * writers,
        total_us,
        per_record_us: total_us / (per_writer * writers) as f64,
    }
}

fn main() {
    let quick = std::env::var("LLAMATUNE_QUICK").is_ok_and(|v| v == "1");
    let records = if quick { 600 } else { 4000 };
    let writers = 4;

    print_header(
        "Store backends",
        &format!(
            "checkpoint I/O through the StoreBackend seam; {records} records, \
             rotation every 256 (fleet: 64), {writers}-writer fleet"
        ),
    );

    let backends = Backends { local_dir: tmp_dir("single") };
    let rows: Vec<Row> =
        ["local", "object"].into_iter().map(|k| single_writer_row(k, records, &backends)).collect();
    println!("\nSingle writer (append + recovery + compaction):");
    println!(
        "{:>8} {:>8} {:>14} {:>12} {:>12} {:>12}",
        "backend", "records", "append total", "per record", "open", "compact"
    );
    for r in &rows {
        println!(
            "{:>8} {:>8} {:>12.0}us {:>10.2}us {:>10.0}us {:>10.0}us",
            r.backend,
            r.records,
            r.append_total_us,
            r.append_per_record_us,
            r.open_us,
            r.compact_us
        );
    }

    let fleet_backends = Backends { local_dir: tmp_dir("fleet") };
    let fleet_rows: Vec<FleetRow> = ["local", "object"]
        .into_iter()
        .map(|k| fleet_row(k, writers, records, &fleet_backends))
        .collect();
    println!("\nFleet ({writers} shared writers, one store, racing CAS rotations):");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>12}",
        "backend", "writers", "records", "total", "per record"
    );
    for r in &fleet_rows {
        println!(
            "{:>8} {:>8} {:>8} {:>12.0}us {:>10.2}us",
            r.backend, r.writers, r.records, r.total_us, r.per_record_us
        );
    }

    // The regression artifact.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"records\": {records}, \"segment_records\": 256, \
         \"writers\": {writers}}},\n"
    ));
    json.push_str("  \"single_writer\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"records\": {}, \"append_total_us\": {:.2}, \
             \"append_per_record_us\": {:.3}, \"open_us\": {:.2}, \"compact_us\": {:.2}}}{}\n",
            r.backend,
            r.records,
            r.append_total_us,
            r.append_per_record_us,
            r.open_us,
            r.compact_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"fleet_append\": [\n");
    for (i, r) in fleet_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"writers\": {}, \"records\": {}, \
             \"total_us\": {:.2}, \"per_record_us\": {:.3}}}{}\n",
            r.backend,
            r.writers,
            r.records,
            r.total_us,
            r.per_record_us,
            if i + 1 < fleet_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    // Anchor the artifact at the workspace root regardless of the
    // working directory cargo launches the bench from.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_store.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_store.json");
    f.write_all(json.as_bytes()).expect("write BENCH_store.json");
    println!("\nrecorded {}", path.display());

    let _ = std::fs::remove_dir_all(tmp_dir("single").parent().unwrap());
}

//! Table 4: workload properties (tables, columns, read-only fraction).
use llamatune_bench::print_header;
use llamatune_workloads::all_workloads;

fn main() {
    print_header("Table 4: Workload Properties", "");
    println!(
        "{:<20} {:>10} {:>10} {:>9} {:>10}",
        "Workload", "# Tables", "# Columns", "RO Txns", "DB size"
    );
    for spec in all_workloads() {
        let columns: u32 = spec.tables.iter().map(|t| t.columns).sum();
        println!(
            "{:<20} {:>10} {:>10} {:>8.0}% {:>8.1}GB",
            spec.name,
            spec.tables.len(),
            columns,
            spec.read_only_fraction() * 100.0,
            spec.total_bytes() as f64 / (1u64 << 30) as f64,
        );
    }
}

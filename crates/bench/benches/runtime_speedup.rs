//! Runtime speedup: wall-clock of a multi-workload tuning campaign under
//! the parallel trial-execution runtime at 1/2/4/8 workers, against the
//! strictly sequential session loop, plus the evaluation-cache ablation
//! on a coarsely bucketized session.
//!
//! Scores are identical at every worker count (see the runtime crate's
//! determinism test); only wall-clock changes. Speedup saturates at the
//! machine's core count — the printed `available_parallelism` line tells
//! you what ceiling to expect.

use llamatune::pipeline::{LlamaTuneConfig, LlamaTunePipeline, SearchSpaceAdapter};
use llamatune::session::{run_session, EvalResult, SessionOptions};
use llamatune_bench::{print_header, print_table};
use llamatune_engine::RunOptions;
use llamatune_runtime::{AdapterKind, Campaign, CampaignOptions, CampaignSpec, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner};
use std::time::Instant;

const WORKLOADS: [&str; 3] = ["ycsb_a", "tpcc", "ycsb_f"];
const ITERATIONS: usize = 24;
const SEEDS: [u64; 2] = [0, 1];
/// Fixed across every row: varying only the worker count keeps the
/// suggestion stream — and therefore the evaluated configurations —
/// identical, so the sweep measures parallelism, not batching effects.
const BATCH: usize = 8;

fn quick_run_options() -> RunOptions {
    RunOptions { duration_s: 0.3, warmup_s: 0.08, max_txns: 30_000, ..Default::default() }
}

fn campaign_spec() -> CampaignSpec {
    CampaignSpec {
        workloads: WORKLOADS.iter().map(|w| w.to_string()).collect(),
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: SEEDS.to_vec(),
    }
}

/// The paper's loop, verbatim: one trial at a time, one thread.
fn sequential_campaign(catalog: &llamatune_space::ConfigSpace) -> f64 {
    let t = Instant::now();
    for workload in WORKLOADS {
        for seed in SEEDS {
            let spec = workload_by_name(workload).expect("workload");
            let runner =
                WorkloadRunner::new(spec, catalog.clone()).with_options(quick_run_options());
            let pipe = LlamaTunePipeline::new(catalog, &LlamaTuneConfig::default(), seed);
            let opt = OptimizerKind::Smac.build(pipe.optimizer_spec(), seed);
            run_session(
                &pipe,
                opt,
                |cfg| {
                    let out = runner.evaluate(catalog, cfg, seed ^ 0x5EED);
                    EvalResult {
                        score: out.score,
                        metrics: out.result.metrics,
                        ..Default::default()
                    }
                },
                &SessionOptions { iterations: ITERATIONS, n_init: 10, seed, ..Default::default() },
            );
        }
    }
    t.elapsed().as_secs_f64()
}

fn parallel_campaign(catalog: &llamatune_space::ConfigSpace, workers: usize, cache: bool) -> f64 {
    let opts = CampaignOptions {
        session: SessionOptions { iterations: ITERATIONS, n_init: 10, ..Default::default() },
        batch_size: BATCH,
        trial_workers: workers,
        session_parallelism: 1,
        cache,
        run_options: Some(quick_run_options()),
        ..Default::default()
    };
    let campaign = Campaign::new(catalog.clone(), campaign_spec(), opts);
    let t = Instant::now();
    let results = campaign.run();
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(results.len(), WORKLOADS.len() * SEEDS.len());
    elapsed
}

fn main() {
    let catalog = postgres_v9_6();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    print_header(
        "Runtime speedup: parallel campaign vs sequential sessions",
        &format!(
            "{} workloads x {} seeds x {} iterations; available_parallelism = {cores}",
            WORKLOADS.len(),
            SEEDS.len(),
            ITERATIONS
        ),
    );

    let seq = sequential_campaign(&catalog);
    let mut rows = vec![vec![
        "sequential run_session".to_string(),
        format!("{seq:.2}s"),
        "1.00x".to_string(),
        String::new(),
    ]];
    for workers in [1usize, 2, 4, 8] {
        let t = parallel_campaign(&catalog, workers, false);
        rows.push(vec![
            format!("parallel, {workers} worker(s)"),
            format!("{t:.2}s"),
            format!("{:.2}x", seq / t),
            if workers > cores { "(more workers than cores)".to_string() } else { String::new() },
        ]);
    }
    print_table(&["config", "time", "speedup", ""], &rows);

    print_header(
        "EvalCache ablation: bucketized session (bucket_count = 4)",
        "coarse buckets collapse suggestions onto few distinct configs",
    );
    // Repeats split by health: healthy repeats are answered by the
    // evaluation cache (hits), while repeats of configurations that
    // crashed are answered by the execution policy's quarantine — the
    // cache refuses to memoize failures (a cached transient crash
    // would never get a second chance), so its hit counter deliberately
    // counts only healthy dedup.
    let bucket_spec = CampaignSpec {
        workloads: vec!["ycsb_b".to_string()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig {
            bucket_count: Some(4),
            ..Default::default()
        })],
        optimizers: vec![OptimizerKind::Random],
        seeds: vec![0],
    };
    let mut rows = Vec::new();
    for cache in [false, true] {
        let opts = CampaignOptions {
            session: SessionOptions { iterations: 60, n_init: 10, ..Default::default() },
            batch_size: 4,
            trial_workers: cores.min(4),
            cache,
            run_options: Some(quick_run_options()),
            ..Default::default()
        };
        let campaign = Campaign::new(catalog.clone(), bucket_spec.clone(), opts);
        let t = Instant::now();
        let results = campaign.run();
        let elapsed = t.elapsed().as_secs_f64();
        let quarantined = results[0].faults.quarantine_hits;
        let cache_cell = match results[0].cache {
            Some(stats) => format!(
                "{} hits / {} misses ({:.0}% hit rate)",
                stats.hits,
                stats.misses,
                stats.hit_rate() * 100.0
            ),
            None => "-".to_string(),
        };
        rows.push(vec![
            if cache { "with cache" } else { "without cache" }.to_string(),
            format!("{elapsed:.2}s"),
            cache_cell,
            format!("{quarantined}"),
        ]);
    }
    print_table(&["config", "time", "cache", "quarantine short-circuits"], &rows);
}

//! Table 11 (Appendix A): early-stopping policies applied to
//! LlamaTune(SMAC) sessions — final improvement over full-budget vanilla
//! SMAC and the iteration at which each session stopped.
use llamatune::early_stop::EarlyStopPolicy;
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune::report::final_improvement_pct;
use llamatune_bench::{print_header, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner, PAPER_WORKLOAD_NAMES};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    let policies = [
        ("(0.5%, 10)", EarlyStopPolicy::HALF_PCT_10),
        ("(1%, 10)", EarlyStopPolicy::ONE_PCT_10),
        ("(1%, 20)", EarlyStopPolicy::ONE_PCT_20),
    ];
    print_header(
        "Table 11: early-stopping policies (min-improvement %, patience)",
        "Policies applied post-hoc to LlamaTune(SMAC) histories; improvement is \
         vs full-budget vanilla SMAC",
    );
    println!(
        "{:<18} {:>14} {:>8} {:>14} {:>8} {:>14} {:>8}",
        "Workload", "(0.5%,10)", "iters", "(1%,10)", "iters", "(1%,20)", "iters"
    );
    for name in PAPER_WORKLOAD_NAMES {
        let spec = workload_by_name(name).unwrap();
        let runner = WorkloadRunner::new(spec, catalog.clone());
        let base = run_tuning_arm(
            "SMAC",
            &runner,
            &catalog,
            |_| Box::new(IdentityAdapter::new(&catalog)),
            OptimizerKind::Smac,
            scale,
        );
        let llama = run_tuning_arm(
            "LlamaTune",
            &runner,
            &catalog,
            |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
            OptimizerKind::Smac,
            scale,
        );
        let base_final = base.mean_final_best();
        print!("{name:<18}");
        for (_, policy) in &policies {
            let mut improvements = Vec::new();
            let mut stop_iters = Vec::new();
            for h in &llama.histories {
                let curve = &h.best_curve[1..];
                let stop = policy.stop_index(curve).unwrap_or(curve.len());
                let best_at_stop = curve[..stop.min(curve.len())]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                improvements.push(final_improvement_pct(base_final, best_at_stop));
                stop_iters.push(stop as f64);
            }
            print!(
                " {:>13.2}% {:>8.0}",
                llamatune_math::mean(&improvements),
                llamatune_math::mean(&stop_iters)
            );
        }
        println!();
    }
}

//! Table 2: hybrid knobs of the PostgreSQL catalogs and their special
//! values (static catalog data).
use llamatune_bench::print_header;
use llamatune_space::catalog::{postgres_v13_6, postgres_v9_6};

fn main() {
    for (label, space) in
        [("PostgreSQL v9.6", postgres_v9_6()), ("PostgreSQL v13.6", postgres_v13_6())]
    {
        print_header(
            &format!("Table 2: hybrid knobs in {label}"),
            &format!(
                "{} of {} knobs carry a special value",
                space.hybrid_knobs().count(),
                space.len()
            ),
        );
        println!("{:<36} {:>18} {:>9}  Action", "Knob", "Range", "Special");
        for (_, k) in space.hybrid_knobs() {
            let sp = k.special.unwrap();
            let range = match &k.domain {
                llamatune_space::Domain::Integer { min, max } => format!("[{min}, {max}]"),
                other => format!("{other:?}"),
            };
            println!("{:<36} {:>18} {:>9}  {}", k.name, range, sp.value, sp.meaning);
        }
    }
}

//! Table 10: optimizer suggestion-time overhead, vanilla (90-dim space)
//! vs LlamaTune (16-dim projected space), measured with Criterion.
use criterion::{criterion_group, criterion_main, Criterion};
use llamatune::pipeline::{
    IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline, SearchSpaceAdapter,
};
use llamatune_bench::OptimizerKind;
use llamatune_optim::Observation;
use llamatune_space::catalog::postgres_v9_6;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Pre-fills an optimizer with `n` synthetic observations so the measured
/// suggest() reflects mid-session model sizes (the paper measures the
/// whole 100-iteration session; per-suggestion time is the comparable
/// unit).
fn prefilled(
    kind: OptimizerKind,
    spec: &llamatune_optim::SearchSpec,
    n: usize,
) -> Box<dyn llamatune_optim::Optimizer> {
    let mut opt = kind.build(spec, 7);
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..n {
        let x: Vec<f64> = (0..spec.len()).map(|_| rng.random::<f64>()).collect();
        let metrics: Vec<f64> = (0..27).map(|_| rng.random::<f64>()).collect();
        opt.observe(Observation { x, y: i as f64, metrics });
    }
    opt
}

fn bench_overhead(c: &mut Criterion) {
    let catalog = postgres_v9_6();
    let baseline = IdentityAdapter::new(&catalog);
    let llama = LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), 1);
    let mut group = c.benchmark_group("table10_optimizer_overhead");
    group.sample_size(10);
    for (opt_name, kind) in [
        ("smac", OptimizerKind::Smac),
        ("gp_bo", OptimizerKind::GpBo),
        ("ddpg", OptimizerKind::Ddpg),
    ] {
        for (space_name, spec) in
            [("baseline_90d", baseline.optimizer_spec()), ("llamatune_16d", llama.optimizer_spec())]
        {
            group.bench_function(format!("{opt_name}/{space_name}/suggest"), |b| {
                let mut opt = prefilled(kind, spec, 60);
                b.iter(|| std::hint::black_box(opt.suggest()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

//! Figure 7: bucketized space (K = 1k/5k/10k/20k unique values per knob)
//! vs the original space on YCSB-A and YCSB-B (SMAC, Section 4.2 setup).
use llamatune::pipeline::IdentityAdapter;
use llamatune_bench::{print_curve_table, print_header, run_tuning_arm, ExpScale, OptimizerKind};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    for wl in ["ycsb_a", "ycsb_b"] {
        let runner = WorkloadRunner::new(workload_by_name(wl).unwrap(), catalog.clone());
        print_header(
            &format!("Figure 7: bucketized vs original space on {wl} (SMAC)"),
            &format!("{} seeds x {} iterations", scale.seeds, scale.iterations),
        );
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        for k in [None, Some(1_000u64), Some(5_000), Some(10_000), Some(20_000)] {
            let label = match k {
                None => "No bucketization".to_string(),
                Some(k) => format!("K={k}"),
            };
            let arm = run_tuning_arm(
                &label,
                &runner,
                &catalog,
                |_| Box::new(IdentityAdapter::with_options(&catalog, None, k)),
                OptimizerKind::Smac,
                scale,
            );
            labels.push(label);
            curves.push(arm.mean_curve());
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        print_curve_table(&label_refs, &curves, 10);
    }
}

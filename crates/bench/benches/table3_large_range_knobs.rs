//! Table 3: discrete knobs with very large value ranges (static catalog
//! data), the motivation for search-space bucketization.
use llamatune_bench::print_header;
use llamatune_space::catalog::postgres_v9_6;

fn main() {
    let space = postgres_v9_6();
    print_header(
        "Table 3: discrete knobs with large value ranges (PostgreSQL v9.6)",
        "Knobs with more than K = 10,000 unique values get bucketized",
    );
    println!("{:<32} {:>16} {:>12}  Description", "Knob", "Unique values", "Unit");
    let mut rows: Vec<_> = space
        .knobs()
        .iter()
        .filter_map(|k| k.domain.cardinality().map(|c| (k, c)))
        .filter(|(_, c)| *c > 10_000)
        .collect();
    rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (k, card) in &rows {
        println!("{:<32} {:>16} {:>12?}  {}", k.name, card, k.unit, k.description);
    }
    let pct = rows.len() as f64 / space.len() as f64 * 100.0;
    println!(
        "\n{} of {} knobs ({pct:.0}%) exceed K = 10,000 unique values",
        rows.len(),
        space.len()
    );
}

//! Table 9: LlamaTune coupled with the DDPG reinforcement-learning
//! optimizer (CDBTune-style), on the paper's four workloads.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune_bench::{
    paired_rows, print_header, print_row, run_tuning_arm, ExpScale, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    print_header(
        "Table 9: Perf. gains of LlamaTune when coupled with DDPG",
        &format!(
            "{} seeds x {} iterations; state = 27 internal DBMS metrics",
            scale.seeds, scale.iterations
        ),
    );
    println!(
        "{:<18} {:>9} {:<19} {:>8} {:<14} [5%,95%] CI",
        "Workload", "FinalImp", " [5%,95%] CI", "Speedup", "(catch-up)"
    );
    for name in ["ycsb_b", "tpcc", "twitter", "resource_stresser"] {
        let spec = workload_by_name(name).unwrap();
        let runner = WorkloadRunner::new(spec, catalog.clone());
        let base = run_tuning_arm(
            "DDPG",
            &runner,
            &catalog,
            |_| Box::new(IdentityAdapter::new(&catalog)),
            OptimizerKind::Ddpg,
            scale,
        );
        let llama = run_tuning_arm(
            "LlamaTune (DDPG)",
            &runner,
            &catalog,
            |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
            OptimizerKind::Ddpg,
            scale,
        );
        print_row(&paired_rows(name, &base, &llama), "throughput");
    }
}

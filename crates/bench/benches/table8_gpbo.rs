//! Table 8: LlamaTune coupled with GP-BO (Gaussian-process surrogate)
//! instead of SMAC, on all six workloads.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune_bench::{
    paired_rows, print_header, print_row, run_tuning_arm, ExpScale, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, WorkloadRunner, PAPER_WORKLOAD_NAMES};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    print_header(
        "Table 8: Performance gains of LlamaTune when coupled with GP-BO",
        &format!("{} seeds x {} iterations; throughput objective", scale.seeds, scale.iterations),
    );
    println!(
        "{:<18} {:>9} {:<19} {:>8} {:<14} [5%,95%] CI",
        "Workload", "FinalImp", " [5%,95%] CI", "Speedup", "(catch-up)"
    );
    for name in PAPER_WORKLOAD_NAMES {
        let spec = workload_by_name(name).unwrap();
        let runner = WorkloadRunner::new(spec, catalog.clone());
        let base = run_tuning_arm(
            "GP-BO",
            &runner,
            &catalog,
            |_| Box::new(IdentityAdapter::new(&catalog)),
            OptimizerKind::GpBo,
            scale,
        );
        let llama = run_tuning_arm(
            "LlamaTune (GP-BO)",
            &runner,
            &catalog,
            |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
            OptimizerKind::GpBo,
            scale,
        );
        print_row(&paired_rows(name, &base, &llama), "throughput");
    }
}

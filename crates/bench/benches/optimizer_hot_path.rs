//! Optimizer hot-path latency: what one suggest / observe / retract
//! costs as the observation history grows — and what the incremental
//! state updates buy over the rebuild-from-scratch baselines.
//!
//! Three measurements, each at history sizes n = 50 / 100 / 200 (the
//! paper's sessions run 100 iterations; fleet-scale campaigns go
//! beyond):
//!
//! * **GP-BO observe** — incremental Cholesky append (O(n²), the
//!   default) vs the config-forced full refactorization (O(n³),
//!   `GpConfig::incremental = false`). The two paths are bit-identical
//!   in output (pinned by `snapshot_restore.rs`), so the ratio is pure
//!   profit.
//! * **SMAC suggest** — forest cold (history changed, must fit) vs warm
//!   (cached fit reused across a batch round).
//! * **Constant-liar retract, q = 8** — `BatchSuggest::observe_batch`
//!   after a fantasized round under the default auto mode (the
//!   per-optimizer cost hint), snapshot-restore, and rebuild-and-replay
//!   (`RetractionMode::Rebuild`).
//! * **Sparse GP scaling** — observe and full-refit latency of the
//!   inducing-point surrogate (`GpConfig::sparse_default()`) at
//!   n = 2000 and 10000, where the exact path's O(n²) appends and
//!   O(n³) refits are no longer viable; plus a regret-parity check
//!   pinning the sparse path within tolerance of the exact GP on a
//!   paper-scale session.
//!
//! Results are printed as a table and recorded in
//! `BENCH_optimizer.json` (in the working directory) so later PRs have
//! a trajectory to regress against:
//!
//!     cargo bench -p llamatune-bench --bench optimizer_hot_path
//!
//! `LLAMATUNE_QUICK=1` shrinks history sizes and repetitions to
//! smoke-test scale.

use llamatune_bench::print_header;
use llamatune_optim::{GpBo, GpConfig, Observation, Optimizer, SearchSpec, Smac, SmacConfig};
use llamatune_runtime::{BatchSuggest, RetractionMode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Write;
use std::time::Instant;

/// The LlamaTune projected space: 16 continuous dimensions.
const DIMS: usize = 16;
const SEED: u64 = 7;

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// `n` synthetic observations over a smooth objective.
fn synthetic_history(n: usize) -> Vec<Observation> {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1157);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..DIMS).map(|_| rng.random::<f64>()).collect();
            let y = -x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>();
            Observation { x, y, metrics: vec![] }
        })
        .collect()
}

struct GpObserveRow {
    n: usize,
    incremental_us: f64,
    rebuild_us: f64,
}

/// Times one GP observation at exactly history size `n`, repeatedly,
/// by rewinding through the optimizer's own snapshot/restore.
fn gp_observe_row(n: usize, reps: usize) -> GpObserveRow {
    let history = synthetic_history(n + 1);
    let (prefill, probe) = history.split_at(n);
    let mut times = [Vec::new(), Vec::new()];
    for (slot, incremental) in [(0, true), (1, false)] {
        let config = GpConfig { incremental, ..GpConfig::default() };
        let mut gp = GpBo::new(SearchSpec::continuous(DIMS), config, SEED);
        gp.observe_batch(prefill.to_vec());
        let snap = gp.snapshot().expect("GP supports snapshots");
        for _ in 0..reps {
            assert!(gp.restore(snap.as_ref()));
            let t = Instant::now();
            gp.observe(probe[0].clone());
            times[slot].push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    GpObserveRow {
        n,
        incremental_us: median_us(times[0].clone()),
        rebuild_us: median_us(times[1].clone()),
    }
}

struct SmacSuggestRow {
    n: usize,
    cold_us: f64,
    warm_us: f64,
}

/// Times a SMAC suggestion with the forest invalidated (cold: must
/// fit) and with the forest cached from the previous suggestion (warm).
fn smac_suggest_row(n: usize, reps: usize) -> SmacSuggestRow {
    // Interleaved random suggestions would pollute the medians with
    // near-free iterations; disable them for measurement.
    let config = SmacConfig { random_interleave: 0, ..SmacConfig::default() };
    let mut smac = Smac::new(SearchSpec::continuous(DIMS), config, SEED);
    for o in synthetic_history(n) {
        smac.observe(o);
    }
    let snap = smac.snapshot().expect("SMAC supports snapshots");
    let (mut cold, mut warm) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        assert!(smac.restore(snap.as_ref()));
        let t = Instant::now();
        let _ = std::hint::black_box(smac.suggest());
        cold.push(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        let _ = std::hint::black_box(smac.suggest());
        warm.push(t.elapsed().as_secs_f64() * 1e6);
    }
    SmacSuggestRow { n, cold_us: median_us(cold), warm_us: median_us(warm) }
}

struct RetractRow {
    optimizer: &'static str,
    n: usize,
    q: usize,
    auto_us: f64,
    snapshot_us: f64,
    rebuild_us: f64,
}

/// Times the lie-retracting `observe_batch` of a q-wide constant-liar
/// round, under the default auto mode (per-optimizer cost hint),
/// forced snapshot-restore, and forced rebuild-and-replay.
fn retract_row(
    optimizer: &'static str,
    factory: fn() -> Box<dyn Optimizer>,
    n: usize,
    q: usize,
    rounds: usize,
) -> RetractRow {
    let mut medians = [0.0, 0.0, 0.0];
    let modes =
        [(0, RetractionMode::Auto), (1, RetractionMode::Snapshot), (2, RetractionMode::Rebuild)];
    for (slot, mode) in modes {
        let mut wrapped = BatchSuggest::new(Box::new(factory)).with_retraction(mode);
        wrapped.observe_batch(synthetic_history(n));
        let mut times = Vec::new();
        for _ in 0..rounds {
            let batch = wrapped.suggest_batch(q);
            let obs: Vec<Observation> = batch
                .into_iter()
                .map(|x| {
                    let y = -x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>();
                    Observation { x, y, metrics: vec![] }
                })
                .collect();
            let t = Instant::now();
            wrapped.observe_batch(obs);
            times.push(t.elapsed().as_secs_f64() * 1e6);
        }
        medians[slot] = median_us(times);
    }
    RetractRow {
        optimizer,
        n,
        q,
        auto_us: medians[0],
        snapshot_us: medians[1],
        rebuild_us: medians[2],
    }
}

struct SparseRow {
    n: usize,
    observe_us: f64,
    refit_us: f64,
    inducing: usize,
}

/// Times one sparse-path observation and one forced full refit at
/// exactly history size `n`, rewinding through snapshot/restore like
/// [`gp_observe_row`]. The observation is a rank-1 accumulator update
/// whose cost must not grow with n; the refit is the bounded
/// subsample-MLE plus the O(n·m²) inducing rebuild.
fn gp_sparse_row(n: usize, reps: usize) -> SparseRow {
    let history = synthetic_history(n + 1);
    let (prefill, probe) = history.split_at(n);
    let mut gp = GpBo::new(SearchSpec::continuous(DIMS), GpConfig::sparse_default(), SEED);
    gp.observe_batch(prefill.to_vec());
    let snap = gp.snapshot().expect("GP supports snapshots");
    let (mut observe_t, mut refit_t) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        assert!(gp.restore(snap.as_ref()));
        let t = Instant::now();
        gp.observe(probe[0].clone());
        observe_t.push(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        gp.refit_now();
        refit_t.push(t.elapsed().as_secs_f64() * 1e6);
    }
    SparseRow {
        n,
        observe_us: median_us(observe_t),
        refit_us: median_us(refit_t),
        inducing: gp.inducing_points().unwrap_or(0),
    }
}

struct ParityResult {
    iters: usize,
    exact_best: f64,
    sparse_best: f64,
}

/// Drives the exact and sparse GPs through identical paper-scale
/// sessions and compares their best objective values, averaged over
/// three fixed seeds (single-seed best values in 16 dimensions are
/// dominated by acquisition luck, not surrogate quality). Fully
/// deterministic, so the tolerance assert is a hard gate, not a flake.
fn regret_parity(iters: usize) -> ParityResult {
    const SEEDS: [u64; 3] = [7, 11, 23];
    let run = |config: &GpConfig, seed: u64| {
        let mut gp = GpBo::new(SearchSpec::continuous(DIMS), config.clone(), seed);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..iters {
            let x = gp.suggest();
            let y = -x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>();
            best = best.max(y);
            gp.observe(Observation { x, y, metrics: vec![] });
        }
        best
    };
    let mean =
        |config: GpConfig| SEEDS.iter().map(|&s| run(&config, s)).sum::<f64>() / SEEDS.len() as f64;
    let exact_best = mean(GpConfig::default());
    let sparse_best = mean(GpConfig::sparse_default());
    assert!(
        sparse_best >= exact_best - 0.15,
        "sparse path lost regret parity: mean best {sparse_best} vs exact {exact_best}"
    );
    ParityResult { iters, exact_best, sparse_best }
}

fn ratio(slow: f64, fast: f64) -> f64 {
    if fast <= 0.0 {
        f64::INFINITY
    } else {
        slow / fast
    }
}

fn main() {
    let quick = std::env::var("LLAMATUNE_QUICK").is_ok_and(|v| v == "1");
    // Match the runtime default (`CampaignOptions::trial_workers = 4`)
    // so the blocked factorization and batch solves run at the
    // parallelism a real campaign would see. Results are bit-identical
    // at any worker count; only the timings move.
    llamatune_math::set_worker_budget(4);
    // History sizes are chosen so the probing observation does not land
    // on a refit boundary (refit_every = 5), which both paths pay alike.
    let (ns, reps, q, rounds): (&[usize], usize, usize, usize) =
        if quick { (&[12, 26], 5, 4, 2) } else { (&[50, 100, 200], 9, 8, 3) };
    let sparse_ns: &[usize] = if quick { &[2000] } else { &[2000, 10000] };
    let parity_iters = if quick { 40 } else { 60 };

    print_header(
        "Optimizer hot path",
        &format!(
            "suggest/observe/retract latency vs history size; {DIMS}-dim space, \
             medians over {reps} reps (retract: {rounds} rounds), q = {q}"
        ),
    );

    let gp_rows: Vec<GpObserveRow> = ns.iter().map(|&n| gp_observe_row(n, reps)).collect();
    println!("\nGP-BO observe (one new observation at history n):");
    println!("{:>6} {:>16} {:>16} {:>10}", "n", "incremental", "full rebuild", "speedup");
    for r in &gp_rows {
        println!(
            "{:>6} {:>14.1}us {:>14.1}us {:>9.1}x",
            r.n,
            r.incremental_us,
            r.rebuild_us,
            ratio(r.rebuild_us, r.incremental_us)
        );
    }

    let smac_rows: Vec<SmacSuggestRow> = ns.iter().map(|&n| smac_suggest_row(n, reps)).collect();
    println!("\nSMAC suggest (forest cold vs cached):");
    println!("{:>6} {:>16} {:>16} {:>10}", "n", "cold (fit)", "warm (cached)", "speedup");
    for r in &smac_rows {
        println!(
            "{:>6} {:>14.1}us {:>14.1}us {:>9.1}x",
            r.n,
            r.cold_us,
            r.warm_us,
            ratio(r.cold_us, r.warm_us)
        );
    }

    let retract_ns: &[usize] = if quick { &[26] } else { &[100, 200] };
    let mut retract_rows = Vec::new();
    for &n in retract_ns {
        retract_rows.push(retract_row(
            "gp_bo",
            || Box::new(GpBo::new(SearchSpec::continuous(DIMS), GpConfig::default(), SEED)),
            n,
            q,
            rounds,
        ));
        retract_rows.push(retract_row(
            "smac",
            || Box::new(Smac::new(SearchSpec::continuous(DIMS), SmacConfig::default(), SEED)),
            n,
            q,
            rounds,
        ));
    }
    println!("\nConstant-liar retract (observe_batch of a q = {q} round):");
    println!(
        "{:>8} {:>6} {:>12} {:>14} {:>16} {:>10}",
        "opt", "n", "auto", "snapshot", "rebuild+replay", "speedup"
    );
    for r in &retract_rows {
        println!(
            "{:>8} {:>6} {:>10.1}us {:>12.1}us {:>14.1}us {:>9.1}x",
            r.optimizer,
            r.n,
            r.auto_us,
            r.snapshot_us,
            r.rebuild_us,
            ratio(r.rebuild_us, r.snapshot_us)
        );
    }

    let sparse_reps = if quick { 3 } else { 5 };
    let sparse_rows: Vec<SparseRow> =
        sparse_ns.iter().map(|&n| gp_sparse_row(n, sparse_reps)).collect();
    println!("\nSparse GP scaling (inducing-point surrogate, medians over {sparse_reps} reps):");
    println!("{:>8} {:>10} {:>16} {:>16}", "n", "inducing", "observe", "full refit");
    for r in &sparse_rows {
        println!("{:>8} {:>10} {:>14.1}us {:>14.1}us", r.n, r.inducing, r.observe_us, r.refit_us);
    }

    let parity = regret_parity(parity_iters);
    println!(
        "\nRegret parity ({} iters, 3-seed mean): exact best {:.4}, sparse best {:.4}",
        parity.iters, parity.exact_best, parity.sparse_best
    );

    // The regression artifact.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"dims\": {DIMS}, \"quick\": {quick}, \"reps\": {reps}, \
         \"q\": {q}, \"rounds\": {rounds}}},\n"
    ));
    json.push_str("  \"gp_observe\": [\n");
    for (i, r) in gp_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"incremental_us\": {:.2}, \"rebuild_us\": {:.2}, \
             \"speedup\": {:.2}}}{}\n",
            r.n,
            r.incremental_us,
            r.rebuild_us,
            ratio(r.rebuild_us, r.incremental_us),
            if i + 1 < gp_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"smac_suggest\": [\n");
    for (i, r) in smac_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"cold_us\": {:.2}, \"warm_us\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.n,
            r.cold_us,
            r.warm_us,
            ratio(r.cold_us, r.warm_us),
            if i + 1 < smac_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"retract\": [\n");
    for (i, r) in retract_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"optimizer\": \"{}\", \"n\": {}, \"q\": {}, \"auto_us\": {:.2}, \
             \"snapshot_us\": {:.2}, \"rebuild_us\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.optimizer,
            r.n,
            r.q,
            r.auto_us,
            r.snapshot_us,
            r.rebuild_us,
            ratio(r.rebuild_us, r.snapshot_us),
            if i + 1 < retract_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"gp_sparse\": [\n");
    for (i, r) in sparse_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"inducing\": {}, \"observe_us\": {:.2}, \"refit_us\": {:.2}}}{}\n",
            r.n,
            r.inducing,
            r.observe_us,
            r.refit_us,
            if i + 1 < sparse_rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"regret_parity\": {{\"iters\": {}, \"exact_best\": {:.4}, \
         \"sparse_best\": {:.4}}}\n",
        parity.iters, parity.exact_best, parity.sparse_best
    ));
    json.push_str("}\n");
    // Anchor the artifact at the workspace root regardless of the
    // working directory cargo launches the bench from.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_optimizer.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_optimizer.json");
    f.write_all(json.as_bytes()).expect("write BENCH_optimizer.json");
    println!("\nrecorded {}", path.display());
}

//! Warm-start transfer: how many trials a warm-started session needs to
//! reach the score a cold-started session finds with its whole budget.
//!
//! Protocol, per workload pair (source → target):
//!
//! 1. tune the *source* workload and persist the campaign in a
//!    `TrialStore`;
//! 2. tune the *target* workload cold (pure LHS initialization) for the
//!    full budget; its final best is the bar to clear;
//! 3. tune the target *warm*: fingerprint the target with a probe run,
//!    match it against the store, and seed the first k initialization
//!    trials from the matched campaign's top configurations
//!    (`CampaignOptions::warm_start`);
//! 4. report the first iteration at which each arm's best-so-far curve
//!    reaches the cold arm's final best.
//!
//! A transfer win is `trials-to-bar (warm) < budget` — the warm session
//! banks the stored campaign's knowledge instead of rediscovering it.
//!
//!     cargo bench -p llamatune-bench --bench warm_start_transfer
//!
//! Scale via `LLAMATUNE_ITERS` / `LLAMATUNE_QUICK=1` as usual.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::{SessionHistory, SessionOptions};
use llamatune_bench::{print_header, ExpScale};
use llamatune_engine::RunOptions;
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignAttachments, CampaignOptions, CampaignSpec, OptimizerKind,
    WarmStartOptions,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::TrialStore;

// Pairs chosen by cross-evaluation: a TPC-C-tuned configuration
// recovers >100% of YCSB-B's own campaign best (both are dominated by
// the same buffer-pool/WAL knobs), and Twitter/SEATS share a skewed
// read-mostly profile.
const PAIRS: [(&str, &str); 2] = [("tpcc", "ycsb_b"), ("twitter", "seats")];
const SEED: u64 = 1;
const WARM_K: usize = 5;

fn options(scale: &ExpScale, warm: bool) -> CampaignOptions {
    let run_options = scale.quick.then(|| RunOptions {
        duration_s: 0.3,
        warmup_s: 0.08,
        max_txns: 30_000,
        ..Default::default()
    });
    CampaignOptions {
        session: SessionOptions {
            iterations: scale.iterations,
            n_init: 10.min(scale.iterations / 2).max(1),
            ..Default::default()
        },
        batch_size: 4,
        trial_workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
        warm_start: warm.then_some(WarmStartOptions { k: WARM_K, max_distance: 0.5 }),
        run_options,
        ..Default::default()
    }
}

fn spec_for(workload: &str, optimizer: OptimizerKind) -> CampaignSpec {
    CampaignSpec {
        workloads: vec![workload.to_string()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![optimizer],
        seeds: vec![SEED],
    }
}

/// First iteration (1-based) whose best-so-far reaches `bar`, if any.
fn trials_to_reach(history: &SessionHistory, bar: f64) -> Option<usize> {
    history.best_curve.iter().enumerate().skip(1).find(|(_, &b)| b >= bar).map(|(i, _)| i)
}

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    let optimizer = OptimizerKind::Smac;

    print_header(
        "Warm-start transfer",
        &format!(
            "budget {} iterations, k = {WARM_K} transferred points, SMAC over the \
             LlamaTune space, seed {SEED}",
            scale.iterations
        ),
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>14}",
        "source -> target", "cold best", "warm best", "cold to bar", "warm to bar"
    );

    for (source, target) in PAIRS {
        let dir = std::env::temp_dir()
            .join("llamatune_warm_start_bench")
            .join(format!("{source}_{target}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TrialStore::open(&dir).expect("open store");

        // 1. Source campaign feeds the knowledge store.
        Campaign::new(catalog.clone(), spec_for(source, optimizer), options(&scale, false))
            .run_attached(CampaignAttachments::new().with_store(&store))
            .expect("source campaign");

        // 2. Cold target: no store, pure LHS initialization.
        let cold =
            Campaign::new(catalog.clone(), spec_for(target, optimizer), options(&scale, false))
                .run()
                .remove(0);
        let bar = cold.history.best_score().expect("cold session ran");

        // 3. Warm target: fingerprint-matched against the store.
        let warm =
            Campaign::new(catalog.clone(), spec_for(target, optimizer), options(&scale, true))
                .run_attached(CampaignAttachments::new().with_store(&store))
                .expect("warm campaign")
                .remove(0);
        let transferred = store.session_meta(&warm.label).map(|m| m.warm_points.len()).unwrap_or(0);

        // 4. Trials each arm needs to clear the cold arm's final bar.
        let cold_to_bar = trials_to_reach(&cold.history, bar).expect("cold reaches its own best");
        let warm_to_bar = trials_to_reach(&warm.history, bar);
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>14} {:>14}",
            format!("{source} -> {target}"),
            bar,
            warm.history.best_score().unwrap_or(f64::NAN),
            format!("{cold_to_bar} trials"),
            match warm_to_bar {
                Some(n) => format!("{n} trials"),
                None => "not reached".to_string(),
            },
        );
        println!(
            "  {} warm points transferred; warm session {} the cold session's \
             best-at-{} bar{}",
            transferred,
            match warm_to_bar {
                Some(n) if n < cold_to_bar => "beat",
                Some(_) => "matched",
                None => "missed",
            },
            scale.iterations,
            match warm_to_bar {
                Some(n) => format!(" ({n} vs {cold_to_bar} trials)"),
                None => String::new(),
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Table 6: tuning for 95th-percentile tail latency at a fixed request
//! rate (TPC-C, SEATS, Twitter), LlamaTune(SMAC) vs SMAC.
use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline};
use llamatune_bench::{
    paired_rows, print_header, print_row, run_tuning_arm, ExpScale, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_workloads::{workload_by_name, Objective, WorkloadRunner};

fn main() {
    let scale = ExpScale::from_env();
    let catalog = postgres_v9_6();
    print_header(
        "Table 6: LlamaTune + SMAC, tuning for 95th-percentile tail latency",
        "Fixed request rate = 60% of the default configuration's closed-loop throughput \
         (the paper uses half of the best observed throughput)",
    );
    println!(
        "{:<18} {:>9} {:<19} {:>8} {:<14} [5%,95%] CI",
        "Workload", "LatRed", " [5%,95%] CI", "Speedup", "(catch-up)"
    );
    for name in ["tpcc", "seats", "twitter"] {
        let spec = workload_by_name(name).unwrap();
        // Self-calibrating rate: fraction of default throughput.
        let probe = WorkloadRunner::new(spec.clone(), catalog.clone());
        let default_tput =
            probe.evaluate(&catalog, &catalog.default_config(), 0).score.unwrap_or(1_000.0);
        let rate = default_tput * 0.6;
        let runner = WorkloadRunner::new(spec, catalog.clone())
            .with_objective(Objective::TailLatency95 { rate_tps: rate });
        let base = run_tuning_arm(
            "SMAC",
            &runner,
            &catalog,
            |_| Box::new(IdentityAdapter::new(&catalog)),
            OptimizerKind::Smac,
            scale,
        );
        let llama = run_tuning_arm(
            "LlamaTune (SMAC)",
            &runner,
            &catalog,
            |seed| Box::new(LlamaTunePipeline::new(&catalog, &LlamaTuneConfig::default(), seed)),
            OptimizerKind::Smac,
            scale,
        );
        let row = paired_rows(&format!("{name} @{rate:.0}/s"), &base, &llama);
        print_row(&row, "p95 latency");
    }
    println!("\n(positive % = LlamaTune reaches lower tail latency)");
}

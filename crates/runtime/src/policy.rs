//! Per-trial execution policy: watchdog timeouts, bounded retry with
//! deterministic backoff, straggler hedging, panic isolation, and
//! poisoned-config quarantine.
//!
//! The policy sits between the session loop and a
//! [`TrialRunner`]: every trial is
//! evaluated under `catch_unwind` (a panicking runner poisons one
//! worker slot, never the campaign), timed against a *virtual* watchdog
//! (the engine simulates, so timeouts compare simulated milliseconds —
//! recorded histories never contain wall time), retried on retryable
//! failures with delays drawn from the shared
//! [`llamatune::backoff`] schedule, and — when a configuration fails
//! terminally — quarantined, so later rounds that re-suggest it are
//! penalty-scored ([`TrialStatus::Quarantined`]) without re-running.
//!
//! Determinism: every decision here is a pure function of the trial's
//! configuration, the evaluation seed, and the policy — never of wall
//! clock, worker count, or completion order. Quarantine membership is
//! snapshotted per batch (and committed after the batch folds), so two
//! trials of one round can never race on it.
//!
//! The default policy is inert: infinite timeout, one attempt, no
//! hedging. Fault-free campaigns behave — byte for byte — as if the
//! policy layer did not exist.

use llamatune::backoff::{Backoff, BackoffPolicy};
use llamatune::session::{EvalResult, TrialStatus};
use llamatune_obs::{MetricsRegistry, MetricsSnapshot};
use llamatune_space::{Config, ConfigSpace};
use llamatune_workloads::{config_fingerprint, TrialRunner};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How the executor shepherds each trial through failure modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionPolicy {
    /// Watchdog timeout per attempt, in *virtual* milliseconds; an
    /// attempt whose simulated duration exceeds this is recorded as
    /// [`TrialStatus::TimedOut`]. `f64::INFINITY` (the default)
    /// disables the watchdog.
    pub timeout_ms: f64,
    /// Evaluation attempts per trial (>= 1). Retries fire on panics,
    /// timeouts, and retryable failures; a deterministic crash
    /// (`retryable: false`) is never retried.
    pub max_attempts: u32,
    /// Backoff schedule between attempts; delays are virtual
    /// milliseconds added to the trial's virtual clock, seeded by
    /// `(eval seed, config fingerprint)` so they replay exactly.
    pub retry_backoff: BackoffPolicy,
    /// Straggler hedging threshold, in virtual milliseconds: a
    /// *successful* trial whose virtual time exceeds this is
    /// re-attempted once, and the faster successful outcome wins
    /// (attempt counts record the hedge). The threshold is absolute —
    /// deliberately not batch-relative — so the hedge decision is a
    /// pure function of the trial itself: a batch median would shift
    /// when part of a round is answered by the evaluation cache (e.g.
    /// on resume), silently changing recorded attempt counts.
    /// `f64::INFINITY` (the default) disables hedging.
    pub hedge_ms: f64,
    /// Quarantine configurations that failed terminally: re-encounters
    /// are scored with the crash penalty (status
    /// [`TrialStatus::Quarantined`]) without re-running the benchmark.
    pub quarantine: bool,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        ExecutionPolicy {
            timeout_ms: f64::INFINITY,
            max_attempts: 1,
            retry_backoff: BackoffPolicy::TRIAL_RETRY,
            hedge_ms: f64::INFINITY,
            quarantine: true,
        }
    }
}

impl ExecutionPolicy {
    /// A policy hardened for chaotic runners, used by the chaos suites:
    /// a 10-second virtual watchdog (catches hangs and pathological
    /// stragglers), three attempts (clears transient faults), hedging
    /// at a quarter of the watchdog, and quarantine on.
    pub fn hardened() -> ExecutionPolicy {
        ExecutionPolicy {
            timeout_ms: 10_000.0,
            max_attempts: 3,
            hedge_ms: 2_500.0,
            ..ExecutionPolicy::default()
        }
    }
}

/// Fault totals as a typed view over the metrics registry's `policy.*`
/// counters (observability for the chaos suites: a green run that never
/// retried proves nothing). The policy layer itself counts straight
/// into a [`MetricsRegistry`]; this struct survives as the convenient
/// read side on [`crate::CampaignResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Attempts the watchdog timed out.
    pub timeouts: u64,
    /// Retries launched (excluding hedges).
    pub retries: u64,
    /// Panics contained by per-trial isolation.
    pub panics_caught: u64,
    /// Trials answered from quarantine without a run.
    pub quarantine_hits: u64,
    /// Hedge re-attempts launched for stragglers.
    pub hedges: u64,
}

impl FaultStatsSnapshot {
    /// Reads the `policy.*` counters out of a metrics snapshot.
    pub fn from_metrics(snapshot: &MetricsSnapshot) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            timeouts: snapshot.counter("policy.timeouts"),
            retries: snapshot.counter("policy.retries"),
            panics_caught: snapshot.counter("policy.panics_caught"),
            quarantine_hits: snapshot.counter("policy.quarantine_hits"),
            hedges: snapshot.counter("policy.hedges"),
        }
    }
}

/// One attempt's settled disposition, logged by [`run_trial_policy`] so
/// the executor can emit `trial.attempt` spans after the batch folds —
/// attempts run on worker threads, and recording them out-of-band keeps
/// trace emission on the session thread.
#[derive(Debug, Clone)]
pub(crate) struct AttemptTrace {
    /// Absolute attempt number (hedge re-runs continue the count).
    pub attempt: u32,
    /// Virtual milliseconds this attempt consumed.
    pub virtual_ms: f64,
    /// How the attempt settled: `ok`, `crashed`, `timed_out`,
    /// `panicked`, or `quarantined`.
    pub disposition: &'static str,
}

/// One trial's settled outcome plus the policy-internal context the
/// executor needs (hedging compares virtual times; quarantine keys are
/// committed only after the whole batch folds).
#[derive(Debug, Clone)]
pub(crate) struct TrialOutcome {
    pub result: EvalResult,
    /// Total virtual milliseconds consumed (attempts + backoff delays).
    pub virtual_ms: f64,
    /// Fingerprint to quarantine, when the trial failed terminally.
    pub quarantine_key: Option<u64>,
    /// Per-attempt dispositions, in attempt order.
    pub attempts_log: Vec<AttemptTrace>,
}

/// Runs one trial to a settled disposition under `policy`.
///
/// `first_attempt`/`budget` parameterize hedge re-runs: the normal path
/// starts at attempt 1 with the policy's full attempt budget; a hedge
/// re-runs starting past the original's last attempt with a budget of
/// one. Attempt numbers are absolute, so the recorded `attempts` field
/// counts every evaluation the trial consumed.
#[allow(clippy::too_many_arguments)] // internal seam; callers are the executor and its hedger
pub(crate) fn run_trial_policy(
    runner: &dyn TrialRunner,
    space: &ConfigSpace,
    config: &Config,
    seed: u64,
    policy: &ExecutionPolicy,
    quarantined: &HashSet<u64>,
    metrics_reg: &MetricsRegistry,
    first_attempt: u32,
    budget: u32,
) -> TrialOutcome {
    let fp = config_fingerprint(config);
    if policy.quarantine && first_attempt == 1 && quarantined.contains(&fp) {
        metrics_reg.incr("policy.quarantine_hits", 1);
        return TrialOutcome {
            result: EvalResult {
                score: None,
                metrics: Vec::new(),
                status: TrialStatus::Quarantined,
                attempts: 1,
                virtual_ms: 0.0,
            },
            virtual_ms: 0.0,
            quarantine_key: None,
            attempts_log: vec![AttemptTrace {
                attempt: 1,
                virtual_ms: 0.0,
                disposition: "quarantined",
            }],
        };
    }

    let mut clock = 0.0;
    let mut backoff = Backoff::new(policy.retry_backoff, seed ^ fp);
    let mut attempt = first_attempt;
    let last_attempt = first_attempt.saturating_add(budget.max(1)) - 1;
    let mut attempts_log = Vec::new();
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            runner.evaluate_attempt(space, config, seed, attempt)
        }));
        let (score, metrics, virtual_ms, retryable, panicked) = match outcome {
            Ok(o) => (o.score, o.metrics, o.virtual_ms, o.retryable, false),
            Err(_) => {
                // Panic isolation: the worker slot survives, the trial
                // folds as a crashed (retryable) attempt.
                metrics_reg.incr("policy.panics_caught", 1);
                (None, Vec::new(), 1.0, true, true)
            }
        };
        clock += virtual_ms;
        let timed_out = virtual_ms > policy.timeout_ms;
        if timed_out {
            metrics_reg.incr("policy.timeouts", 1);
        }
        attempts_log.push(AttemptTrace {
            attempt,
            virtual_ms,
            disposition: if timed_out {
                "timed_out"
            } else if panicked {
                "panicked"
            } else if score.is_some() {
                "ok"
            } else {
                "crashed"
            },
        });

        if !timed_out && !panicked && score.is_some() {
            return TrialOutcome {
                result: EvalResult {
                    score,
                    metrics,
                    status: TrialStatus::Ok,
                    attempts: attempt,
                    virtual_ms: clock,
                },
                virtual_ms: clock,
                quarantine_key: None,
                attempts_log,
            };
        }

        // This attempt failed. Deterministic crashes (retryable: false,
        // no panic, no timeout) are final immediately; everything else
        // retries while attempts and the backoff budget allow.
        if attempt < last_attempt && (timed_out || retryable) {
            if let Some(delay) = backoff.next() {
                metrics_reg.incr("policy.retries", 1);
                clock += delay as f64;
                attempt += 1;
                continue;
            }
        }
        let status = if timed_out { TrialStatus::TimedOut } else { TrialStatus::Crashed };
        // Keep the failed attempt's metrics (a crashing benchmark may
        // still report partial counters) — matching what a plain runner
        // records for a crashed configuration.
        return TrialOutcome {
            result: EvalResult {
                score: None,
                metrics,
                status,
                attempts: attempt,
                virtual_ms: clock,
            },
            virtual_ms: clock,
            quarantine_key: policy.quarantine.then_some(fp),
            attempts_log,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_workloads::AttemptOutcome;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Scripted runner: fails the first `fail_first` attempts
    /// retryably, then succeeds with the given virtual duration.
    struct Scripted {
        fail_first: u32,
        virtual_ms: f64,
        calls: AtomicU32,
        panic_on: Option<u32>,
        retryable: bool,
    }

    impl Scripted {
        fn ok(virtual_ms: f64) -> Scripted {
            Scripted {
                fail_first: 0,
                virtual_ms,
                calls: AtomicU32::new(0),
                panic_on: None,
                retryable: true,
            }
        }
    }

    impl TrialRunner for Scripted {
        fn evaluate_attempt(
            &self,
            _space: &ConfigSpace,
            _config: &Config,
            _seed: u64,
            attempt: u32,
        ) -> AttemptOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if Some(attempt) == self.panic_on {
                panic!("scripted panic");
            }
            if attempt <= self.fail_first {
                AttemptOutcome {
                    score: None,
                    metrics: Vec::new(),
                    virtual_ms: 1.0,
                    retryable: self.retryable,
                }
            } else {
                AttemptOutcome {
                    score: Some(10.0 * attempt as f64),
                    metrics: vec![1.0],
                    virtual_ms: self.virtual_ms,
                    retryable: false,
                }
            }
        }
    }

    fn space() -> ConfigSpace {
        llamatune_space::catalog::postgres_v9_6()
    }

    fn run(
        runner: &dyn TrialRunner,
        policy: &ExecutionPolicy,
        quarantined: &HashSet<u64>,
    ) -> TrialOutcome {
        let sp = space();
        let cfg = sp.default_config();
        let metrics = MetricsRegistry::new();
        run_trial_policy(
            runner,
            &sp,
            &cfg,
            7,
            policy,
            quarantined,
            &metrics,
            1,
            policy.max_attempts,
        )
    }

    #[test]
    fn default_policy_is_single_attempt_pass_through() {
        let r = Scripted::ok(100.0);
        let out = run(&r, &ExecutionPolicy::default(), &HashSet::new());
        assert_eq!(out.result.status, TrialStatus::Ok);
        assert_eq!(out.result.attempts, 1);
        assert_eq!(out.result.score, Some(10.0));
        assert_eq!(r.calls.load(Ordering::SeqCst), 1);
        assert!(out.quarantine_key.is_none());
    }

    #[test]
    fn transient_failures_retry_with_backoff_and_record_attempts() {
        let r = Scripted { fail_first: 2, ..Scripted::ok(100.0) };
        let policy = ExecutionPolicy { max_attempts: 3, ..Default::default() };
        let out = run(&r, &policy, &HashSet::new());
        assert_eq!(out.result.status, TrialStatus::Ok);
        assert_eq!(out.result.attempts, 3);
        assert_eq!(out.result.score, Some(30.0));
        // Virtual clock: two 1ms failures + backoff delays + the run.
        assert!(out.virtual_ms > 102.0, "backoff delays must land on the virtual clock");
    }

    #[test]
    fn exhausted_retries_settle_as_crashed_and_quarantine() {
        let r = Scripted { fail_first: 10, ..Scripted::ok(100.0) };
        let policy = ExecutionPolicy { max_attempts: 3, ..Default::default() };
        let out = run(&r, &policy, &HashSet::new());
        assert_eq!(out.result.status, TrialStatus::Crashed);
        assert_eq!(out.result.attempts, 3);
        assert!(out.result.score.is_none());
        assert!(out.quarantine_key.is_some());
    }

    #[test]
    fn deterministic_crashes_are_never_retried() {
        let r = Scripted { fail_first: 10, retryable: false, ..Scripted::ok(100.0) };
        let policy = ExecutionPolicy { max_attempts: 5, ..Default::default() };
        let out = run(&r, &policy, &HashSet::new());
        assert_eq!(out.result.status, TrialStatus::Crashed);
        assert_eq!(out.result.attempts, 1, "retrying a deterministic crash is waste");
        assert_eq!(r.calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn watchdog_times_out_on_virtual_not_wall_time() {
        let r = Scripted::ok(50_000.0);
        let policy =
            ExecutionPolicy { timeout_ms: 10_000.0, max_attempts: 2, ..Default::default() };
        let started = std::time::Instant::now();
        let out = run(&r, &policy, &HashSet::new());
        assert_eq!(out.result.status, TrialStatus::TimedOut);
        assert_eq!(out.result.attempts, 2, "timeouts are retried up to the budget");
        assert!(out.quarantine_key.is_some());
        // 100 virtual seconds, near-zero wall time.
        assert!(started.elapsed().as_secs() < 5);
    }

    #[test]
    fn panics_are_contained_and_retried() {
        let r = Scripted { panic_on: Some(1), ..Scripted::ok(100.0) };
        let policy = ExecutionPolicy { max_attempts: 2, ..Default::default() };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the scripted panic
        let out = run(&r, &policy, &HashSet::new());
        std::panic::set_hook(prev);
        assert_eq!(out.result.status, TrialStatus::Ok);
        assert_eq!(out.result.attempts, 2);
    }

    #[test]
    fn quarantined_configs_are_scored_without_running() {
        let r = Scripted::ok(100.0);
        let sp = space();
        let fp = config_fingerprint(&sp.default_config());
        let out = run(&r, &ExecutionPolicy::default(), &HashSet::from([fp]));
        assert_eq!(out.result.status, TrialStatus::Quarantined);
        assert!(out.result.score.is_none());
        assert_eq!(r.calls.load(Ordering::SeqCst), 0, "quarantine must not run the benchmark");
        // Quarantine off: the trial runs normally.
        let policy = ExecutionPolicy { quarantine: false, ..Default::default() };
        let out = run(&r, &policy, &HashSet::from([fp]));
        assert_eq!(out.result.status, TrialStatus::Ok);
    }

    #[test]
    fn policy_counters_land_in_the_metrics_registry_with_attempt_log() {
        let r = Scripted { fail_first: 2, ..Scripted::ok(100.0) };
        let policy = ExecutionPolicy { max_attempts: 3, ..Default::default() };
        let sp = space();
        let cfg = sp.default_config();
        let metrics = MetricsRegistry::new();
        let out = run_trial_policy(&r, &sp, &cfg, 7, &policy, &HashSet::new(), &metrics, 1, 3);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("policy.retries"), 2);
        let faults = FaultStatsSnapshot::from_metrics(&snap);
        assert_eq!(faults.retries, 2);
        assert_eq!(faults.timeouts, 0);
        let dispositions: Vec<&str> = out.attempts_log.iter().map(|a| a.disposition).collect();
        assert_eq!(dispositions, vec!["crashed", "crashed", "ok"]);
        assert_eq!(out.result.virtual_ms, out.virtual_ms);
    }

    #[test]
    fn settled_outcomes_are_deterministic() {
        let policy = ExecutionPolicy { max_attempts: 3, ..Default::default() };
        let a = run(&Scripted { fail_first: 1, ..Scripted::ok(80.0) }, &policy, &HashSet::new());
        let b = run(&Scripted { fail_first: 1, ..Scripted::ok(80.0) }, &policy, &HashSet::new());
        assert_eq!(a.result.score, b.result.score);
        assert_eq!(a.result.attempts, b.result.attempts);
        assert_eq!(a.virtual_ms, b.virtual_ms, "backoff jitter is seeded, not random");
    }
}

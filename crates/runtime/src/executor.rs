//! Parallel trial executors.
//!
//! Both executors here implement [`TrialExecutor`] by splitting a batch
//! into contiguous chunks, one per worker, and evaluating the chunks on
//! scoped threads. Results land in positional slots, so the returned
//! vector is aligned with the input batch no matter which worker finishes
//! first — the property `run_session_parallel` relies on for
//! worker-count-independent histories.
//!
//! [`WorkloadExecutor`] is the DBMS-benchmark instantiation: trials run
//! against a shared [`TrialRunner`] (a plain [`WorkloadRunner`], or a
//! fault-injecting wrapper around one) under an [`ExecutionPolicy`] —
//! watchdog, retry, hedging, quarantine — and an optional shared
//! [`EvalCache`] short-circuits configurations that were already
//! measured. Quarantine is consulted through a per-batch snapshot and
//! new keys are committed only after the batch folds, so recorded
//! statuses stay independent of worker count and completion order.

use crate::cache::{config_key, CacheStats, EvalCache};
use crate::policy::{run_trial_policy, ExecutionPolicy, FaultStatsSnapshot, TrialOutcome};
use llamatune::session::{EvalResult, Trial, TrialExecutor, TrialStatus};
use llamatune_obs::trace::{NoopTracer, TraceEvent, Tracer};
use llamatune_obs::MetricsRegistry;
use llamatune_space::{Config, ConfigSpace};
use llamatune_workloads::{config_fingerprint, TrialRunner, WorkloadRunner};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Evaluates `jobs` across `slots.len()`-aligned chunks, one worker per
/// chunk, calling `eval(worker_index, job_index, config)`.
fn eval_chunked<T, F>(workers: usize, jobs: &[&Config], eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize, &Config) -> T + Sync,
{
    let n = jobs.len();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, cfg) in jobs.iter().enumerate() {
            out[i] = Some(eval(0, i, cfg));
        }
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (w, slots) in out.chunks_mut(chunk).enumerate() {
                let eval = &eval;
                let base = w * chunk;
                let jobs = &jobs[base..base + slots.len()];
                scope.spawn(move || {
                    for (off, (slot, cfg)) in slots.iter_mut().zip(jobs).enumerate() {
                        *slot = Some(eval(w, base + off, cfg));
                    }
                });
            }
        });
    }
    out.into_iter().map(|r| r.expect("every slot evaluated")).collect()
}

/// What one batch resolved against the cache — counted locally (not by
/// delta against the shared [`CacheStats`], which other sessions may be
/// advancing concurrently), so the `cache.lookup` trace span stays
/// deterministic.
#[derive(Debug, Clone, Copy, Default)]
struct BatchCacheOutcome {
    /// Trials answered from the cache.
    hits: u64,
    /// Distinct configurations that had to run.
    misses: u64,
    /// Trials served from a within-batch duplicate's fresh result.
    duplicates: u64,
}

/// Runs a batch through the cache: cached configurations short-circuit,
/// within-batch duplicates are evaluated once, and fresh results are
/// recorded. `eval_all` receives the trial indices and configurations
/// that actually need a run and must return results positionally.
fn run_batch_cached(
    cache: &EvalCache,
    trials: &[Trial],
    eval_all: impl FnOnce(&[usize], &[&Config]) -> Vec<EvalResult>,
) -> (Vec<EvalResult>, BatchCacheOutcome) {
    let mut resolved: Vec<Option<EvalResult>> = vec![None; trials.len()];
    // Key -> index into `unique` for within-batch duplicates.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new(); // trial indices to evaluate
    let mut dup_of: Vec<(usize, usize)> = Vec::new(); // (trial, unique slot)
    for (i, t) in trials.iter().enumerate() {
        if let Some(hit) = cache.lookup(&t.config) {
            resolved[i] = Some(hit);
            continue;
        }
        match seen.entry(config_key(&t.config)) {
            std::collections::hash_map::Entry::Occupied(e) => dup_of.push((i, *e.get())),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(unique.len());
                unique.push(i);
            }
        }
    }
    let outcome = BatchCacheOutcome {
        hits: (trials.len() - unique.len() - dup_of.len()) as u64,
        misses: unique.len() as u64,
        duplicates: dup_of.len() as u64,
    };
    let configs: Vec<&Config> = unique.iter().map(|&i| &trials[i].config).collect();
    let fresh = eval_all(&unique, &configs);
    assert_eq!(fresh.len(), configs.len(), "eval_all must be positional");
    for (&i, r) in unique.iter().zip(&fresh) {
        cache.insert(&trials[i].config, r.clone());
        resolved[i] = Some(r.clone());
    }
    for (i, u) in dup_of {
        resolved[i] = Some(fresh[u].clone());
    }
    (resolved.into_iter().map(|r| r.expect("resolved or evaluated")).collect(), outcome)
}

/// A [`TrialExecutor`] over an arbitrary `Sync` objective closure,
/// evaluated by a pool of scoped worker threads. Useful for synthetic
/// objectives in tests and benchmarks; DBMS campaigns use
/// [`WorkloadExecutor`].
pub struct ParallelExecutor<F: Fn(&Config) -> EvalResult + Sync> {
    workers: usize,
    eval: F,
    cache: Option<Arc<EvalCache>>,
}

impl<F: Fn(&Config) -> EvalResult + Sync> ParallelExecutor<F> {
    /// Creates an executor evaluating with `workers` threads.
    pub fn new(workers: usize, eval: F) -> Self {
        ParallelExecutor { workers: workers.max(1), eval, cache: None }
    }

    /// Attaches a (possibly shared) evaluation cache.
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache's statistics, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }
}

impl<F: Fn(&Config) -> EvalResult + Sync> TrialExecutor for ParallelExecutor<F> {
    fn run_batch(&mut self, trials: &[Trial]) -> Vec<EvalResult> {
        let eval_all = |_idxs: &[usize], configs: &[&Config]| {
            eval_chunked(self.workers, configs, |_, _, cfg| (self.eval)(cfg))
        };
        match &self.cache {
            Some(cache) => run_batch_cached(cache, trials, eval_all).0,
            None => {
                let configs: Vec<&Config> = trials.iter().map(|t| &t.config).collect();
                eval_all(&[], &configs)
            }
        }
    }

    fn max_parallelism(&self) -> usize {
        self.workers
    }
}

/// The DBMS-benchmark [`TrialExecutor`]: a shared [`TrialRunner`]
/// evaluated by `workers` scoped threads, a fixed evaluation seed (the
/// paper evaluates every configuration of a session under the same
/// simulated conditions), an [`ExecutionPolicy`] shepherding each trial
/// through failures, and an optional deduplicating cache.
pub struct WorkloadExecutor {
    runner: Arc<dyn TrialRunner>,
    workers: usize,
    space: ConfigSpace,
    eval_seed: u64,
    cache: Option<Arc<EvalCache>>,
    policy: ExecutionPolicy,
    /// Fingerprints of configurations that failed terminally. Consulted
    /// via per-batch snapshot; new keys merge after each batch.
    quarantined: Mutex<HashSet<u64>>,
    /// Receives the `policy.*` fault counters.
    metrics: Arc<MetricsRegistry>,
    /// Receives `trial.attempt`, `cache.lookup`, and `policy.quarantine`
    /// spans — emitted only from the caller's thread after a batch
    /// settles (never from worker threads), so traces stay deterministic.
    tracer: Arc<dyn Tracer>,
    trace_label: String,
}

impl WorkloadExecutor {
    /// Creates an executor over `workers` threads sharing one runner.
    /// `space` is the tuned knob space (may be a subset of the runner's
    /// catalog); `eval_seed` drives the simulated benchmark.
    pub fn new(
        runner: &WorkloadRunner,
        space: ConfigSpace,
        eval_seed: u64,
        workers: usize,
    ) -> Self {
        WorkloadExecutor::from_trial_runner(Arc::new(runner.clone()), space, eval_seed, workers)
    }

    /// Creates an executor over an arbitrary [`TrialRunner`] — a plain
    /// workload runner, or a fault-injecting wrapper around one.
    pub fn from_trial_runner(
        runner: Arc<dyn TrialRunner>,
        space: ConfigSpace,
        eval_seed: u64,
        workers: usize,
    ) -> Self {
        WorkloadExecutor {
            runner,
            workers: workers.max(1),
            space,
            eval_seed,
            cache: None,
            policy: ExecutionPolicy::default(),
            quarantined: Mutex::new(HashSet::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(NoopTracer),
            trace_label: String::new(),
        }
    }

    /// Attaches a (possibly shared) metrics registry and a tracer whose
    /// spans carry `label` as their session field.
    pub fn with_observability(
        mut self,
        metrics: Arc<MetricsRegistry>,
        tracer: Arc<dyn Tracer>,
        label: String,
    ) -> Self {
        self.metrics = metrics;
        self.tracer = tracer;
        self.trace_label = label;
        self
    }

    /// Sets the execution policy (the default is inert: one attempt, no
    /// watchdog, no hedging).
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a (possibly shared) evaluation cache. Share a cache only
    /// between executors with the same workload and evaluation seed.
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache's statistics, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// What the policy layer actually did so far (a typed view over the
    /// registry's `policy.*` counters).
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot::from_metrics(&self.metrics.snapshot())
    }

    /// Number of quarantined configurations.
    pub fn quarantine_len(&self) -> usize {
        self.lock_quarantine().len()
    }

    /// Seeds the quarantine set, used on resume: configurations whose
    /// replayed trials failed terminally must be quarantined *before*
    /// the first live round, or a resumed campaign would re-run (and
    /// possibly re-score) a poisoned config that the uninterrupted run
    /// answered from quarantine — breaking byte-identical resume.
    pub fn preload_quarantine<'a>(&self, configs: impl IntoIterator<Item = &'a Config>) {
        let mut q = self.lock_quarantine();
        for cfg in configs {
            q.insert(config_fingerprint(cfg));
        }
    }

    fn lock_quarantine(&self) -> std::sync::MutexGuard<'_, HashSet<u64>> {
        // A worker panicking between lock and unlock cannot leave the
        // set logically torn (inserts are atomic); recover the data.
        self.quarantined.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Evaluates `configs` under the execution policy: quarantine
    /// snapshot, per-trial retry loop, straggler hedging, then a single
    /// post-batch quarantine merge (deterministic in worker count).
    /// `iterations` aligns with `configs` and only labels trace spans.
    fn eval_with_policy(&self, iterations: &[usize], configs: &[&Config]) -> Vec<EvalResult> {
        let snapshot: HashSet<u64> = self.lock_quarantine().clone();
        let (space, seed, policy) = (&self.space, self.eval_seed, &self.policy);
        let metrics = &*self.metrics;
        let runner = &*self.runner;
        let mut outs: Vec<TrialOutcome> = eval_chunked(self.workers, configs, |_, _, cfg| {
            run_trial_policy(
                runner,
                space,
                cfg,
                seed,
                policy,
                &snapshot,
                metrics,
                1,
                policy.max_attempts.max(1),
            )
        });
        if policy.hedge_ms.is_finite() {
            self.hedge_stragglers(configs, &mut outs, &snapshot);
        }
        if policy.quarantine {
            let mut q = self.lock_quarantine();
            let mut committed = 0u64;
            for out in &outs {
                if let Some(key) = out.quarantine_key {
                    if q.insert(key) {
                        committed += 1;
                    }
                }
            }
            if self.tracer.enabled() && committed > 0 {
                self.tracer.record(
                    TraceEvent::new(&self.trace_label, "policy.quarantine")
                        .field("iteration", iterations.first().copied().unwrap_or(0) as u64)
                        .field("committed", committed)
                        .field("total", q.len() as u64),
                );
            }
        }
        // Attempt spans, emitted positionally from the caller's thread
        // after the whole batch (including hedges) has settled. Every
        // field is virtual-clock or attempt-count data, so the spans are
        // identical at any worker count.
        if self.tracer.enabled() {
            for (k, out) in outs.iter().enumerate() {
                let iteration = iterations.get(k).copied().unwrap_or(0) as u64;
                for a in &out.attempts_log {
                    self.tracer.record(
                        TraceEvent::new(&self.trace_label, "trial.attempt")
                            .field("iteration", iteration)
                            .field("attempt", u64::from(a.attempt))
                            .field("virtual_ms", a.virtual_ms)
                            .field("disposition", a.disposition),
                    );
                }
            }
        }
        outs.into_iter().map(|o| o.result).collect()
    }

    /// Straggler hedging: any successful trial whose virtual time
    /// exceeds the policy's absolute `hedge_ms` threshold gets one
    /// extra attempt, and the faster successful outcome wins. The
    /// threshold is per-trial, never batch-relative, so whether a trial
    /// hedges is a pure function of the trial itself — a batch median
    /// would shift when part of a round is answered by the cache (on
    /// resume, or under bucketized repeats) and recorded attempt
    /// counts would diverge from the uninterrupted run.
    fn hedge_stragglers(
        &self,
        configs: &[&Config],
        outs: &mut [TrialOutcome],
        snapshot: &HashSet<u64>,
    ) {
        let threshold = self.policy.hedge_ms;
        for (i, cfg) in configs.iter().enumerate() {
            if outs[i].result.status != TrialStatus::Ok || outs[i].virtual_ms <= threshold {
                continue;
            }
            self.metrics.incr("policy.hedges", 1);
            let mut hedge = run_trial_policy(
                &*self.runner,
                &self.space,
                cfg,
                self.eval_seed,
                &self.policy,
                snapshot,
                &self.metrics,
                outs[i].result.attempts + 1,
                1,
            );
            if hedge.result.status == TrialStatus::Ok && hedge.virtual_ms < outs[i].virtual_ms {
                // The hedge wins, but its attempt log still records the
                // original's attempts (attempt numbers are absolute).
                let mut log = std::mem::take(&mut outs[i].attempts_log);
                log.append(&mut hedge.attempts_log);
                hedge.attempts_log = log;
                outs[i] = hedge;
            } else {
                // The original stands, but the hedge attempt happened:
                // account for it so attempt counts stay truthful.
                outs[i].result.attempts = hedge.result.attempts;
                outs[i].attempts_log.append(&mut hedge.attempts_log);
            }
        }
    }
}

impl TrialExecutor for WorkloadExecutor {
    fn run_batch(&mut self, trials: &[Trial]) -> Vec<EvalResult> {
        let eval_all = |idxs: &[usize], configs: &[&Config]| {
            let iterations: Vec<usize> = idxs.iter().map(|&i| trials[i].iteration).collect();
            self.eval_with_policy(&iterations, configs)
        };
        match &self.cache {
            Some(cache) => {
                let (results, batch) = run_batch_cached(cache, trials, eval_all);
                if self.tracer.enabled() {
                    self.tracer.record(
                        TraceEvent::new(&self.trace_label, "cache.lookup")
                            .field(
                                "iteration",
                                trials.first().map(|t| t.iteration).unwrap_or(0) as u64,
                            )
                            .field("hits", batch.hits)
                            .field("misses", batch.misses)
                            .field("duplicates", batch.duplicates),
                    );
                }
                self.metrics.incr("cache.hits", batch.hits);
                self.metrics.incr("cache.misses", batch.misses);
                results
            }
            None => {
                let iterations: Vec<usize> = trials.iter().map(|t| t.iteration).collect();
                let configs: Vec<&Config> = trials.iter().map(|t| &t.config).collect();
                self.eval_with_policy(&iterations, &configs)
            }
        }
    }

    fn max_parallelism(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;
    use llamatune_space::KnobValue;

    fn trial(space: &ConfigSpace, sb: i64) -> Trial {
        let mut cfg = space.default_config();
        let idx = space.index_of("shared_buffers").unwrap();
        cfg.values_mut()[idx] = KnobValue::Int(sb);
        Trial { iteration: 0, config: cfg }
    }

    fn score_of(space: &ConfigSpace) -> impl Fn(&Config) -> EvalResult + Sync + '_ {
        let idx = space.index_of("shared_buffers").unwrap();
        move |cfg: &Config| EvalResult {
            score: Some(cfg.values()[idx].as_float()),
            ..Default::default()
        }
    }

    #[test]
    fn results_are_positionally_aligned_at_any_worker_count() {
        let space = postgres_v9_6();
        let trials: Vec<Trial> = (1..=17).map(|i| trial(&space, i * 1000)).collect();
        let expected: Vec<f64> = (1..=17).map(|i| (i * 1000) as f64).collect();
        for workers in [1, 2, 3, 8, 32] {
            let mut ex = ParallelExecutor::new(workers, score_of(&space));
            let scores: Vec<f64> =
                ex.run_batch(&trials).into_iter().map(|r| r.score.unwrap()).collect();
            assert_eq!(scores, expected, "workers = {workers}");
        }
    }

    #[test]
    fn cache_short_circuits_repeats_and_batch_duplicates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let space = postgres_v9_6();
        let evals = AtomicUsize::new(0);
        let idx = space.index_of("shared_buffers").unwrap();
        let eval = |cfg: &Config| {
            evals.fetch_add(1, Ordering::SeqCst);
            EvalResult { score: Some(cfg.values()[idx].as_float()), ..Default::default() }
        };
        let cache = Arc::new(EvalCache::new());
        let mut ex = ParallelExecutor::new(2, eval).with_cache(cache.clone());
        // Batch with an internal duplicate: 3 trials, 2 distinct configs.
        let batch = vec![trial(&space, 1000), trial(&space, 2000), trial(&space, 1000)];
        let r1 = ex.run_batch(&batch);
        assert_eq!(evals.load(Ordering::SeqCst), 2, "duplicate evaluated once");
        assert_eq!(r1[0].score, r1[2].score);
        // Second round: everything cached.
        let r2 = ex.run_batch(&batch);
        assert_eq!(evals.load(Ordering::SeqCst), 2, "no new evaluations");
        assert_eq!(r2[1].score, Some(2000.0));
        let stats = cache.stats();
        assert_eq!(stats.hits, 3, "second round served from cache");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn workload_executor_matches_direct_evaluation() {
        use llamatune_workloads::{suggested_options, ycsb_b, WorkloadRunner};
        let catalog = postgres_v9_6();
        let mut opts = suggested_options("ycsb_b");
        opts.duration_s = 0.2;
        opts.warmup_s = 0.05;
        opts.max_txns = 20_000;
        let runner = WorkloadRunner::new(ycsb_b(), catalog.clone()).with_options(opts);
        let trials: Vec<Trial> = (1..=4).map(|i| trial(&catalog, 16_384 + i * 8_192)).collect();
        let direct: Vec<Option<f64>> =
            trials.iter().map(|t| runner.evaluate(&catalog, &t.config, 7).score).collect();
        for workers in [1, 3] {
            let mut ex = WorkloadExecutor::new(&runner, catalog.clone(), 7, workers);
            let scores: Vec<Option<f64>> =
                ex.run_batch(&trials).into_iter().map(|r| r.score).collect();
            assert_eq!(scores, direct, "workers = {workers}");
        }
    }

    #[test]
    fn quarantine_snapshot_keeps_statuses_worker_count_independent() {
        use llamatune_workloads::{AttemptOutcome, FaultPlan, FaultyRunner};
        // A plan aggressive enough that several configs fail terminally.
        struct Flat;
        impl TrialRunner for Flat {
            fn evaluate_attempt(
                &self,
                _space: &ConfigSpace,
                _config: &Config,
                _seed: u64,
                _attempt: u32,
            ) -> AttemptOutcome {
                AttemptOutcome {
                    score: Some(1.0),
                    metrics: vec![],
                    virtual_ms: 100.0,
                    retryable: false,
                }
            }
        }
        let catalog = postgres_v9_6();
        let plan = FaultPlan { seed: 3, panic_per_mille: 250, ..Default::default() };
        let batches: Vec<Vec<Trial>> = (0..3)
            .map(|round| {
                (0..8).map(|i| trial(&catalog, 1_000 + round * 8_000 + i * 1_000)).collect()
            })
            .collect();
        // Round 2 repeats round 0's configs: by then the failed ones are
        // quarantined, and that disposition must not depend on workers.
        let mut rounds = batches.clone();
        rounds.push(batches[0].clone());

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence injected panics
        let mut per_worker: Vec<Vec<TrialStatus>> = Vec::new();
        for workers in [1, 4] {
            let runner = Arc::new(FaultyRunner::new(Arc::new(Flat), plan)) as Arc<dyn TrialRunner>;
            let mut ex = WorkloadExecutor::from_trial_runner(runner, catalog.clone(), 7, workers);
            let mut statuses = Vec::new();
            for batch in &rounds {
                for r in ex.run_batch(batch) {
                    statuses.push(r.status);
                }
            }
            assert!(ex.quarantine_len() > 0, "plan must quarantine something");
            assert!(
                statuses.contains(&TrialStatus::Quarantined),
                "repeated round must hit quarantine"
            );
            per_worker.push(statuses);
        }
        std::panic::set_hook(prev);
        assert_eq!(per_worker[0], per_worker[1], "statuses depend on worker count");
    }
}

//! Parallel trial executors.
//!
//! Both executors here implement [`TrialExecutor`] by splitting a batch
//! into contiguous chunks, one per worker, and evaluating the chunks on
//! scoped threads. Results land in positional slots, so the returned
//! vector is aligned with the input batch no matter which worker finishes
//! first — the property `run_session_parallel` relies on for
//! worker-count-independent histories.
//!
//! [`WorkloadExecutor`] is the DBMS-benchmark instantiation: every worker
//! owns its own [`WorkloadRunner`] clone (cheap — runners are Arc-backed)
//! and an optional shared [`EvalCache`] short-circuits configurations
//! that were already measured.

use crate::cache::{config_key, CacheStats, EvalCache};
use llamatune::session::{EvalResult, Trial, TrialExecutor};
use llamatune_space::{Config, ConfigSpace};
use llamatune_workloads::WorkloadRunner;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluates `jobs` across `slots.len()`-aligned chunks, one worker per
/// chunk, calling `eval(worker_index, job_index, config)`.
fn eval_chunked<F>(workers: usize, jobs: &[&Config], eval: F) -> Vec<EvalResult>
where
    F: Fn(usize, usize, &Config) -> EvalResult + Sync,
{
    let n = jobs.len();
    let mut out: Vec<Option<EvalResult>> = vec![None; n];
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, cfg) in jobs.iter().enumerate() {
            out[i] = Some(eval(0, i, cfg));
        }
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (w, slots) in out.chunks_mut(chunk).enumerate() {
                let eval = &eval;
                let base = w * chunk;
                let jobs = &jobs[base..base + slots.len()];
                scope.spawn(move || {
                    for (off, (slot, cfg)) in slots.iter_mut().zip(jobs).enumerate() {
                        *slot = Some(eval(w, base + off, cfg));
                    }
                });
            }
        });
    }
    out.into_iter().map(|r| r.expect("every slot evaluated")).collect()
}

/// Runs a batch through the cache: cached configurations short-circuit,
/// within-batch duplicates are evaluated once, and fresh results are
/// recorded. `eval_all` receives only the configurations that actually
/// need a run and must return results positionally.
fn run_batch_cached(
    cache: &EvalCache,
    trials: &[Trial],
    eval_all: impl FnOnce(&[&Config]) -> Vec<EvalResult>,
) -> Vec<EvalResult> {
    let mut resolved: Vec<Option<EvalResult>> = vec![None; trials.len()];
    // Key -> index into `unique` for within-batch duplicates.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new(); // trial indices to evaluate
    let mut dup_of: Vec<(usize, usize)> = Vec::new(); // (trial, unique slot)
    for (i, t) in trials.iter().enumerate() {
        if let Some(hit) = cache.lookup(&t.config) {
            resolved[i] = Some(hit);
            continue;
        }
        match seen.entry(config_key(&t.config)) {
            std::collections::hash_map::Entry::Occupied(e) => dup_of.push((i, *e.get())),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(unique.len());
                unique.push(i);
            }
        }
    }
    let configs: Vec<&Config> = unique.iter().map(|&i| &trials[i].config).collect();
    let fresh = eval_all(&configs);
    assert_eq!(fresh.len(), configs.len(), "eval_all must be positional");
    for (&i, r) in unique.iter().zip(&fresh) {
        cache.insert(&trials[i].config, r.clone());
        resolved[i] = Some(r.clone());
    }
    for (i, u) in dup_of {
        resolved[i] = Some(fresh[u].clone());
    }
    resolved.into_iter().map(|r| r.expect("resolved or evaluated")).collect()
}

/// A [`TrialExecutor`] over an arbitrary `Sync` objective closure,
/// evaluated by a pool of scoped worker threads. Useful for synthetic
/// objectives in tests and benchmarks; DBMS campaigns use
/// [`WorkloadExecutor`].
pub struct ParallelExecutor<F: Fn(&Config) -> EvalResult + Sync> {
    workers: usize,
    eval: F,
    cache: Option<Arc<EvalCache>>,
}

impl<F: Fn(&Config) -> EvalResult + Sync> ParallelExecutor<F> {
    /// Creates an executor evaluating with `workers` threads.
    pub fn new(workers: usize, eval: F) -> Self {
        ParallelExecutor { workers: workers.max(1), eval, cache: None }
    }

    /// Attaches a (possibly shared) evaluation cache.
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache's statistics, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }
}

impl<F: Fn(&Config) -> EvalResult + Sync> TrialExecutor for ParallelExecutor<F> {
    fn run_batch(&mut self, trials: &[Trial]) -> Vec<EvalResult> {
        let eval_all =
            |configs: &[&Config]| eval_chunked(self.workers, configs, |_, _, cfg| (self.eval)(cfg));
        match &self.cache {
            Some(cache) => run_batch_cached(cache, trials, eval_all),
            None => {
                let configs: Vec<&Config> = trials.iter().map(|t| &t.config).collect();
                eval_all(&configs)
            }
        }
    }

    fn max_parallelism(&self) -> usize {
        self.workers
    }
}

/// The DBMS-benchmark [`TrialExecutor`]: one [`WorkloadRunner`] per
/// worker, a fixed evaluation seed (the paper evaluates every
/// configuration of a session under the same simulated conditions), and
/// an optional deduplicating cache.
pub struct WorkloadExecutor {
    runners: Vec<WorkloadRunner>,
    space: ConfigSpace,
    eval_seed: u64,
    cache: Option<Arc<EvalCache>>,
}

impl WorkloadExecutor {
    /// Creates an executor with `workers` runner clones. `space` is the
    /// tuned knob space (may be a subset of the runner's catalog);
    /// `eval_seed` drives the simulated benchmark.
    pub fn new(
        runner: &WorkloadRunner,
        space: ConfigSpace,
        eval_seed: u64,
        workers: usize,
    ) -> Self {
        let workers = workers.max(1);
        WorkloadExecutor {
            runners: (0..workers).map(|_| runner.clone()).collect(),
            space,
            eval_seed,
            cache: None,
        }
    }

    /// Attaches a (possibly shared) evaluation cache. Share a cache only
    /// between executors with the same workload and evaluation seed.
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache's statistics, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }
}

impl TrialExecutor for WorkloadExecutor {
    fn run_batch(&mut self, trials: &[Trial]) -> Vec<EvalResult> {
        let (runners, space, seed) = (&self.runners, &self.space, self.eval_seed);
        let eval_all = |configs: &[&Config]| {
            eval_chunked(runners.len(), configs, |w, _, cfg| {
                let out = runners[w].evaluate(space, cfg, seed);
                EvalResult { score: out.score, metrics: out.result.metrics }
            })
        };
        match &self.cache {
            Some(cache) => run_batch_cached(cache, trials, eval_all),
            None => {
                let configs: Vec<&Config> = trials.iter().map(|t| &t.config).collect();
                eval_all(&configs)
            }
        }
    }

    fn max_parallelism(&self) -> usize {
        self.runners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;
    use llamatune_space::KnobValue;

    fn trial(space: &ConfigSpace, sb: i64) -> Trial {
        let mut cfg = space.default_config();
        let idx = space.index_of("shared_buffers").unwrap();
        cfg.values_mut()[idx] = KnobValue::Int(sb);
        Trial { iteration: 0, config: cfg }
    }

    fn score_of(space: &ConfigSpace) -> impl Fn(&Config) -> EvalResult + Sync + '_ {
        let idx = space.index_of("shared_buffers").unwrap();
        move |cfg: &Config| EvalResult {
            score: Some(cfg.values()[idx].as_float()),
            metrics: vec![],
        }
    }

    #[test]
    fn results_are_positionally_aligned_at_any_worker_count() {
        let space = postgres_v9_6();
        let trials: Vec<Trial> = (1..=17).map(|i| trial(&space, i * 1000)).collect();
        let expected: Vec<f64> = (1..=17).map(|i| (i * 1000) as f64).collect();
        for workers in [1, 2, 3, 8, 32] {
            let mut ex = ParallelExecutor::new(workers, score_of(&space));
            let scores: Vec<f64> =
                ex.run_batch(&trials).into_iter().map(|r| r.score.unwrap()).collect();
            assert_eq!(scores, expected, "workers = {workers}");
        }
    }

    #[test]
    fn cache_short_circuits_repeats_and_batch_duplicates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let space = postgres_v9_6();
        let evals = AtomicUsize::new(0);
        let idx = space.index_of("shared_buffers").unwrap();
        let eval = |cfg: &Config| {
            evals.fetch_add(1, Ordering::SeqCst);
            EvalResult { score: Some(cfg.values()[idx].as_float()), metrics: vec![] }
        };
        let cache = Arc::new(EvalCache::new());
        let mut ex = ParallelExecutor::new(2, eval).with_cache(cache.clone());
        // Batch with an internal duplicate: 3 trials, 2 distinct configs.
        let batch = vec![trial(&space, 1000), trial(&space, 2000), trial(&space, 1000)];
        let r1 = ex.run_batch(&batch);
        assert_eq!(evals.load(Ordering::SeqCst), 2, "duplicate evaluated once");
        assert_eq!(r1[0].score, r1[2].score);
        // Second round: everything cached.
        let r2 = ex.run_batch(&batch);
        assert_eq!(evals.load(Ordering::SeqCst), 2, "no new evaluations");
        assert_eq!(r2[1].score, Some(2000.0));
        let stats = cache.stats();
        assert_eq!(stats.hits, 3, "second round served from cache");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn workload_executor_matches_direct_evaluation() {
        use llamatune_workloads::{suggested_options, ycsb_b, WorkloadRunner};
        let catalog = postgres_v9_6();
        let mut opts = suggested_options("ycsb_b");
        opts.duration_s = 0.2;
        opts.warmup_s = 0.05;
        opts.max_txns = 20_000;
        let runner = WorkloadRunner::new(ycsb_b(), catalog.clone()).with_options(opts);
        let trials: Vec<Trial> = (1..=4).map(|i| trial(&catalog, 16_384 + i * 8_192)).collect();
        let direct: Vec<Option<f64>> =
            trials.iter().map(|t| runner.evaluate(&catalog, &t.config, 7).score).collect();
        for workers in [1, 3] {
            let mut ex = WorkloadExecutor::new(&runner, catalog.clone(), 7, workers);
            let scores: Vec<Option<f64>> =
                ex.run_batch(&trials).into_iter().map(|r| r.score).collect();
            assert_eq!(scores, direct, "workers = {workers}");
        }
    }
}

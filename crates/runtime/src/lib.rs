//! # llamatune-runtime: the parallel trial-execution runtime
//!
//! The paper's tuning loop is strictly sequential: suggest one
//! configuration, run the benchmark, observe, repeat. On real hardware
//! that leaves every core but one idle during the expensive part — the
//! benchmark run. This crate turns the loop into a campaign engine:
//!
//! * [`ParallelExecutor`] / [`WorkloadExecutor`] — `TrialExecutor`s that
//!   spread a batch of decoded configurations over scoped worker
//!   threads, each worker owning its own [`WorkloadRunner`] clone
//!   (cheap: runners are Arc-backed). Results return in batch order, so
//!   histories are worker-count independent.
//! * [`BatchSuggest`] — extracts q > 1 *diverse* suggestions per round
//!   from any unmodified [`Optimizer`] via constant-liar fantasizing:
//!   observe a pessimistic pseudo-score for each pending point, suggest
//!   again, retract the lies (rebuild + replay) when real results land.
//! * [`EvalCache`] — deduplicates evaluations by a canonical hash of the
//!   decoded configuration. LlamaTune's bucketization collapses many
//!   suggestions onto identical configs, so repeats are common by
//!   design; the cache makes them free and reports hit statistics.
//! * [`ExecutionPolicy`] — trial-level fault tolerance: per-attempt
//!   watchdog timeouts on the *virtual* clock, bounded retry with
//!   deterministic backoff (`llamatune::backoff`), straggler hedging
//!   for batch rounds, panic isolation per worker, and quarantine of
//!   configurations that failed terminally. Paired with
//!   `llamatune_workloads::FaultyRunner` (seeded fault injection) it
//!   makes campaigns survivable under chaos while keeping histories a
//!   pure function of seeds. Failures never abort a campaign: they are
//!   recorded with the paper's §6 penalty score and a
//!   `TrialStatus`/attempt count, and `GuardedOptimizer` (optim crate)
//!   degrades suggestion to random search if the optimizer itself
//!   fails.
//! * [`SessionDriver`] — drives ONE (workload, adapter, optimizer,
//!   seed) cell through the whole trial loop: warm start, quarantine
//!   preload, batched suggestion, evaluation via any `TrialExecutor`,
//!   per-trial checkpointing, and resume from a recorded round
//!   boundary. Every higher-level entry point — `Campaign`, the
//!   `llamatune-server` daemon, the bench bins — is a thin loop over
//!   this one driver, which is what makes their histories comparable
//!   byte for byte.
//! * [`Campaign`] — fans a (workload × adapter × optimizer × seed) grid
//!   across the pool and yields the same [`SessionHistory`] per session
//!   that the sequential path produces. `Campaign::run_attached` is the
//!   single entry point; [`CampaignAttachments`] selects what the run
//!   persists: `with_log` appends per-trial events to a JSONL sink
//!   (flushed as each session completes, so partial campaigns keep
//!   their transcript), `with_store` checkpoints every trial into a
//!   persistent `llamatune_store::TrialStore` (crash-survivable —
//!   `Campaign::resume` continues bit-identically from the last
//!   recorded round boundary — and warm-startable from
//!   fingerprint-similar past campaigns), and `with_fleet` scales the
//!   same contract to N workers registered as shared writers on one
//!   store backend (local directory or S3-style object store —
//!   `llamatune_store::backend`), leasing sessions and appending into
//!   one common knowledge base; killing any worker and re-running
//!   converges to the identical exported history.
//!
//! [`WorkloadRunner`]: llamatune_workloads::WorkloadRunner
//! [`Optimizer`]: llamatune_optim::Optimizer
//! [`SessionHistory`]: llamatune::session::SessionHistory
//!
//! ## Reproducibility contract
//!
//! A session's recorded history is a pure function of (adapter seed,
//! optimizer seed, session seed, batch size). Worker counts and session
//! parallelism change only wall-clock time: results are joined by
//! iteration index, penalties and early stopping are folded in iteration
//! order, and evaluation itself is deterministic per seed. The
//! `determinism` integration test pins this down bit-for-bit.

pub mod batch;
pub mod cache;
pub mod campaign;
pub mod driver;
pub mod executor;
pub mod options;
pub mod policy;

pub use batch::{BatchSuggest, LiarStrategy, OptimizerFactory, RetractionMode};
pub use cache::{config_key, CacheStats, EvalCache};
pub use campaign::{
    AdapterKind, Campaign, CampaignAttachments, CampaignOptions, CampaignResult, CampaignSpec,
    OptimizerKind, WarmStartOptions,
};
pub use driver::{CellSpec, EventSink, SessionDriver};
pub use executor::{ParallelExecutor, WorkloadExecutor};
pub use options::{CampaignOptionsBuilder, OptionsError};
pub use policy::{ExecutionPolicy, FaultStatsSnapshot};

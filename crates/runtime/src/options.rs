//! Validating builder for [`CampaignOptions`]: nonsensical option
//! combinations fail at construction, not ten minutes into a campaign.
//!
//! Every field keeps its [`CampaignOptions::default`] value unless set,
//! so the builder reads like a diff against the defaults:
//!
//! ```
//! use llamatune_runtime::CampaignOptions;
//!
//! let opts = CampaignOptions::builder()
//!     .batch_size(8)
//!     .trial_workers(8)
//!     .session_parallelism(2)
//!     .build()
//!     .unwrap();
//! assert_eq!(opts.batch_size, 8);
//! assert!(CampaignOptions::builder().trial_workers(0).build().is_err());
//! ```

use crate::campaign::{CampaignOptions, WarmStartOptions};
use crate::policy::ExecutionPolicy;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_obs::trace::Tracer;
use llamatune_obs::{MetricsRegistry, ProgressSink};
use llamatune_workloads::FaultPlan;
use std::fmt;
use std::sync::Arc;

/// Why a [`CampaignOptionsBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptionsError {
    /// `trial_workers == 0`: no thread would ever evaluate a trial.
    ZeroTrialWorkers,
    /// `batch_size == 0`: no round could ever suggest anything.
    ZeroBatchSize,
    /// `session_parallelism == 0`: no lane would ever run a session.
    ZeroSessionParallelism,
    /// `cache_capacity == Some(0)`: a zero-entry cache can never hold
    /// a result, so every lookup misses — disable the cache instead.
    ZeroCacheCapacity,
    /// A cache capacity was given while the cache itself is disabled.
    CacheCapacityWithoutCache,
    /// A fault plan was set under a policy with no failure response at
    /// all (one attempt, no watchdog, no hedging, no quarantine):
    /// injected faults would be recorded but nothing would ever react,
    /// which is never what a chaos run means to test.
    FaultPlanWithInertPolicy,
    /// `warm_start.k == 0`: transfer enabled but zero points requested.
    ZeroWarmStartPoints,
    /// `warm_start.max_distance` is negative or not finite — no
    /// fingerprint could ever match.
    InvalidWarmStartDistance,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::ZeroTrialWorkers => {
                write!(f, "trial_workers must be >= 1 (no thread would evaluate trials)")
            }
            OptionsError::ZeroBatchSize => {
                write!(f, "batch_size must be >= 1 (no round could suggest anything)")
            }
            OptionsError::ZeroSessionParallelism => {
                write!(f, "session_parallelism must be >= 1 (no lane would run sessions)")
            }
            OptionsError::ZeroCacheCapacity => {
                write!(f, "cache_capacity 0 can never hold a result; disable the cache instead")
            }
            OptionsError::CacheCapacityWithoutCache => {
                write!(f, "cache_capacity was set but the cache is disabled")
            }
            OptionsError::FaultPlanWithInertPolicy => {
                write!(
                    f,
                    "a fault_plan under a fully inert policy (one attempt, no watchdog, \
                     no hedging, no quarantine) injects faults nothing responds to"
                )
            }
            OptionsError::ZeroWarmStartPoints => {
                write!(f, "warm_start.k must be >= 1 (transfer enabled but zero points)")
            }
            OptionsError::InvalidWarmStartDistance => {
                write!(f, "warm_start.max_distance must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// Builder behind [`CampaignOptions::builder`]. Setters mirror the
/// [`CampaignOptions`] fields one to one; [`CampaignOptionsBuilder::build`]
/// validates the combination.
#[derive(Default)]
pub struct CampaignOptionsBuilder {
    opts: CampaignOptions,
}

impl CampaignOptionsBuilder {
    pub(crate) fn new() -> Self {
        CampaignOptionsBuilder::default()
    }

    /// Per-session loop parameters (iterations, n_init, early stop).
    pub fn session(mut self, session: SessionOptions) -> Self {
        self.opts.session = session;
        self
    }

    /// Trials per suggest→evaluate round.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.opts.batch_size = batch_size;
        self
    }

    /// Worker threads evaluating one session's batch.
    pub fn trial_workers(mut self, trial_workers: usize) -> Self {
        self.opts.trial_workers = trial_workers;
        self
    }

    /// Sessions running concurrently.
    pub fn session_parallelism(mut self, session_parallelism: usize) -> Self {
        self.opts.session_parallelism = session_parallelism;
        self
    }

    /// Constant-liar batch wrapping (see
    /// [`CampaignOptions::constant_liar`]).
    pub fn constant_liar(mut self, constant_liar: bool) -> Self {
        self.opts.constant_liar = constant_liar;
        self
    }

    /// Per-session evaluation dedup cache.
    pub fn cache(mut self, cache: bool) -> Self {
        self.opts.cache = cache;
        self
    }

    /// Capacity bound of the per-session cache.
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.opts.cache_capacity = Some(cache_capacity);
        self
    }

    /// Warm-start transfer from similar stored campaigns.
    pub fn warm_start(mut self, warm_start: WarmStartOptions) -> Self {
        self.opts.warm_start = Some(warm_start);
        self
    }

    /// Simulation-window override for the workload runner.
    pub fn run_options(mut self, run_options: RunOptions) -> Self {
        self.opts.run_options = Some(run_options);
        self
    }

    /// Deterministic fault injection plan (chaos testing).
    pub fn fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.opts.fault_plan = Some(fault_plan);
        self
    }

    /// Trial-level fault-tolerance policy.
    pub fn policy(mut self, policy: ExecutionPolicy) -> Self {
        self.opts.policy = policy;
        self
    }

    /// Optimizer guarding (degrade to random search on optimizer
    /// failure instead of killing the session).
    pub fn guard(mut self, guard: bool) -> Self {
        self.opts.guard = guard;
        self
    }

    /// Structured-trace sink shared by every session.
    pub fn tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.opts.tracer = tracer;
        self
    }

    /// Live progress sink shared by every session.
    pub fn progress(mut self, progress: Arc<dyn ProgressSink>) -> Self {
        self.opts.progress = Some(progress);
        self
    }

    /// Campaign-wide live metrics registry.
    pub fn live_metrics(mut self, live_metrics: Arc<MetricsRegistry>) -> Self {
        self.opts.live_metrics = Some(live_metrics);
        self
    }

    /// Validates the combination and yields the options.
    pub fn build(self) -> Result<CampaignOptions, OptionsError> {
        let o = &self.opts;
        if o.trial_workers == 0 {
            return Err(OptionsError::ZeroTrialWorkers);
        }
        if o.batch_size == 0 {
            return Err(OptionsError::ZeroBatchSize);
        }
        if o.session_parallelism == 0 {
            return Err(OptionsError::ZeroSessionParallelism);
        }
        match (o.cache, o.cache_capacity) {
            (_, Some(0)) => return Err(OptionsError::ZeroCacheCapacity),
            (false, Some(_)) => return Err(OptionsError::CacheCapacityWithoutCache),
            _ => {}
        }
        if o.fault_plan.is_some() && policy_is_inert(&o.policy) {
            return Err(OptionsError::FaultPlanWithInertPolicy);
        }
        if let Some(ws) = &o.warm_start {
            if ws.k == 0 {
                return Err(OptionsError::ZeroWarmStartPoints);
            }
            if !ws.max_distance.is_finite() || ws.max_distance < 0.0 {
                return Err(OptionsError::InvalidWarmStartDistance);
            }
        }
        Ok(self.opts)
    }
}

/// A policy with no failure response whatsoever: single attempt, no
/// watchdog, no hedging, no quarantine. (The *default* policy is not
/// inert in this sense — quarantine is on, so crashed configurations
/// are at least penalty-scored without re-running.)
fn policy_is_inert(p: &ExecutionPolicy) -> bool {
    p.max_attempts <= 1 && !p.timeout_ms.is_finite() && !p.hedge_ms.is_finite() && !p.quarantine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_clean() {
        let opts = CampaignOptions::builder().build().unwrap();
        let d = CampaignOptions::default();
        assert_eq!(opts.batch_size, d.batch_size);
        assert_eq!(opts.trial_workers, d.trial_workers);
        assert_eq!(opts.cache, d.cache);
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert_eq!(
            CampaignOptions::builder().trial_workers(0).build().unwrap_err(),
            OptionsError::ZeroTrialWorkers
        );
        assert_eq!(
            CampaignOptions::builder().batch_size(0).build().unwrap_err(),
            OptionsError::ZeroBatchSize
        );
        assert_eq!(
            CampaignOptions::builder().session_parallelism(0).build().unwrap_err(),
            OptionsError::ZeroSessionParallelism
        );
        assert_eq!(
            CampaignOptions::builder().cache_capacity(0).build().unwrap_err(),
            OptionsError::ZeroCacheCapacity
        );
    }

    #[test]
    fn cache_capacity_requires_the_cache() {
        assert_eq!(
            CampaignOptions::builder().cache(false).cache_capacity(128).build().unwrap_err(),
            OptionsError::CacheCapacityWithoutCache
        );
        assert!(CampaignOptions::builder().cache(true).cache_capacity(128).build().is_ok());
    }

    #[test]
    fn fault_plan_needs_a_responsive_policy() {
        let inert = ExecutionPolicy { quarantine: false, ..ExecutionPolicy::default() };
        let err = CampaignOptions::builder()
            .fault_plan(FaultPlan::default())
            .policy(inert)
            .build()
            .unwrap_err();
        assert_eq!(err, OptionsError::FaultPlanWithInertPolicy);
        // The default policy responds (quarantine), as does a hardened one.
        assert!(CampaignOptions::builder().fault_plan(FaultPlan::default()).build().is_ok());
        assert!(CampaignOptions::builder()
            .fault_plan(FaultPlan::default())
            .policy(ExecutionPolicy::hardened())
            .build()
            .is_ok());
    }

    #[test]
    fn warm_start_bounds_are_validated() {
        assert_eq!(
            CampaignOptions::builder()
                .warm_start(WarmStartOptions { k: 0, max_distance: 0.5 })
                .build()
                .unwrap_err(),
            OptionsError::ZeroWarmStartPoints
        );
        assert_eq!(
            CampaignOptions::builder()
                .warm_start(WarmStartOptions { k: 3, max_distance: f64::NAN })
                .build()
                .unwrap_err(),
            OptionsError::InvalidWarmStartDistance
        );
        assert_eq!(
            CampaignOptions::builder()
                .warm_start(WarmStartOptions { k: 3, max_distance: -0.1 })
                .build()
                .unwrap_err(),
            OptionsError::InvalidWarmStartDistance
        );
        assert!(CampaignOptions::builder().warm_start(WarmStartOptions::default()).build().is_ok());
    }

    #[test]
    fn errors_render_a_reason() {
        let msg = OptionsError::ZeroTrialWorkers.to_string();
        assert!(msg.contains("trial_workers"), "{msg}");
    }
}

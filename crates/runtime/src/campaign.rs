//! The campaign driver: fans a grid of tuning sessions across a thread
//! pool.
//!
//! A campaign is the cross product (workload × adapter × optimizer ×
//! seed). Sessions are distributed over `session_parallelism` scoped
//! threads; inside each session, trials are batched
//! (`run_session_parallel`) and evaluated by a [`WorkloadExecutor`] with
//! `trial_workers` workers — two independent levers on the same pool.
//! Per-trial [`TrialEvent`]s are appended to a JSONL log whose format
//! lives in `llamatune::history_io`, so the sequential tooling (curve
//! rebuilding, early-stopping replay) reads campaign transcripts
//! unchanged.
//!
//! Determinism: every session's history is a pure function of
//! (workload, adapter, optimizer, session seed, batch size). Neither
//! `trial_workers` nor `session_parallelism` influences any recorded
//! number — they only change wall-clock time.

use crate::batch::BatchSuggest;
use crate::cache::{CacheStats, EvalCache};
use crate::executor::WorkloadExecutor;
use llamatune::history_io::{events_to_jsonl, history_to_events, TrialEvent};
use llamatune::pipeline::{
    IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline, SearchSpaceAdapter,
};
use llamatune::session::{run_session_parallel, SessionHistory, SessionOptions};
use llamatune_engine::RunOptions;
use llamatune_optim::Optimizer;
use llamatune_space::ConfigSpace;
use llamatune_workloads::{workload_by_name, WorkloadRunner};
use std::sync::{Arc, Mutex};

/// Which search-space adapter a campaign arm uses.
#[derive(Debug, Clone)]
pub enum AdapterKind {
    /// One optimizer dimension per knob (the vanilla baseline).
    Identity,
    /// The full LlamaTune pipeline (projection + biasing + bucketization).
    LlamaTune(LlamaTuneConfig),
}

impl AdapterKind {
    /// Short label used in session names.
    pub fn label(&self) -> &'static str {
        match self {
            AdapterKind::Identity => "identity",
            AdapterKind::LlamaTune(_) => "llamatune",
        }
    }

    /// Builds the adapter over `space`, seeded per session (the
    /// projection matrix varies with the seed, as in the paper).
    pub fn build(&self, space: &ConfigSpace, seed: u64) -> Box<dyn SearchSpaceAdapter> {
        match self {
            AdapterKind::Identity => Box::new(IdentityAdapter::new(space)),
            AdapterKind::LlamaTune(cfg) => Box::new(LlamaTunePipeline::new(space, cfg, seed)),
        }
    }
}

pub use llamatune_optim::OptimizerKind;

/// The session grid of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Workload names (must resolve via `workload_by_name`).
    pub workloads: Vec<String>,
    /// Adapter arms.
    pub adapters: Vec<AdapterKind>,
    /// Optimizer arms.
    pub optimizers: Vec<OptimizerKind>,
    /// Session seeds.
    pub seeds: Vec<u64>,
}

/// Execution knobs of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Per-session loop parameters (iterations, n_init, early stop; the
    /// per-cell session seed overrides `session.seed`).
    pub session: SessionOptions,
    /// Trials per suggest→evaluate round (q of the constant liar).
    pub batch_size: usize,
    /// Worker threads evaluating one session's batch.
    pub trial_workers: usize,
    /// Sessions running concurrently.
    pub session_parallelism: usize,
    /// Wrap optimizers in constant-liar [`BatchSuggest`] when
    /// `batch_size > 1` (otherwise batches fall back to the optimizer's
    /// naive `suggest_batch`).
    pub constant_liar: bool,
    /// Deduplicate evaluations through a per-session [`EvalCache`].
    pub cache: bool,
    /// Override the runner's simulation window (tests and benches use
    /// shorter windows than the per-workload defaults).
    pub run_options: Option<RunOptions>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            session: SessionOptions::default(),
            batch_size: 4,
            trial_workers: 4,
            session_parallelism: 1,
            constant_liar: true,
            cache: true,
            run_options: None,
        }
    }
}

/// One finished session of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// `workload/adapter/optimizer/s<seed>`.
    pub label: String,
    pub workload: String,
    pub adapter: String,
    pub optimizer: String,
    pub seed: u64,
    pub history: SessionHistory,
    /// Cache counters, when the campaign ran with a cache.
    pub cache: Option<CacheStats>,
}

/// A configured campaign, ready to run.
pub struct Campaign {
    catalog: ConfigSpace,
    spec: CampaignSpec,
    opts: CampaignOptions,
}

struct Cell {
    label: String,
    workload: String,
    adapter: AdapterKind,
    optimizer: OptimizerKind,
    seed: u64,
}

/// Shared append-and-flush handle over the caller's log writer; the
/// first write error is kept and surfaced after the campaign finishes.
struct LogSink<'a> {
    sink: Mutex<&'a mut (dyn std::io::Write + Send)>,
    error: Mutex<Option<std::io::Error>>,
}

impl LogSink<'_> {
    fn append(&self, chunk: &str) {
        let mut sink = self.sink.lock().unwrap();
        let outcome = sink.write_all(chunk.as_bytes()).and_then(|()| sink.flush());
        if let Err(e) = outcome {
            self.error.lock().unwrap().get_or_insert(e);
        }
    }
}

impl Campaign {
    /// Creates a campaign tuning `catalog` over the given grid.
    pub fn new(catalog: ConfigSpace, spec: CampaignSpec, opts: CampaignOptions) -> Self {
        Campaign { catalog, spec, opts }
    }

    fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for w in &self.spec.workloads {
            for a in &self.spec.adapters {
                for o in &self.spec.optimizers {
                    for &seed in &self.spec.seeds {
                        cells.push(Cell {
                            label: format!("{w}/{}/{}/s{seed}", a.label(), o.label()),
                            workload: w.clone(),
                            adapter: a.clone(),
                            optimizer: *o,
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Runs every session of the grid, discarding the event stream.
    pub fn run(&self) -> Vec<CampaignResult> {
        self.run_inner(None)
    }

    /// Runs every session, appending per-trial JSONL events to `sink` as
    /// each session finishes (and flushing after each append), so a
    /// campaign killed partway keeps the transcript of every completed
    /// session. Events of concurrent sessions interleave at session
    /// granularity; `llamatune::history_io::session_curves` regroups
    /// them. The first write error aborts no sessions but is returned at
    /// the end.
    pub fn run_with_log(
        &self,
        sink: &mut (dyn std::io::Write + Send),
    ) -> std::io::Result<Vec<CampaignResult>> {
        let log = LogSink { sink: Mutex::new(sink), error: Mutex::new(None) };
        let results = self.run_inner(Some(&log));
        match log.error.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }

    fn run_session_cell(&self, cell: &Cell, log: Option<&LogSink<'_>>) -> CampaignResult {
        let spec = workload_by_name(&cell.workload)
            .unwrap_or_else(|| panic!("unknown workload {:?}", cell.workload));
        let mut runner = WorkloadRunner::new(spec, self.catalog.clone());
        if let Some(run_opts) = self.opts.run_options.clone() {
            runner = runner.with_options(run_opts);
        }
        let adapter = cell.adapter.build(&self.catalog, cell.seed);

        let base_spec = adapter.optimizer_spec().clone();
        let kind = cell.optimizer;
        let seed = cell.seed;
        let optimizer: Box<dyn Optimizer> = if self.opts.constant_liar && self.opts.batch_size > 1 {
            Box::new(BatchSuggest::new(Box::new(move || kind.build(&base_spec, seed))))
        } else {
            kind.build(&base_spec, seed)
        };

        // Evaluation seed: fixed per session, derived from the session
        // seed exactly as the sequential harness does.
        let eval_seed = cell.seed ^ 0x5EED;
        let cache = self.opts.cache.then(|| Arc::new(EvalCache::new()));
        let mut executor = WorkloadExecutor::new(
            &runner,
            self.catalog.clone(),
            eval_seed,
            self.opts.trial_workers,
        );
        if let Some(c) = &cache {
            executor = executor.with_cache(c.clone());
        }

        let session_opts = SessionOptions { seed: cell.seed, ..self.opts.session.clone() };
        let history = run_session_parallel(
            adapter.as_ref(),
            optimizer,
            &mut executor,
            &session_opts,
            self.opts.batch_size,
        );

        if let Some(log) = log {
            let events: Vec<TrialEvent> = history_to_events(&cell.label, &history);
            log.append(&events_to_jsonl(&events));
        }

        CampaignResult {
            label: cell.label.clone(),
            workload: cell.workload.clone(),
            adapter: cell.adapter.label().to_string(),
            optimizer: cell.optimizer.label().to_string(),
            seed: cell.seed,
            history,
            cache: cache.map(|c| c.stats()),
        }
    }

    fn run_inner(&self, log: Option<&LogSink<'_>>) -> Vec<CampaignResult> {
        let cells = self.cells();
        let lanes = self.opts.session_parallelism.clamp(1, cells.len().max(1));
        let mut results: Vec<Option<CampaignResult>> = (0..cells.len()).map(|_| None).collect();
        if lanes <= 1 {
            for (slot, cell) in results.iter_mut().zip(&cells) {
                *slot = Some(self.run_session_cell(cell, log));
            }
        } else {
            let chunk = cells.len().div_ceil(lanes);
            std::thread::scope(|scope| {
                for (slots, cell_chunk) in results.chunks_mut(chunk).zip(cells.chunks(chunk)) {
                    scope.spawn(move || {
                        for (slot, cell) in slots.iter_mut().zip(cell_chunk) {
                            *slot = Some(self.run_session_cell(cell, log));
                        }
                    });
                }
            });
        }
        results.into_iter().map(|r| r.expect("session ran")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;

    fn quick_opts() -> CampaignOptions {
        let run_opts =
            RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
        CampaignOptions {
            session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
            batch_size: 3,
            trial_workers: 2,
            session_parallelism: 2,
            run_options: Some(run_opts),
            ..Default::default()
        }
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            workloads: vec!["ycsb_b".into(), "ycsb_f".into()],
            adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
            optimizers: vec![OptimizerKind::Random],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn campaign_covers_the_grid_and_logs_every_trial() {
        let campaign = Campaign::new(postgres_v9_6(), small_spec(), quick_opts());
        let mut log = Vec::new();
        let results = campaign.run_with_log(&mut log).unwrap();
        assert_eq!(results.len(), 4, "2 workloads x 1 adapter x 1 optimizer x 2 seeds");
        for r in &results {
            assert_eq!(r.history.scores.len(), 9, "{}: default + 8 iterations", r.label);
            assert!(r.history.best_score().is_some());
        }
        // The JSONL log replays into the same curves.
        let text = String::from_utf8(log).unwrap();
        let events = llamatune::history_io::events_from_jsonl(&text).unwrap();
        let curves = llamatune::history_io::session_curves(&events).unwrap();
        assert_eq!(curves.len(), 4);
        for r in &results {
            let (scores, raw) = &curves[&r.label];
            assert_eq!(scores, &r.history.scores);
            assert_eq!(raw, &r.history.raw_scores);
        }
    }

    #[test]
    fn session_parallelism_does_not_change_results() {
        let sequential = Campaign::new(
            postgres_v9_6(),
            small_spec(),
            CampaignOptions { session_parallelism: 1, ..quick_opts() },
        )
        .run();
        let parallel = Campaign::new(
            postgres_v9_6(),
            small_spec(),
            CampaignOptions { session_parallelism: 4, ..quick_opts() },
        )
        .run();
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.history.scores, b.history.scores);
        }
    }
}

//! The campaign scheduler: fans a grid of tuning sessions across a
//! thread pool.
//!
//! A campaign is the cross product (workload × adapter × optimizer ×
//! seed). Each cell runs through one [`SessionDriver`] — the single
//! execution path shared with the `llamatune-server` daemon — and the
//! campaign layer only decides *where* drivers run: inline, across
//! `session_parallelism` scoped threads, or pulled from a queue by a
//! fleet of shared-store writers. Attachments ([`CampaignAttachments`])
//! compose the durability and observability seams: a JSONL event log, a
//! persistent [`TrialStore`], or a fleet of shared writers over one
//! [`StoreBackend`].
//!
//! Determinism: every session's history is a pure function of
//! (workload, adapter, optimizer, session seed, batch size). Neither
//! `trial_workers` nor `session_parallelism` nor fleet worker counts
//! influence any recorded number — they only change wall-clock time.

use crate::cache::{lock_recover, CacheStats};
use crate::driver::{CellSpec, EventSink, LogSink, SessionDriver};
use crate::policy::{ExecutionPolicy, FaultStatsSnapshot};
use llamatune::pipeline::{
    IdentityAdapter, LlamaTuneConfig, LlamaTunePipeline, SearchSpaceAdapter,
};
use llamatune::session::{SessionHistory, SessionOptions};
use llamatune_engine::RunOptions;
use llamatune_obs::trace::{FanoutTracer, NoopTracer, RecordingTracer, Tracer};
use llamatune_obs::{MetricsRegistry, MetricsSnapshot, ProgressSink};
use llamatune_space::ConfigSpace;
use llamatune_store::{StoreBackend, StoreOptions, TrialStore};
use llamatune_workloads::FaultPlan;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which search-space adapter a campaign arm uses.
#[derive(Debug, Clone)]
pub enum AdapterKind {
    /// One optimizer dimension per knob (the vanilla baseline).
    Identity,
    /// The full LlamaTune pipeline (projection + biasing + bucketization).
    LlamaTune(LlamaTuneConfig),
}

impl AdapterKind {
    /// Short label used in session names.
    pub fn label(&self) -> &'static str {
        match self {
            AdapterKind::Identity => "identity",
            AdapterKind::LlamaTune(_) => "llamatune",
        }
    }

    /// Builds the adapter over `space`, seeded per session (the
    /// projection matrix varies with the seed, as in the paper).
    pub fn build(&self, space: &ConfigSpace, seed: u64) -> Box<dyn SearchSpaceAdapter> {
        match self {
            AdapterKind::Identity => Box::new(IdentityAdapter::new(space)),
            AdapterKind::LlamaTune(cfg) => Box::new(LlamaTunePipeline::new(space, cfg, seed)),
        }
    }

    /// Full identity of the adapter a session decodes through: kind,
    /// every hyperparameter, and the projection seed. Two sessions map
    /// optimizer-space points to the same configurations iff their
    /// identity tags are equal — the precondition for transferring
    /// points between them (recorded in the store's session metadata).
    pub fn identity_tag(&self, seed: u64) -> String {
        match self {
            AdapterKind::Identity => format!("identity/s{seed}"),
            AdapterKind::LlamaTune(cfg) => {
                let bias = match cfg.special_value_bias {
                    Some(p) => format!("{p}"),
                    None => "off".to_string(),
                };
                let buckets = match cfg.bucket_count {
                    Some(k) => format!("{k}"),
                    None => "off".to_string(),
                };
                format!(
                    "llamatune-d{}-{:?}-b{bias}-k{buckets}/s{seed}",
                    cfg.target_dim, cfg.projection
                )
                .to_lowercase()
            }
        }
    }
}

pub use llamatune_optim::OptimizerKind;

/// The session grid of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Workload names (must resolve via `workload_by_name`).
    pub workloads: Vec<String>,
    /// Adapter arms.
    pub adapters: Vec<AdapterKind>,
    /// Optimizer arms.
    pub optimizers: Vec<OptimizerKind>,
    /// Session seeds.
    pub seeds: Vec<u64>,
}

/// How a store-backed campaign warm-starts sessions from past
/// campaigns (see `llamatune_store::transfer`).
#[derive(Debug, Clone)]
pub struct WarmStartOptions {
    /// Number of initial trials seeded from the matched session's top
    /// configurations (capped by the session's `n_init`).
    pub k: usize,
    /// Maximum fingerprint cosine distance for a match; farther
    /// sessions are ignored and the session falls back to pure LHS.
    pub max_distance: f64,
}

impl Default for WarmStartOptions {
    fn default() -> Self {
        WarmStartOptions { k: 5, max_distance: 0.25 }
    }
}

/// Execution knobs of a campaign. Construct directly (every field is
/// public, `Default` is sensible) or through the validating
/// [`CampaignOptions::builder`], which rejects nonsensical
/// combinations at build time instead of mid-campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Per-session loop parameters (iterations, n_init, early stop; the
    /// per-cell session seed overrides `session.seed`).
    pub session: SessionOptions,
    /// Trials per suggest→evaluate round (q of the constant liar).
    pub batch_size: usize,
    /// Worker threads evaluating one session's batch.
    pub trial_workers: usize,
    /// Sessions running concurrently.
    pub session_parallelism: usize,
    /// Wrap optimizers in constant-liar [`BatchSuggest`] when
    /// `batch_size > 1` (otherwise batches fall back to the optimizer's
    /// naive `suggest_batch`). Store-backed campaigns wrap whenever
    /// this is set, regardless of batch size: the wrapper's
    /// rebuild-and-replay state model is what makes resumed optimizer
    /// state bit-identical.
    ///
    /// [`BatchSuggest`]: crate::BatchSuggest
    pub constant_liar: bool,
    /// Deduplicate evaluations through a per-session
    /// [`EvalCache`](crate::EvalCache).
    pub cache: bool,
    /// Capacity bound of the per-session cache (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Warm-start sessions from similar stored campaigns (store-backed
    /// campaigns only; `None` disables transfer).
    pub warm_start: Option<WarmStartOptions>,
    /// Override the runner's simulation window (tests and benches use
    /// shorter windows than the per-workload defaults).
    pub run_options: Option<RunOptions>,
    /// Deterministic fault injection: wrap every session's runner in a
    /// [`FaultyRunner`](llamatune_workloads::FaultyRunner) with this
    /// plan (`None` = faults off). Chaos testing only; the plan's seed
    /// is part of the determinism contract, exactly like the session
    /// seed.
    pub fault_plan: Option<FaultPlan>,
    /// Trial-level fault-tolerance policy (watchdog, retry, hedging,
    /// quarantine). The default is inert on healthy evaluations.
    pub policy: ExecutionPolicy,
    /// Wrap each session's optimizer in a `GuardedOptimizer`: a panic
    /// or numerical failure inside the optimizer degrades that round to
    /// random-search suggestions (recorded in
    /// `SessionHistory::degradations`) instead of killing the session.
    /// Pass-through on healthy runs — the fallback RNG advances only on
    /// degradation.
    pub guard: bool,
    /// Structured-trace sink shared by every session of the campaign;
    /// each session labels its spans with its cell label. The default
    /// [`NoopTracer`] keeps tracing compiled-out-cheap; pass a
    /// `RecordingTracer` to capture the campaign's span stream.
    /// Strictly out-of-band: recorded histories and checkpoints are
    /// byte-identical with tracing on or off.
    pub tracer: Arc<dyn Tracer>,
    /// Live progress sink shared by every session: one
    /// [`llamatune_obs::ProgressUpdate`] per completed round, emitted
    /// from the session fold path while the campaign runs. `None` (the
    /// default) emits nothing. Like the tracer, strictly out-of-band.
    pub progress: Option<Arc<dyn ProgressSink>>,
    /// Campaign-wide live metrics registry: when set, every session's
    /// private registry forwards its writes here
    /// ([`MetricsRegistry::with_parent`]), so a
    /// [`llamatune_obs::MetricsExporter`] scraping this registry sees
    /// the whole campaign accumulate in real time. Per-session
    /// snapshots in [`CampaignResult::metrics`] stay session-scoped
    /// either way.
    pub live_metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            session: SessionOptions::default(),
            batch_size: 4,
            trial_workers: 4,
            session_parallelism: 1,
            constant_liar: true,
            cache: true,
            cache_capacity: None,
            warm_start: None,
            run_options: None,
            fault_plan: None,
            policy: ExecutionPolicy::default(),
            guard: true,
            tracer: Arc::new(NoopTracer),
            progress: None,
            live_metrics: None,
        }
    }
}

impl CampaignOptions {
    /// A validating builder over these options — see
    /// [`CampaignOptionsBuilder`](crate::CampaignOptionsBuilder).
    pub fn builder() -> crate::options::CampaignOptionsBuilder {
        crate::options::CampaignOptionsBuilder::new()
    }
}

/// One finished session of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// `workload/adapter/optimizer/s<seed>`.
    pub label: String,
    pub workload: String,
    pub adapter: String,
    pub optimizer: String,
    pub seed: u64,
    pub history: SessionHistory,
    /// Cache counters, when the campaign ran with a cache. Hits count
    /// only healthy repeats: failed evaluations are never cached, so
    /// re-encounters of poisoned configurations show up in
    /// [`CampaignResult::faults`] as quarantine hits instead.
    pub cache: Option<CacheStats>,
    /// What the execution-policy layer did: timeouts, retries, caught
    /// panics, quarantine short-circuits, hedges. All zero under the
    /// inert default policy on healthy workloads — except
    /// `quarantine_hits`, which fires whenever a crashed configuration
    /// is re-suggested.
    ///
    /// This is a typed view over `metrics` (the `policy.*` counters);
    /// kept for ergonomic access and compatibility.
    pub faults: FaultStatsSnapshot,
    /// Full per-session metrics snapshot: fault counters, cache
    /// counters, and the `session.*_ms` phase-latency histograms.
    /// Empty for sessions rebuilt from a store without running.
    pub metrics: MetricsSnapshot,
}

/// Where a campaign's sessions persist and report — the composable
/// attachment set of [`Campaign::run_attached`]. All attachments are
/// optional; the default runs fully in memory.
///
/// * `with_log` — per-trial JSONL events appended (and flushed) as each
///   session finishes, readable by `llamatune::history_io`.
/// * `with_store` — every trial checkpointed to a [`TrialStore`];
///   finished sessions rebuild for free, interrupted ones resume
///   byte-identically.
/// * `with_fleet` — N workers register as shared writers on one
///   [`StoreBackend`] and pull sessions from a shared queue. Mutually
///   exclusive with the other two (fleet transcripts live in the
///   store).
#[derive(Default)]
pub struct CampaignAttachments<'a> {
    log: Option<&'a mut (dyn std::io::Write + Send)>,
    store: Option<&'a TrialStore>,
    fleet: Option<FleetAttachment>,
}

/// Fleet parameters of [`CampaignAttachments::with_fleet`].
struct FleetAttachment {
    backend: Arc<dyn StoreBackend>,
    workers: usize,
    store_opts: StoreOptions,
}

impl<'a> CampaignAttachments<'a> {
    /// No attachments: run in memory, discard the event stream.
    pub fn new() -> Self {
        CampaignAttachments::default()
    }

    /// Appends per-trial JSONL events to `sink` as each session
    /// finishes (flushing after each append), so a campaign killed
    /// partway keeps the transcript of every completed session. Events
    /// of concurrent sessions interleave at session granularity;
    /// `llamatune::history_io::session_curves` regroups them. The first
    /// write error aborts no sessions but is returned at the end.
    pub fn with_log(mut self, sink: &'a mut (dyn std::io::Write + Send)) -> Self {
        self.log = Some(sink);
        self
    }

    /// Checkpoints every session into a persistent [`TrialStore`]:
    /// finished sessions are rebuilt without re-running anything,
    /// interrupted sessions resume from their last recorded round
    /// boundary, and fresh sessions can warm-start from
    /// fingerprint-similar past campaigns
    /// ([`CampaignOptions::warm_start`]).
    pub fn with_store(mut self, store: &'a TrialStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Runs the campaign as a *fleet*: `workers` threads each register
    /// as a shared writer on `backend` (tags `w0..`, via
    /// [`TrialStore::open_shared`]) and pull sessions from a shared
    /// queue, so N workers append into one knowledge base — local
    /// directory or object store alike.
    pub fn with_fleet(
        mut self,
        backend: Arc<dyn StoreBackend>,
        workers: usize,
        store_opts: StoreOptions,
    ) -> Self {
        self.fleet = Some(FleetAttachment { backend, workers, store_opts });
        self
    }
}

/// A configured campaign, ready to run.
pub struct Campaign {
    catalog: ConfigSpace,
    spec: CampaignSpec,
    opts: CampaignOptions,
}

impl Campaign {
    /// Creates a campaign tuning `catalog` over the given grid.
    pub fn new(catalog: ConfigSpace, spec: CampaignSpec, opts: CampaignOptions) -> Self {
        Campaign { catalog, spec, opts }
    }

    /// The campaign's session grid in run order — one [`CellSpec`] per
    /// (workload × adapter × optimizer × seed) combination, each
    /// directly runnable through a [`SessionDriver`].
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for w in &self.spec.workloads {
            for a in &self.spec.adapters {
                for o in &self.spec.optimizers {
                    for &seed in &self.spec.seeds {
                        cells.push(CellSpec::new(w.clone(), a.clone(), *o, seed));
                    }
                }
            }
        }
        cells
    }

    /// Runs every session of the grid in memory, discarding the event
    /// stream.
    pub fn run(&self) -> Vec<CampaignResult> {
        self.run_attached(CampaignAttachments::new())
            .expect("in-memory campaign performs no fallible I/O")
    }

    /// Runs every session of the grid with the given attachment set —
    /// the single entry point behind [`Campaign::run`], the
    /// deprecated `run_with_*` shims, and [`Campaign::resume`].
    pub fn run_attached(
        &self,
        attachments: CampaignAttachments<'_>,
    ) -> std::io::Result<Vec<CampaignResult>> {
        let CampaignAttachments { log, store, fleet } = attachments;
        if let Some(fleet) = fleet {
            if store.is_some() || log.is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "a fleet campaign persists through its shared store; \
                     store/log attachments cannot be combined with it",
                ));
            }
            return self.run_fleet(fleet.backend, fleet.workers, fleet.store_opts);
        }
        self.publish_worker_budget();
        if let Some(store) = store {
            store.set_tracer(self.opts.tracer.clone());
        }
        let log = log.map(LogSink::new);
        let events: Option<&dyn EventSink> = log.as_ref().map(|l| l as &dyn EventSink);
        let results = self.run_lanes(&self.cells(), |cell| {
            let mut driver = SessionDriver::new(&self.catalog, &self.opts, cell.clone());
            if let Some(store) = store {
                driver = driver.with_store(store);
            }
            if let Some(events) = events {
                driver = driver.with_events(events);
            }
            driver.run()
        })?;
        if let Some(store) = store {
            self.persist_telemetry(store.backend().as_ref(), "local", &results)?;
        }
        if let Some(log) = log {
            if let Some(e) = log.take_error() {
                return Err(e);
            }
        }
        Ok(results)
    }

    /// Distributes `cells` over `session_parallelism` scoped threads in
    /// contiguous chunks, preserving grid order in the result.
    fn run_lanes(
        &self,
        cells: &[CellSpec],
        run_cell: impl Fn(&CellSpec) -> std::io::Result<CampaignResult> + Sync,
    ) -> std::io::Result<Vec<CampaignResult>> {
        let lanes = self.opts.session_parallelism.clamp(1, cells.len().max(1));
        let mut results: Vec<Option<std::io::Result<CampaignResult>>> =
            (0..cells.len()).map(|_| None).collect();
        if lanes <= 1 {
            for (slot, cell) in results.iter_mut().zip(cells) {
                *slot = Some(run_cell(cell));
            }
        } else {
            let chunk = cells.len().div_ceil(lanes);
            std::thread::scope(|scope| {
                for (slots, cell_chunk) in results.chunks_mut(chunk).zip(cells.chunks(chunk)) {
                    let run_cell = &run_cell;
                    scope.spawn(move || {
                        for (slot, cell) in slots.iter_mut().zip(cell_chunk) {
                            *slot = Some(run_cell(cell));
                        }
                    });
                }
            });
        }
        results.into_iter().map(|r| r.expect("session ran")).collect()
    }

    /// Runs every session, appending per-trial JSONL events to `sink`.
    #[doc(hidden)]
    pub fn run_with_log(
        &self,
        sink: &mut (dyn std::io::Write + Send),
    ) -> std::io::Result<Vec<CampaignResult>> {
        self.run_attached(CampaignAttachments::new().with_log(sink))
    }

    /// Runs the campaign against a persistent [`TrialStore`].
    #[doc(hidden)]
    pub fn run_with_store(&self, store: &TrialStore) -> std::io::Result<Vec<CampaignResult>> {
        self.run_attached(CampaignAttachments::new().with_store(store))
    }

    /// Resumes (or starts) the campaign from a persistent store: every
    /// completed trial is flushed to the store before the next round is
    /// suggested, sessions already recorded as finished are
    /// reconstructed without re-running anything, and interrupted
    /// sessions resume from their last recorded round boundary. Calling
    /// this on an empty store is simply a checkpointed run — open the
    /// store a crashed process left behind, call `resume`, and the
    /// campaign continues where it stopped.
    ///
    /// Determinism: a campaign checkpointed into a store, killed at any
    /// trial boundary, and resumed produces a byte-identical exported
    /// event history to the same campaign run uninterrupted (pinned by
    /// `crates/store/tests/checkpoint_resume.rs`). The guarantee
    /// requires `constant_liar` (the default): optimizer state is then
    /// a pure function of the recorded observation history.
    ///
    /// With [`CampaignOptions::warm_start`] set, a session starting
    /// from scratch probes its workload's fingerprint and seeds its
    /// first *k* initialization trials from the most similar finished
    /// session in the store (matching adapter and seed, so transferred
    /// points decode identically). The chosen warm points are persisted
    /// in the session's metadata — a resume reuses them verbatim even
    /// if the store has since learned better candidates.
    pub fn resume(&self, store: &TrialStore) -> std::io::Result<Vec<CampaignResult>> {
        self.run_attached(CampaignAttachments::new().with_store(store))
    }

    /// Runs the campaign as a fleet of shared-store writers.
    #[doc(hidden)]
    pub fn run_shared(
        &self,
        backend: Arc<dyn StoreBackend>,
        workers: usize,
        store_opts: StoreOptions,
    ) -> std::io::Result<Vec<CampaignResult>> {
        self.run_attached(CampaignAttachments::new().with_fleet(backend, workers, store_opts))
    }

    /// The fleet path: `workers` threads each register as a shared
    /// writer on `backend` and pull sessions from a shared queue. Each
    /// worker leases the sessions it runs through
    /// [`llamatune_store::SessionMeta::lease`], refreshes its merged
    /// view of the store before every claim (finished sessions are
    /// rebuilt without re-evaluation, and warm-start transfer sees what
    /// the whole fleet has learned so far), and checkpoints per trial
    /// exactly like the single-store path.
    ///
    /// Crash/resume semantics are the fleet generalization of the
    /// single-store contract: kill any worker (or the whole fleet) at
    /// any point, run the fleet again with any worker count, and the
    /// store's exported event history converges to the uninterrupted
    /// run's, byte for byte — sessions are pure functions of their
    /// recorded history, dead workers' partial rounds are re-run
    /// deterministically, and dead workers' registered active segments
    /// are reclaimed by the next fleet. A worker that fails to open the
    /// store steps aside — its error surfaces only for sessions no
    /// healthy worker ended up running. A worker that hits a storage
    /// error mid-session reports it for that session and moves on; the
    /// first error is returned after every queued session has been
    /// attempted.
    fn run_fleet(
        &self,
        backend: Arc<dyn StoreBackend>,
        workers: usize,
        store_opts: StoreOptions,
    ) -> std::io::Result<Vec<CampaignResult>> {
        self.publish_worker_budget();
        let cells = self.cells();
        let workers = workers.clamp(1, cells.len().max(1));
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<std::io::Result<CampaignResult>>>> =
            (0..cells.len()).map(|_| Mutex::new(None)).collect();
        let open_failure: Mutex<Option<String>> = Mutex::new(None);
        let telemetry_failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tag = format!("w{w}");
                let (next, results, cells) = (&next, &results, &cells);
                let open_failure = &open_failure;
                let telemetry_failure = &telemetry_failure;
                let backend = backend.clone();
                let store_opts = store_opts.clone();
                scope.spawn(move || {
                    let store = match TrialStore::open_shared(backend, &tag, store_opts) {
                        Ok(store) => store,
                        Err(e) => {
                            // Step aside: the healthy workers drain the
                            // whole queue; this error only surfaces for
                            // sessions no worker ended up running.
                            lock_recover(open_failure).get_or_insert(format!("worker {tag}: {e}"));
                            return;
                        }
                    };
                    // Tee this worker's spans into a private recorder:
                    // the shared tracer keeps the campaign-wide stream
                    // (exported as `telemetry-fleet.*`), the recorder
                    // becomes the per-writer `telemetry-<tag>.*` pair.
                    let traced = self.opts.tracer.enabled();
                    let recorder = Arc::new(RecordingTracer::new());
                    let tracer: Arc<dyn Tracer> = if traced {
                        Arc::new(FanoutTracer::new(recorder.clone(), self.opts.tracer.clone()))
                    } else {
                        self.opts.tracer.clone()
                    };
                    store.set_tracer(tracer.clone());
                    let mut worker_metrics: Vec<MetricsSnapshot> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= cells.len() {
                            break;
                        }
                        let res = store.refresh().and_then(|()| {
                            SessionDriver::new(&self.catalog, &self.opts, cells[i].clone())
                                .with_store(&store)
                                .with_tracer(tracer.clone())
                                .run()
                        });
                        if let Ok(r) = &res {
                            worker_metrics.push(r.metrics.clone());
                        }
                        *lock_recover(&results[i]) = Some(res);
                    }
                    if traced {
                        if let Err(e) =
                            persist_worker_telemetry(&store, &tag, &recorder, &worker_metrics)
                        {
                            lock_recover(telemetry_failure).get_or_insert(e);
                        }
                    }
                });
            }
        });
        let open_failure = open_failure.into_inner().unwrap_or_else(|e| e.into_inner());
        let results: Vec<CampaignResult> = results
            .into_iter()
            .zip(&cells)
            .map(|(slot, cell)| {
                slot.into_inner().unwrap_or_else(|e| e.into_inner()).unwrap_or_else(|| {
                    Err(std::io::Error::other(match &open_failure {
                        Some(msg) => format!(
                            "session {} never ran: a fleet worker failed to open the store ({msg})",
                            cell.label
                        ),
                        None => {
                            format!("fleet worker died before running session {}", cell.label)
                        }
                    }))
                })
            })
            .collect::<std::io::Result<_>>()?;
        if let Some(e) = telemetry_failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        self.persist_telemetry(backend.as_ref(), "fleet", &results)?;
        Ok(results)
    }

    /// Writes the campaign's telemetry (`telemetry-<tag>.trace.jsonl`
    /// and `telemetry-<tag>.metrics.json`) next to the trial segments
    /// — only when a live tracer is installed, so untraced runs leave
    /// backend contents byte-identical. Telemetry objects never match
    /// the `seg-` pattern and never enter the manifest, so they cannot
    /// perturb recovery or checkpoint bytes either way. The metrics
    /// object merges every session's registry with the process-global
    /// registry (optimizer hot-path timings, store CAS retries).
    fn persist_telemetry(
        &self,
        backend: &dyn StoreBackend,
        tag: &str,
        results: &[CampaignResult],
    ) -> std::io::Result<()> {
        let tracer = &self.opts.tracer;
        if !tracer.enabled() {
            return Ok(());
        }
        if let Some(jsonl) = tracer.export_jsonl() {
            backend.put(&format!("telemetry-{tag}.trace.jsonl"), jsonl.as_bytes())?;
        }
        let mut merged = MetricsSnapshot::merged(results.iter().map(|r| &r.metrics));
        merged.merge(&llamatune_obs::global().snapshot());
        backend.put(&format!("telemetry-{tag}.metrics.json"), merged.to_json().as_bytes())
    }

    /// Publishes the campaign's trial-worker count as the process-global
    /// budget for blocked factorizations and sparse-surrogate builds
    /// ([`llamatune_math::set_worker_budget`]). Those kernels are
    /// bit-identical at any worker count, so sharing one global across
    /// concurrent campaigns only affects speed, never results.
    fn publish_worker_budget(&self) {
        llamatune_math::set_worker_budget(self.opts.trial_workers);
    }
}

/// Persists one fleet worker's private telemetry pair
/// (`telemetry-<tag>.trace.jsonl` / `telemetry-<tag>.metrics.json`)
/// through its shared store handle. The trace holds exactly the spans
/// this worker recorded; the metrics snapshot folds the sessions it ran
/// — deliberately *without* the process-global registry, which is
/// shared across workers and belongs to the fleet-level pair only
/// (counting it per worker would multiply it by the worker count in
/// the merged view).
fn persist_worker_telemetry(
    store: &TrialStore,
    tag: &str,
    recorder: &RecordingTracer,
    worker_metrics: &[MetricsSnapshot],
) -> std::io::Result<()> {
    if let Some(jsonl) = recorder.export_jsonl() {
        store.put_telemetry(&format!("{tag}.trace.jsonl"), jsonl.as_bytes())?;
    }
    let merged = MetricsSnapshot::merged(worker_metrics.iter());
    store.put_telemetry(&format!("{tag}.metrics.json"), merged.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;
    use llamatune_store::SessionStatus;

    fn quick_opts() -> CampaignOptions {
        let run_opts =
            RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
        CampaignOptions {
            session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
            batch_size: 3,
            trial_workers: 2,
            session_parallelism: 2,
            run_options: Some(run_opts),
            ..Default::default()
        }
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            workloads: vec!["ycsb_b".into(), "ycsb_f".into()],
            adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
            optimizers: vec![OptimizerKind::Random],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn campaign_covers_the_grid_and_logs_every_trial() {
        let campaign = Campaign::new(postgres_v9_6(), small_spec(), quick_opts());
        let mut log = Vec::new();
        let results = campaign.run_with_log(&mut log).unwrap();
        assert_eq!(results.len(), 4, "2 workloads x 1 adapter x 1 optimizer x 2 seeds");
        for r in &results {
            assert_eq!(r.history.scores.len(), 9, "{}: default + 8 iterations", r.label);
            assert!(r.history.best_score().is_some());
        }
        // The JSONL log replays into the same curves.
        let text = String::from_utf8(log).unwrap();
        let events = llamatune::history_io::events_from_jsonl(&text).unwrap();
        let curves = llamatune::history_io::session_curves(&events).unwrap();
        assert_eq!(curves.len(), 4);
        for r in &results {
            let (scores, raw) = &curves[&r.label];
            assert_eq!(scores, &r.history.scores);
            assert_eq!(raw, &r.history.raw_scores);
        }
    }

    fn tmp_store(tag: &str) -> TrialStore {
        let dir = std::env::temp_dir()
            .join("llamatune_campaign_store")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TrialStore::open(dir).unwrap()
    }

    #[test]
    fn store_backed_campaign_matches_plain_run_and_resumes_for_free() {
        let campaign = Campaign::new(postgres_v9_6(), small_spec(), quick_opts());
        let plain = campaign.run();
        let store = tmp_store("match_plain");
        let stored = campaign.run_with_store(&store).unwrap();
        assert_eq!(plain.len(), stored.len());
        for (a, b) in plain.iter().zip(&stored) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.history.scores, b.history.scores);
            assert_eq!(a.history.raw_scores, b.history.raw_scores);
            assert_eq!(a.history.points, b.history.points);
        }
        // Every trial of every session is persisted, plus Done metadata.
        assert_eq!(store.trial_count(), 4 * 9);
        for r in &stored {
            let m = store.session_meta(&r.label).expect("meta recorded");
            assert_eq!(m.status, SessionStatus::Done);
            assert!(!m.fingerprint.is_empty(), "fingerprint probed and persisted");
        }
        // Resuming a finished campaign re-evaluates nothing: the trial
        // record count is unchanged and histories are rebuilt bit-equal.
        let records_before = store.trial_records();
        let resumed = campaign.resume(&store).unwrap();
        assert_eq!(store.trial_records(), records_before, "no re-evaluation on resume");
        for (a, b) in stored.iter().zip(&resumed) {
            assert_eq!(a.history.scores, b.history.scores);
            assert_eq!(a.history.best_curve, b.history.best_curve);
            assert_eq!(a.history.configs, b.history.configs);
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn store_campaign_with_parallel_sessions_checkpoints_everything() {
        let opts = CampaignOptions { session_parallelism: 4, ..quick_opts() };
        let campaign = Campaign::new(postgres_v9_6(), small_spec(), opts);
        let store = tmp_store("parallel_lanes");
        let results = campaign.run_with_store(&store).unwrap();
        assert_eq!(results.len(), 4);
        // Concurrent lanes interleave appends; the export still regroups
        // into exactly the recorded histories.
        let events = store.export_events();
        let curves = llamatune::history_io::session_curves(&events).unwrap();
        assert_eq!(curves.len(), 4);
        for r in &results {
            let (scores, raw) = &curves[&r.label];
            assert_eq!(scores, &r.history.scores);
            assert_eq!(raw, &r.history.raw_scores);
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn warm_start_seeds_init_from_a_similar_stored_session() {
        let catalog = postgres_v9_6();
        // Source campaign: ycsb_a with SMAC, finished and stored.
        let source_spec = CampaignSpec {
            workloads: vec!["ycsb_a".into()],
            optimizers: vec![OptimizerKind::Smac],
            ..small_spec()
        };
        let mut opts = quick_opts();
        opts.session_parallelism = 1;
        let store = tmp_store("warm");
        Campaign::new(catalog.clone(), source_spec, opts.clone()).run_with_store(&store).unwrap();
        // Target campaign: ycsb_f (fingerprint-adjacent), warm start on.
        let target_spec = CampaignSpec {
            workloads: vec!["ycsb_f".into()],
            optimizers: vec![OptimizerKind::Smac],
            seeds: vec![1],
            ..small_spec()
        };
        opts.warm_start = Some(WarmStartOptions { k: 2, max_distance: 1.9 });
        let campaign = Campaign::new(catalog, target_spec, opts);
        let results = campaign.run_with_store(&store).unwrap();
        let target = &results[0];
        let meta = store.session_meta(&target.label).unwrap();
        assert_eq!(meta.warm_points.len(), 2, "two points transferred from the source");
        // The transferred points come from the matched source session
        // (same adapter arm, same seed) and show up as the first init
        // trials of the target history, snapped onto the space's grids.
        let source_label = "ycsb_a/llamatune/smac/s1";
        let top = store.top_points(source_label, 2);
        assert_eq!(meta.warm_points, top);
        let adapter = AdapterKind::LlamaTune(LlamaTuneConfig::default()).build(&postgres_v9_6(), 1);
        let spec = adapter.optimizer_spec();
        assert_eq!(target.history.points[1], spec.snap(&top[0]));
        assert_eq!(target.history.points[2], spec.snap(&top[1]));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn adapter_identity_tags_discriminate_every_hyperparameter() {
        let base = LlamaTuneConfig::default();
        let variants = [
            AdapterKind::Identity.identity_tag(1),
            AdapterKind::Identity.identity_tag(2),
            AdapterKind::LlamaTune(base.clone()).identity_tag(1),
            AdapterKind::LlamaTune(base.clone()).identity_tag(2),
            AdapterKind::LlamaTune(LlamaTuneConfig { target_dim: 8, ..base.clone() })
                .identity_tag(1),
            AdapterKind::LlamaTune(LlamaTuneConfig { special_value_bias: None, ..base.clone() })
                .identity_tag(1),
            AdapterKind::LlamaTune(LlamaTuneConfig { bucket_count: Some(64), ..base.clone() })
                .identity_tag(1),
            AdapterKind::LlamaTune(LlamaTuneConfig {
                projection: llamatune::pipeline::ProjectionKind::Rembo,
                ..base.clone()
            })
            .identity_tag(1),
        ];
        let distinct: std::collections::HashSet<&String> = variants.iter().collect();
        assert_eq!(distinct.len(), variants.len(), "every variant gets its own tag: {variants:?}");
        // Equal arms agree, so warm start still matches across campaigns.
        assert_eq!(
            AdapterKind::LlamaTune(base.clone()).identity_tag(3),
            AdapterKind::LlamaTune(base).identity_tag(3),
        );
    }

    #[test]
    fn warm_start_ignores_sessions_with_a_different_adapter_config() {
        // Same label-visible arm ("llamatune"), same seed, but different
        // bucketization: the stored session's points decode differently,
        // so transfer must not borrow them.
        let catalog = postgres_v9_6();
        let coarse = LlamaTuneConfig { bucket_count: Some(16), ..LlamaTuneConfig::default() };
        let source_spec = CampaignSpec {
            workloads: vec!["ycsb_a".into()],
            adapters: vec![AdapterKind::LlamaTune(coarse)],
            optimizers: vec![OptimizerKind::Smac],
            seeds: vec![1],
        };
        let mut opts = quick_opts();
        opts.session_parallelism = 1;
        let store = tmp_store("adapter_mismatch");
        Campaign::new(catalog.clone(), source_spec, opts.clone()).run_with_store(&store).unwrap();
        let target_spec = CampaignSpec {
            workloads: vec!["ycsb_f".into()],
            adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
            optimizers: vec![OptimizerKind::Smac],
            seeds: vec![1],
        };
        opts.warm_start = Some(WarmStartOptions { k: 3, max_distance: 1.9 });
        let results = Campaign::new(catalog, target_spec, opts).run_with_store(&store).unwrap();
        let meta = store.session_meta(&results[0].label).unwrap();
        assert!(
            meta.warm_points.is_empty(),
            "incompatible adapter config must not transfer: {:?}",
            meta.warm_points
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn bounded_cache_campaign_reports_evictions() {
        // Capacity 1: the second distinct *successful* configuration
        // must evict the first. (Failed evaluations are refused by the
        // cache since the fault-tolerance work, so the bound only sees
        // successful trials — this session produces two of them.)
        let opts =
            CampaignOptions { cache_capacity: Some(1), session_parallelism: 1, ..quick_opts() };
        let spec =
            CampaignSpec { seeds: vec![1], workloads: vec!["ycsb_b".into()], ..small_spec() };
        let results = Campaign::new(postgres_v9_6(), spec, opts).run();
        let ok = results[0].history.raw_scores.iter().flatten().count();
        assert!(ok >= 2, "session must land at least two successful trials");
        let stats = results[0].cache.expect("cache enabled");
        assert!(stats.evictions > 0, "a 1-entry cache must evict: {stats:?}");
    }

    #[test]
    fn session_parallelism_does_not_change_results() {
        let sequential = Campaign::new(
            postgres_v9_6(),
            small_spec(),
            CampaignOptions { session_parallelism: 1, ..quick_opts() },
        )
        .run();
        let parallel = Campaign::new(
            postgres_v9_6(),
            small_spec(),
            CampaignOptions { session_parallelism: 4, ..quick_opts() },
        )
        .run();
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.history.scores, b.history.scores);
        }
    }

    #[test]
    fn session_driver_matches_the_campaign_cell() {
        // One driver run per cell reproduces Campaign::run exactly —
        // the campaign is nothing but a scheduler over drivers.
        let catalog = postgres_v9_6();
        let opts = quick_opts();
        let campaign = Campaign::new(catalog.clone(), small_spec(), opts.clone());
        let grid = campaign.run();
        for (cell, expect) in campaign.cells().into_iter().zip(&grid) {
            let solo = SessionDriver::new(&catalog, &opts, cell).run().unwrap();
            assert_eq!(solo.label, expect.label);
            assert_eq!(solo.history.scores, expect.history.scores);
            assert_eq!(solo.history.points, expect.history.points);
        }
    }
}

//! The session driver: one tuning session, from spec to history.
//!
//! [`SessionDriver`] is the single execution path behind every way a
//! session can run — the in-process library surface ([`Campaign`]
//! schedules a grid of drivers), the persistent/checkpointed path (a
//! [`TrialStore`] attachment turns on durability seams: per-trial
//! flushes, resume-from-round-boundary, warm-start transfer, lease
//! takeover), and the tuning-as-a-service path (`llamatune-server`
//! drives the same loop through [`SessionDriver::run_with_executor`],
//! with trial evaluation delegated to a remote client). Because all
//! three surfaces share this one fold, the byte-identity contract —
//! history is a pure function of (adapter seed, optimizer seed, session
//! seed, batch size) — holds across them by construction.
//!
//! Attachments compose builder-style and are all optional:
//!
//! ```no_run
//! use llamatune_runtime::{AdapterKind, CampaignOptions, CellSpec, OptimizerKind, SessionDriver};
//! use llamatune_space::catalog::postgres_v9_6;
//!
//! let catalog = postgres_v9_6();
//! let opts = CampaignOptions::default();
//! let cell = CellSpec::new("ycsb_a", AdapterKind::Identity, OptimizerKind::Smac, 7);
//! let result = SessionDriver::new(&catalog, &opts, cell).run().unwrap();
//! assert!(result.history.best_score().is_some());
//! ```
//!
//! [`Campaign`]: crate::Campaign

use crate::batch::BatchSuggest;
use crate::cache::{lock_recover, CacheStats, EvalCache};
use crate::campaign::{AdapterKind, CampaignOptions, CampaignResult};
use crate::executor::WorkloadExecutor;
use crate::policy::FaultStatsSnapshot;
use llamatune::history_io::{events_to_jsonl, history_to_events, TrialEvent};
use llamatune::pipeline::SearchSpaceAdapter;
use llamatune::session::{
    replay_cutoff, run_session_resumable, SessionHistory, SessionOptions, TrialExecutor,
    TrialRecord,
};
use llamatune_obs::trace::Tracer;
use llamatune_obs::{MetricsRegistry, MetricsSnapshot};
use llamatune_optim::{GuardFactory, GuardedOptimizer, Optimizer, OptimizerKind, SearchSpec};
use llamatune_space::{Config, ConfigSpace};
use llamatune_store::{rebuild_history, SessionMeta, SessionStatus, StoredTrial, TrialStore};
use llamatune_workloads::{
    workload_by_name, workload_fingerprint, FaultyRunner, TrialRunner, WorkloadRunner,
    FINGERPRINT_PROBE_SEED,
};
use std::sync::{Arc, Mutex};

/// One cell of a campaign grid: the full identity of a tuning session.
/// The label (`workload/adapter/optimizer/s<seed>`) is the session's
/// name everywhere — trace spans, store records, wire protocol.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// `workload/adapter/optimizer/s<seed>`.
    pub label: String,
    /// Workload name (must resolve via `workload_by_name`).
    pub workload: String,
    /// Search-space adapter arm.
    pub adapter: AdapterKind,
    /// Optimizer arm.
    pub optimizer: OptimizerKind,
    /// Session seed (also seeds the adapter's projection).
    pub seed: u64,
}

impl CellSpec {
    /// Builds a cell with the canonical label.
    pub fn new(
        workload: impl Into<String>,
        adapter: AdapterKind,
        optimizer: OptimizerKind,
        seed: u64,
    ) -> Self {
        let workload = workload.into();
        let label = format!("{workload}/{}/{}/s{seed}", adapter.label(), optimizer.label());
        CellSpec { label, workload, adapter, optimizer, seed }
    }
}

/// Receives each finished session's per-trial JSONL event block.
/// Implementations must tolerate concurrent appends (sessions finish on
/// different lanes); blocks arrive whole, so events of concurrent
/// sessions interleave at session granularity only.
pub trait EventSink: Sync {
    /// Appends one session's JSONL block (newline-terminated).
    fn append(&self, chunk: &str);
}

/// Shared append-and-flush handle over a caller's log writer; the first
/// write error is kept and surfaced after the campaign finishes.
pub(crate) struct LogSink<'a> {
    pub(crate) sink: Mutex<&'a mut (dyn std::io::Write + Send)>,
    pub(crate) error: Mutex<Option<std::io::Error>>,
}

impl<'a> LogSink<'a> {
    pub(crate) fn new(sink: &'a mut (dyn std::io::Write + Send)) -> Self {
        LogSink { sink: Mutex::new(sink), error: Mutex::new(None) }
    }

    pub(crate) fn take_error(self) -> Option<std::io::Error> {
        self.error.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl EventSink for LogSink<'_> {
    fn append(&self, chunk: &str) {
        // Poison-recovering locks: a panicked session thread must not
        // silence every other session's log appends.
        let mut sink = lock_recover(&self.sink);
        let outcome = sink.write_all(chunk.as_bytes()).and_then(|()| sink.flush());
        if let Err(e) = outcome {
            lock_recover(&self.error).get_or_insert(e);
        }
    }
}

/// Drives one tuning session to completion. Construct with
/// [`SessionDriver::new`], compose attachments (`with_store`,
/// `with_events`, `with_tracer`), then call [`SessionDriver::run`] (the
/// driver owns evaluation: a local [`WorkloadExecutor`] with cache,
/// policy, and fault wiring) or [`SessionDriver::run_with_executor`]
/// (the caller owns evaluation — the server's remote-trial seam).
pub struct SessionDriver<'a> {
    catalog: &'a ConfigSpace,
    opts: &'a CampaignOptions,
    cell: CellSpec,
    store: Option<&'a TrialStore>,
    events: Option<&'a dyn EventSink>,
    tracer: Option<Arc<dyn Tracer>>,
}

impl<'a> SessionDriver<'a> {
    /// A driver for one session of `catalog`, with no attachments.
    pub fn new(catalog: &'a ConfigSpace, opts: &'a CampaignOptions, cell: CellSpec) -> Self {
        SessionDriver { catalog, opts, cell, store: None, events: None, tracer: None }
    }

    /// Attaches a persistent store: every completed trial is flushed
    /// before the next round is suggested, a session the store records
    /// as finished is rebuilt without re-running anything, and an
    /// interrupted session resumes from its last recorded round
    /// boundary — byte-identical to the uninterrupted run. Also turns
    /// on warm-start transfer (when [`CampaignOptions::warm_start`] is
    /// set) and fleet lease takeover for shared stores.
    pub fn with_store(mut self, store: &'a TrialStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches an event sink receiving the session's per-trial JSONL
    /// block when it finishes.
    pub fn with_events(mut self, events: &'a dyn EventSink) -> Self {
        self.events = Some(events);
        self
    }

    /// Overrides the campaign tracer for this session — fleet workers
    /// pass their private [`llamatune_obs::trace::FanoutTracer`] tee
    /// here so per-writer telemetry separates from the campaign stream.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The session's label (`workload/adapter/optimizer/s<seed>`).
    pub fn label(&self) -> &str {
        &self.cell.label
    }

    /// The cell this driver runs.
    pub fn cell(&self) -> &CellSpec {
        &self.cell
    }

    fn tracer(&self) -> Arc<dyn Tracer> {
        self.tracer.clone().unwrap_or_else(|| self.opts.tracer.clone())
    }

    /// Builds this session's search-space adapter (seeded projection).
    pub fn build_adapter(&self) -> Box<dyn SearchSpaceAdapter> {
        self.cell.adapter.build(self.catalog, self.cell.seed)
    }

    /// The failed-terminally configurations of the session's replayed
    /// prefix — what a resuming executor must preload into quarantine so
    /// re-encounters answer from quarantine exactly like the
    /// uninterrupted run. Empty without a store attachment or when the
    /// policy has quarantine off. The server ships these to clients on
    /// session attach; [`SessionDriver::run`] preloads them itself.
    pub fn quarantine_preload(&self) -> Vec<Config> {
        let Some(store) = self.store else { return Vec::new() };
        if !self.opts.policy.quarantine {
            return Vec::new();
        }
        let session_opts = self.session_options(Vec::new());
        let prior = store.prior_trials(&self.cell.label);
        let cut = replay_cutoff(prior.len(), &session_opts, self.opts.batch_size);
        prior[..cut].iter().filter(|t| t.status.is_failure()).map(|t| t.config.clone()).collect()
    }

    /// Runs the session with a driver-owned local executor: the
    /// workload runner (wrapped for seeded fault injection when a plan
    /// is set) under the campaign's execution policy, evaluation cache,
    /// and observability wiring.
    pub fn run(&self) -> std::io::Result<CampaignResult> {
        self.run_internal(None)
    }

    /// Runs the session through a caller-owned executor — the seam the
    /// server uses to delegate evaluation to a remote client. All store
    /// seams (resume, per-trial flush, warm start, lease, completion
    /// metadata) stay active; cache and quarantine preloading are the
    /// caller's responsibility (see
    /// [`SessionDriver::quarantine_preload`]), since the driver cannot
    /// see inside an arbitrary [`TrialExecutor`].
    pub fn run_with_executor(
        &self,
        executor: &mut dyn TrialExecutor,
    ) -> std::io::Result<CampaignResult> {
        self.run_internal(Some(executor))
    }

    fn result(
        &self,
        history: SessionHistory,
        cache: Option<CacheStats>,
        metrics: MetricsSnapshot,
    ) -> CampaignResult {
        CampaignResult {
            label: self.cell.label.clone(),
            workload: self.cell.workload.clone(),
            adapter: self.cell.adapter.label().to_string(),
            optimizer: self.cell.optimizer.label().to_string(),
            seed: self.cell.seed,
            history,
            cache,
            faults: FaultStatsSnapshot::from_metrics(&metrics),
            metrics,
        }
    }

    fn session_options(&self, warm_points: Vec<Vec<f64>>) -> SessionOptions {
        let mut opts = SessionOptions {
            seed: self.cell.seed,
            tracer: self.tracer(),
            trace_label: self.cell.label.clone(),
            progress: self.opts.progress.clone(),
            ..self.opts.session.clone()
        };
        if self.store.is_some() {
            // Store-backed sessions take their warm points from session
            // metadata (recorded once, reused verbatim on resume);
            // plain sessions keep whatever the caller put in
            // `opts.session.warm_points`.
            opts.warm_points = warm_points;
        }
        opts
    }

    fn run_internal(
        &self,
        external: Option<&mut dyn TrialExecutor>,
    ) -> std::io::Result<CampaignResult> {
        let cell = &self.cell;
        let tracer = self.tracer();

        // A session the store knows is finished is rebuilt from its
        // records — zero evaluations.
        let meta = self.store.and_then(|s| s.session_meta(&cell.label));
        if let (Some(store), Some(m)) = (self.store, &meta) {
            if m.status == SessionStatus::Done {
                let history = rebuild_history(&store.trials_for(&cell.label), m.stopped_at);
                // Rebuilt without an executor: nothing ran, no faults.
                return Ok(self.result(history, None, MetricsSnapshot::default()));
            }
        }

        let spec = workload_by_name(&cell.workload)
            .unwrap_or_else(|| panic!("unknown workload {:?}", cell.workload));
        let mut runner = WorkloadRunner::new(spec, self.catalog.clone());
        if let Some(run_opts) = self.opts.run_options.clone() {
            runner = runner.with_options(run_opts);
        }
        let adapter = self.build_adapter();

        // Session metadata (store only): reuse the recorded fingerprint
        // and warm points (determinism across resumes), or probe and
        // match afresh.
        let meta = match self.store {
            None => None,
            Some(store) => Some(match meta {
                Some(mut m) => {
                    // Fleet takeover: a resumed running session is
                    // re-leased to the worker that now owns it (the
                    // previous holder is dead — live fleet workers never
                    // contend for a cell).
                    if let Some(w) = store.writer() {
                        if m.lease.as_deref() != Some(w) {
                            m.lease = Some(w.to_string());
                            store.append_session(&m)?;
                        }
                    }
                    m
                }
                None => {
                    let fingerprint = workload_fingerprint(&runner, FINGERPRINT_PROBE_SEED);
                    let warm_points = self.transfer_warm_points(store, &*adapter, &fingerprint);
                    let m = SessionMeta {
                        session: cell.label.clone(),
                        workload: cell.workload.clone(),
                        adapter: cell.adapter.identity_tag(cell.seed),
                        status: SessionStatus::Running,
                        stopped_at: None,
                        fingerprint,
                        warm_points,
                        lease: store.writer().map(str::to_string),
                    };
                    store.append_session(&m)?;
                    m
                }
            }),
        };

        // Store-backed sessions always wrap under `constant_liar`, even
        // at batch size 1: the wrapper's rebuild-and-replay makes
        // optimizer state a pure function of the recorded history,
        // which is what lets a resume continue bit-identically. Plain
        // sessions wrap only when batching actually happens.
        let wrap_liar = self.store.is_some() || self.opts.batch_size > 1;
        let optimizer = self.build_optimizer(adapter.optimizer_spec().clone(), wrap_liar);

        let metrics = self.session_metrics();
        let session_opts =
            self.session_options(meta.as_ref().map(|m| m.warm_points.clone()).unwrap_or_default());
        let session_opts = SessionOptions { metrics: metrics.clone(), ..session_opts };
        let prior = self.store.map(|s| s.prior_trials(&cell.label)).unwrap_or_default();

        // Local-executor construction, skipped entirely when the caller
        // brought their own (the server's remote-evaluation seam).
        let mut cache: Option<Arc<EvalCache>> = None;
        let mut local: Option<WorkloadExecutor> = None;
        if external.is_none() {
            // Evaluation seed: fixed per session, derived from the
            // session seed exactly as the sequential harness does.
            let eval_seed = cell.seed ^ 0x5EED;
            cache = self.opts.cache.then(|| Arc::new(self.build_cache()));
            let mut executor = self.build_executor(&runner, eval_seed).with_observability(
                metrics.clone(),
                tracer.clone(),
                cell.label.clone(),
            );
            if let (Some(c), Some(store)) = (&cache, self.store) {
                // The persistent half of the evaluation cache: every
                // trial already recorded for this session is a
                // measurement already paid for — a resumed partial round
                // replays from here instead of re-running the DBMS.
                // (Failed trials are refused by the cache; quarantine
                // preloading below covers them.)
                for t in store.trials_for(&cell.label) {
                    c.insert(
                        &Config::new(t.config.clone()),
                        llamatune::session::EvalResult {
                            score: t.raw_score,
                            metrics: t.metrics,
                            status: t.status,
                            attempts: t.attempts,
                            virtual_ms: 0.0,
                        },
                    );
                }
            }
            if let Some(c) = &cache {
                executor = executor.with_cache(c.clone());
            }
            if self.store.is_some() && self.opts.policy.quarantine {
                // Quarantine preload, replayed prefix only:
                // configurations whose recorded trials failed terminally
                // must enter quarantine before the first live round — the
                // uninterrupted run would answer their re-encounters from
                // quarantine, and a byte-identical resume must do the
                // same. Trials past the round boundary are re-run, and
                // re-quarantine themselves.
                let cut = replay_cutoff(prior.len(), &session_opts, self.opts.batch_size);
                executor.preload_quarantine(
                    prior[..cut].iter().filter(|t| t.status.is_failure()).map(|t| &t.config),
                );
            }
            local = Some(executor);
        }

        let mut sink_err: Option<std::io::Error> = None;
        let mut sink = self.store.map(|store| {
            let sink_err = &mut sink_err;
            move |t: TrialRecord<'_>| {
                if sink_err.is_some() {
                    return;
                }
                let rec = StoredTrial {
                    session: cell.label.clone(),
                    iteration: t.iteration,
                    raw_score: t.raw_score,
                    score: t.score,
                    point: t.point.to_vec(),
                    config: t.config.values().to_vec(),
                    metrics: t.metrics.to_vec(),
                    status: t.status,
                    attempts: t.attempts,
                };
                if let Err(e) = store.append_trial(&rec) {
                    *sink_err = Some(e);
                }
            }
        });

        let executor: &mut dyn TrialExecutor = match external {
            Some(e) => e,
            None => local.as_mut().expect("local executor built"),
        };
        let history = run_session_resumable(
            adapter.as_ref(),
            optimizer,
            executor,
            &session_opts,
            self.opts.batch_size,
            &prior,
            sink.as_mut().map(|s| s as &mut dyn FnMut(TrialRecord<'_>)),
        )
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if let Some(e) = sink_err {
            return Err(e);
        }
        if let (Some(store), Some(meta)) = (self.store, meta) {
            store.append_session(&SessionMeta {
                status: SessionStatus::Done,
                stopped_at: history.stopped_at,
                lease: None, // released on completion
                ..meta
            })?;
        }

        if let Some(events) = self.events {
            let evs: Vec<TrialEvent> = history_to_events(&cell.label, &history);
            events.append(&events_to_jsonl(&evs));
        }

        Ok(self.result(history, cache.map(|c| c.stats()), metrics.snapshot()))
    }

    /// Builds the session optimizer stack. Inside out: the raw
    /// optimizer, under constant-liar [`BatchSuggest`] when `wrap_liar`,
    /// under [`GuardedOptimizer`] when `opts.guard`. The guard sits
    /// outermost so its rebuild-and-replay recovery reconstructs the
    /// same batch wrapper the session loop drives.
    fn build_optimizer(&self, spec: SearchSpec, wrap_liar: bool) -> Box<dyn Optimizer> {
        let kind = self.cell.optimizer;
        let seed = self.cell.seed;
        let liar = self.opts.constant_liar && wrap_liar;
        let make: GuardFactory = {
            let spec = spec.clone();
            Box::new(move || -> Box<dyn Optimizer> {
                if liar {
                    let spec = spec.clone();
                    Box::new(BatchSuggest::new(Box::new(move || kind.build(&spec, seed))))
                } else {
                    kind.build(&spec, seed)
                }
            })
        };
        if self.opts.guard {
            Box::new(GuardedOptimizer::new(make, spec, seed))
        } else {
            make()
        }
    }

    /// Builds the trial executor: the workload runner — wrapped for
    /// seeded fault injection when a plan is set — under the campaign's
    /// execution policy.
    fn build_executor(&self, runner: &WorkloadRunner, eval_seed: u64) -> WorkloadExecutor {
        let base: Arc<dyn TrialRunner> = Arc::new(runner.clone());
        let trial_runner: Arc<dyn TrialRunner> = match &self.opts.fault_plan {
            Some(plan) => Arc::new(FaultyRunner::new(base, *plan)),
            None => base,
        };
        WorkloadExecutor::from_trial_runner(
            trial_runner,
            self.catalog.clone(),
            eval_seed,
            self.opts.trial_workers,
        )
        .with_policy(self.opts.policy)
    }

    /// One session's metrics registry: private, but forwarding into the
    /// campaign-wide live registry when one is configured.
    fn session_metrics(&self) -> Arc<MetricsRegistry> {
        match &self.opts.live_metrics {
            Some(live) => Arc::new(MetricsRegistry::with_parent(live.clone())),
            None => Arc::new(MetricsRegistry::new()),
        }
    }

    fn build_cache(&self) -> EvalCache {
        match self.opts.cache_capacity {
            Some(cap) => EvalCache::with_capacity(cap),
            None => EvalCache::new(),
        }
    }

    /// Picks warm-start points for a fresh session: the top
    /// configurations of the store's most similar finished session with
    /// an *identical* adapter identity (kind, hyperparameters, and
    /// projection seed — [`AdapterKind::identity_tag`]), so its
    /// optimizer-space points decode through this session's adapter
    /// unchanged.
    fn transfer_warm_points(
        &self,
        store: &TrialStore,
        adapter: &dyn SearchSpaceAdapter,
        fingerprint: &[f64],
    ) -> Vec<Vec<f64>> {
        let Some(ws) = &self.opts.warm_start else {
            return Vec::new();
        };
        let dims = adapter.optimizer_spec().len();
        let identity = self.cell.adapter.identity_tag(self.cell.seed);
        let points = store.warm_points(fingerprint, ws.k, ws.max_distance, |m| {
            m.session != self.cell.label && m.status == SessionStatus::Done && m.adapter == identity
        });
        points.into_iter().filter(|p| p.len() == dims).collect()
    }
}

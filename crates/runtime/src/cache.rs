//! Deduplicating evaluation cache.
//!
//! LlamaTune's bucketization deliberately collapses the search space: with
//! `bucket_count = Some(K)` each synthetic dimension exposes at most `K`
//! values, so distinct optimizer suggestions frequently decode to the
//! *same* DBMS configuration. Re-running the DBMS benchmark for a
//! configuration that was already measured (under the same evaluation
//! seed) buys no new information — the cache short-circuits those repeats
//! and keeps hit statistics so campaigns can report how much bucketization
//! actually deduplicated.

use llamatune::session::EvalResult;
use llamatune_space::{Config, KnobValue};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonical 64-bit key of a decoded configuration (FNV-1a over each
/// knob's index and value bits). Two configs hash equal iff every knob
/// value is bit-identical, which is the right notion here: decoded
/// configs come from the same deterministic pipeline, so equal settings
/// are equal bits.
pub fn config_key(config: &Config) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: u64| {
        for b in bytes.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for (i, v) in config.values().iter().enumerate() {
        mix(i as u64);
        match *v {
            KnobValue::Int(x) => {
                mix(1);
                mix(x as u64);
            }
            KnobValue::Float(x) => {
                mix(2);
                mix(x.to_bits());
            }
            KnobValue::Cat(x) => {
                mix(3);
                mix(x as u64);
            }
        }
    }
    h
}

/// Hit/miss counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (no DBMS run).
    pub hits: u64,
    /// Lookups that fell through to a real evaluation.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe evaluation cache keyed by [`config_key`].
///
/// Scope it to one (workload, evaluation-seed) context: the key covers
/// only the configuration, so results from different workloads or
/// evaluation seeds must not share a cache.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: Mutex<HashMap<u64, EvalResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a configuration, counting the outcome.
    pub fn lookup(&self, config: &Config) -> Option<EvalResult> {
        let found = self.map.lock().unwrap().get(&config_key(config)).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records an evaluation result.
    pub fn insert(&self, config: &Config, result: EvalResult) {
        self.map.lock().unwrap().insert(config_key(config), result);
    }

    /// Number of distinct configurations stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;

    #[test]
    fn key_distinguishes_configs_and_is_stable() {
        let space = postgres_v9_6();
        let a = space.default_config();
        let mut b = a.clone();
        let sb = space.index_of("shared_buffers").unwrap();
        b.values_mut()[sb] = KnobValue::Int(99_999);
        assert_eq!(config_key(&a), config_key(&a.clone()));
        assert_ne!(config_key(&a), config_key(&b));
    }

    #[test]
    fn lookup_insert_and_stats() {
        let space = postgres_v9_6();
        let cfg = space.default_config();
        let cache = EvalCache::new();
        assert!(cache.lookup(&cfg).is_none());
        cache.insert(&cfg, EvalResult { score: Some(123.0), metrics: vec![1.0] });
        let hit = cache.lookup(&cfg).expect("cached");
        assert_eq!(hit.score, Some(123.0));
        assert_eq!(hit.metrics, vec![1.0]);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 1 });
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn crashed_results_are_cacheable() {
        let space = postgres_v9_6();
        let cfg = space.default_config();
        let cache = EvalCache::new();
        cache.insert(&cfg, EvalResult { score: None, metrics: vec![] });
        assert!(cache.lookup(&cfg).expect("cached crash").score.is_none());
    }
}

//! Deduplicating evaluation cache.
//!
//! LlamaTune's bucketization deliberately collapses the search space: with
//! `bucket_count = Some(K)` each synthetic dimension exposes at most `K`
//! values, so distinct optimizer suggestions frequently decode to the
//! *same* DBMS configuration. Re-running the DBMS benchmark for a
//! configuration that was already measured (under the same evaluation
//! seed) buys no new information — the cache short-circuits those repeats
//! and keeps hit statistics so campaigns can report how much bucketization
//! actually deduplicated. An optional capacity bound (oldest-insertion
//! eviction, counted in [`CacheStats::evictions`]) keeps long-running
//! campaigns from growing the cache without limit, and store-backed
//! campaigns pre-load it with every trial already persisted for the
//! session — the persistent half of the evaluation cache.

use llamatune::session::EvalResult;
use llamatune_space::{Config, KnobValue};
// Shared poison-recovering lock: one panicked worker must not wedge a
// whole campaign. Defined next to the store's index, which has the same
// requirement.
pub(crate) use llamatune_store::lock_recover;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonical 64-bit key of a decoded configuration (FNV-1a over each
/// knob's index and value bits). Two configs hash equal iff every knob
/// value is bit-identical, which is the right notion here: decoded
/// configs come from the same deterministic pipeline, so equal settings
/// are equal bits.
pub fn config_key(config: &Config) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: u64| {
        for b in bytes.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for (i, v) in config.values().iter().enumerate() {
        mix(i as u64);
        match *v {
            KnobValue::Int(x) => {
                mix(1);
                mix(x as u64);
            }
            KnobValue::Float(x) => {
                mix(2);
                mix(x.to_bits());
            }
            KnobValue::Cat(x) => {
                mix(3);
                mix(x as u64);
            }
        }
    }
    h
}

/// Hit/miss/eviction counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (no DBMS run).
    pub hits: u64,
    /// Lookups that fell through to a real evaluation.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<u64, EvalResult>,
    /// Keys in insertion order; the front is the eviction victim.
    order: VecDeque<u64>,
}

/// A thread-safe evaluation cache keyed by [`config_key`], with an
/// optional capacity bound (oldest-insertion eviction) so long
/// campaigns cannot grow it without limit.
///
/// Scope it to one (workload, evaluation-seed) context: the key covers
/// only the configuration, so results from different workloads or
/// evaluation seeds must not share a cache.
#[derive(Debug, Default)]
pub struct EvalCache {
    inner: Mutex<CacheInner>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EvalCache {
    /// Creates an unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache holding at most `capacity` entries; the oldest
    /// insertion is evicted to admit a new distinct configuration. A
    /// zero capacity caches nothing (every insert immediately evicts).
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache { capacity: Some(capacity), ..Self::default() }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Looks up a configuration, counting the outcome.
    pub fn lookup(&self, config: &Config) -> Option<EvalResult> {
        let found = lock_recover(&self.inner).map.get(&config_key(config)).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records an evaluation result, evicting the oldest insertion if
    /// the cache is at capacity. Re-inserting an existing key replaces
    /// its value without touching the insertion order.
    ///
    /// Retryable outcomes ([`EvalResult::is_retryable`]: crashes,
    /// timeouts, quarantine hits, anything scoreless) are refused —
    /// memoizing one would replay a possibly-transient failure forever.
    /// Deciding whether a failed configuration is worth re-running is
    /// the execution policy's job (retry budget + quarantine), not the
    /// cache's.
    pub fn insert(&self, config: &Config, result: EvalResult) {
        if result.is_retryable() {
            return;
        }
        let key = config_key(config);
        let mut inner = lock_recover(&self.inner);
        if inner.map.insert(key, result).is_some() {
            return; // replacement: size and order unchanged
        }
        inner.order.push_back(key);
        if let Some(cap) = self.capacity {
            while inner.map.len() > cap {
                let victim = inner.order.pop_front().expect("order tracks map");
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of distinct configurations stored.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).map.len()
    }

    /// Whether nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;

    #[test]
    fn key_distinguishes_configs_and_is_stable() {
        let space = postgres_v9_6();
        let a = space.default_config();
        let mut b = a.clone();
        let sb = space.index_of("shared_buffers").unwrap();
        b.values_mut()[sb] = KnobValue::Int(99_999);
        assert_eq!(config_key(&a), config_key(&a.clone()));
        assert_ne!(config_key(&a), config_key(&b));
    }

    #[test]
    fn lookup_insert_and_stats() {
        let space = postgres_v9_6();
        let cfg = space.default_config();
        let cache = EvalCache::new();
        assert!(cache.lookup(&cfg).is_none());
        cache.insert(
            &cfg,
            EvalResult { score: Some(123.0), metrics: vec![1.0], ..Default::default() },
        );
        let hit = cache.lookup(&cfg).expect("cached");
        assert_eq!(hit.score, Some(123.0));
        assert_eq!(hit.metrics, vec![1.0]);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_evaluations_are_never_cached() {
        // Regression test: crashed results used to be cacheable, which
        // turned any transient fault into a permanently memoized penalty.
        use llamatune::session::TrialStatus;
        let space = postgres_v9_6();
        let cfg = space.default_config();
        let cache = EvalCache::new();
        cache.insert(&cfg, EvalResult { score: None, ..Default::default() });
        assert!(cache.lookup(&cfg).is_none(), "scoreless results must not be cached");
        cache.insert(
            &cfg,
            EvalResult { score: Some(5.0), status: TrialStatus::TimedOut, ..Default::default() },
        );
        assert!(cache.lookup(&cfg).is_none(), "failure statuses must not be cached");
        assert!(cache.is_empty());
        // A later healthy result for the same configuration is welcome.
        cache.insert(&cfg, EvalResult { score: Some(5.0), attempts: 2, ..Default::default() });
        assert_eq!(cache.lookup(&cfg).expect("cached").attempts, 2);
    }

    fn config_with_sb(space: &llamatune_space::ConfigSpace, sb: i64) -> Config {
        let mut cfg = space.default_config();
        let idx = space.index_of("shared_buffers").unwrap();
        cfg.values_mut()[idx] = KnobValue::Int(sb);
        cfg
    }

    #[test]
    fn capacity_bound_evicts_oldest_insertion_first() {
        let space = postgres_v9_6();
        let cache = EvalCache::with_capacity(2);
        let cfgs: Vec<Config> = (1..=3).map(|i| config_with_sb(&space, i * 1000)).collect();
        for (i, cfg) in cfgs.iter().enumerate() {
            cache.insert(cfg, EvalResult { score: Some(i as f64), ..Default::default() });
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&cfgs[0]).is_none(), "oldest insertion evicted");
        assert!(cache.lookup(&cfgs[1]).is_some());
        assert!(cache.lookup(&cfgs[2]).is_some());
        assert_eq!(cache.capacity(), Some(2));
    }

    #[test]
    fn reinserting_a_key_does_not_evict_or_reorder() {
        let space = postgres_v9_6();
        let cache = EvalCache::with_capacity(2);
        let a = config_with_sb(&space, 1000);
        let b = config_with_sb(&space, 2000);
        cache.insert(&a, EvalResult { score: Some(1.0), ..Default::default() });
        cache.insert(&b, EvalResult { score: Some(2.0), ..Default::default() });
        // Refresh `a`'s value: still 2 entries, zero evictions, and `a`
        // keeps its original (oldest) insertion slot.
        cache.insert(&a, EvalResult { score: Some(10.0), ..Default::default() });
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup(&a).unwrap().score, Some(10.0));
        let c = config_with_sb(&space, 3000);
        cache.insert(&c, EvalResult { score: Some(3.0), ..Default::default() });
        assert!(cache.lookup(&a).is_none(), "a was still the oldest insertion");
        assert!(cache.lookup(&b).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let space = postgres_v9_6();
        let cache = EvalCache::with_capacity(0);
        let cfg = space.default_config();
        cache.insert(&cfg, EvalResult { score: Some(1.0), ..Default::default() });
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&cfg).is_none());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let space = postgres_v9_6();
        let cache = EvalCache::new();
        for i in 1..=64 {
            let cfg = config_with_sb(&space, i * 512);
            cache.insert(&cfg, EvalResult { score: Some(i as f64), ..Default::default() });
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging() {
        use std::sync::Arc;
        let space = postgres_v9_6();
        let cache = Arc::new(EvalCache::new());
        let cfg = space.default_config();
        cache.insert(&cfg, EvalResult { score: Some(7.0), ..Default::default() });
        // Poison the mutex: panic while holding the guard.
        let poisoner = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker died mid-campaign");
        })
        .join();
        assert!(cache.inner.is_poisoned(), "the panic must have poisoned the lock");
        // Every operation still works on the recovered guard.
        assert_eq!(cache.lookup(&cfg).unwrap().score, Some(7.0));
        let other = config_with_sb(&space, 4242);
        cache.insert(&other, EvalResult { score: Some(1.0), ..Default::default() });
        assert_eq!(cache.len(), 2);
    }
}

//! Constant-liar batch suggestion.
//!
//! Sequential optimizers propose one point, observe its result, and only
//! then propose the next — useless when a pool can evaluate q trials at
//! once. The constant-liar strategy (Ginsbourger et al. 2010, the
//! standard q-point fantasizing trick) extracts a diverse batch from any
//! unmodified [`Optimizer`]:
//!
//! 1. ask for a suggestion;
//! 2. *fantasize* its outcome by observing a pessimistic pseudo-score
//!    (the "lie": the worst real score seen so far), which pushes the
//!    optimizer's model away from the pending point;
//! 3. repeat until q points are collected;
//! 4. when real results arrive, *retract* the lies.
//!
//! Retraction has two implementations:
//!
//! * **Snapshot-restore** ([`RetractionMode::Snapshot`]): before
//!   fantasizing, the wrapper captures the inner optimizer's state via
//!   [`Optimizer::snapshot`]; retracting restores it and feeds only the
//!   real observations that arrived since — O(state copy) instead of
//!   O(rebuild + full-history replay). Restoration is exact by contract
//!   (bit-identical state), so this path preserves the reproducibility
//!   guarantees unchanged.
//! * **Rebuild-and-replay** ([`RetractionMode::Rebuild`], and the
//!   automatic fallback whenever `snapshot()` returns `None`): rebuild
//!   the optimizer from its factory and replay every real observation in
//!   iteration order. This is how retraction stays exact for optimizers
//!   whose state cannot be copied out (DDPG's replay buffer and target
//!   networks).
//!
//! The default ([`RetractionMode::Auto`]) defers the choice to the
//! optimizer's own [`Optimizer::snapshot_beats_replay`] hint, so the
//! wrapper is never a pessimization: GP-BO retracts by snapshot, SMAC —
//! whose snapshot clones its cached forest — by replay.
//!
//! For campaigns driven entirely through `suggest_batch`/`observe_batch`
//! rounds — the only way the session loops use the wrapper — the two
//! modes are interchangeable: each round starts from a state that is a
//! pure function of the real history, so retraction by exact restore
//! and retraction by rebuild-and-replay land on identical states and
//! the suggestion streams match (pinned by
//! `retraction_modes_produce_identical_streams` below); the snapshot
//! path is just asymptotically cheaper, which the `optimizer_hot_path`
//! bench quantifies. Interleaving *bare* `suggest()` calls between
//! rounds voids that equivalence: a single suggest advances inner RNG
//! that a later snapshot preserves but a rebuild discards (sequential
//! use must degenerate to the wrapped optimizer, so the wrapper cannot
//! unwind it). Resumable campaigns never do this.

use llamatune_optim::{Observation, Optimizer};

/// How [`BatchSuggest`] retracts fantasized observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetractionMode {
    /// Ask the wrapped optimizer which strategy is cheaper for it
    /// ([`Optimizer::snapshot_beats_replay`]) and use that. Both
    /// strategies produce bit-identical suggestion streams (pinned by
    /// `retraction_modes_produce_identical_streams` below), so the hint
    /// is purely about cost: snapshotting is O(state copy) for the GP's
    /// factor but *slower* than replay for SMAC, whose snapshot clones
    /// the cached forest that replay would simply not rebuild.
    #[default]
    Auto,
    /// Always restore the optimizer's pre-batch snapshot and feed it
    /// the real results (falls back to [`RetractionMode::Rebuild`] when
    /// the optimizer does not support snapshots).
    Snapshot,
    /// Always rebuild from the factory and replay the full real history
    /// (the pre-snapshot behavior, kept for benchmarking and as the
    /// reference semantics).
    Rebuild,
}

/// How the lie value is chosen from the real observations so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LiarStrategy {
    /// The minimum real score (pessimistic — the classic "CL-min", best
    /// for maximization as it strongly repels pending points).
    #[default]
    Min,
    /// The mean real score (neutral).
    Mean,
    /// The maximum real score (optimistic — clusters the batch near the
    /// incumbent).
    Max,
}

impl LiarStrategy {
    fn lie(&self, real: &[Observation]) -> f64 {
        if real.is_empty() {
            return 0.0;
        }
        match self {
            LiarStrategy::Min => real.iter().map(|o| o.y).fold(f64::INFINITY, f64::min),
            LiarStrategy::Mean => real.iter().map(|o| o.y).sum::<f64>() / real.len() as f64,
            LiarStrategy::Max => real.iter().map(|o| o.y).fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Builds a fresh, identically-seeded optimizer. Called once up front and
/// once per retraction.
pub type OptimizerFactory = Box<dyn Fn() -> Box<dyn Optimizer> + Send>;

/// Wraps any [`Optimizer`] with constant-liar batch suggestion. Itself an
/// [`Optimizer`], so it drops into `run_session_parallel` (or any other
/// session loop) unchanged.
pub struct BatchSuggest {
    factory: OptimizerFactory,
    inner: Box<dyn Optimizer>,
    /// All real observations, in the order they were reported.
    real: Vec<Observation>,
    /// Number of fantasized observations currently inside `inner`.
    fantasized: usize,
    strategy: LiarStrategy,
    mode: RetractionMode,
    /// The inner optimizer's state captured just before the current
    /// round's fantasizing, plus the real-history length it covers.
    snapshot: Option<(Box<dyn std::any::Any + Send>, usize)>,
}

impl BatchSuggest {
    /// Wraps the optimizer produced by `factory` with the default
    /// (pessimistic) liar.
    pub fn new(factory: OptimizerFactory) -> Self {
        let inner = factory();
        BatchSuggest {
            factory,
            inner,
            real: Vec::new(),
            fantasized: 0,
            strategy: LiarStrategy::default(),
            mode: RetractionMode::default(),
            snapshot: None,
        }
    }

    /// Selects the liar strategy.
    pub fn with_strategy(mut self, strategy: LiarStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects how lies are retracted (default: snapshot-restore with a
    /// rebuild fallback).
    pub fn with_retraction(mut self, mode: RetractionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of real observations replayed into the wrapped optimizer.
    pub fn observed(&self) -> usize {
        self.real.len()
    }

    /// Retracts any outstanding lies. Fast path: restore the pre-batch
    /// snapshot and feed only the real observations recorded since it
    /// was taken. Fallback (no snapshot, restore refused, or
    /// [`RetractionMode::Rebuild`]): rebuild the wrapped optimizer from
    /// the factory and replay the whole real history in order.
    fn retract(&mut self) {
        // Observations are handed to the inner optimizer as batches so
        // surrogates with batched incremental paths (the GP's deferred
        // weight refresh) pay their per-batch costs once — the trait
        // contract makes `observe_batch` sequentially equivalent.
        let restored = match self.snapshot.take() {
            Some((snap, covered)) if self.inner.restore(snap.as_ref()) => {
                self.inner.observe_batch(self.real[covered..].to_vec());
                true
            }
            _ => false,
        };
        if !restored {
            self.inner = (self.factory)();
            self.inner.observe_batch(self.real.clone());
        }
        self.fantasized = 0;
    }

    fn ensure_clean(&mut self) {
        if self.fantasized > 0 {
            self.retract();
        }
    }
}

impl Optimizer for BatchSuggest {
    fn suggest(&mut self) -> Vec<f64> {
        self.ensure_clean();
        self.inner.suggest()
    }

    fn observe(&mut self, obs: Observation) {
        self.real.push(obs.clone());
        if self.fantasized > 0 {
            self.retract();
        } else {
            self.inner.observe(obs);
        }
    }

    fn name(&self) -> &'static str {
        "constant-liar"
    }

    fn suggest_batch(&mut self, q: usize) -> Vec<Vec<f64>> {
        self.ensure_clean();
        // Capture the pre-fantasy state so retraction is an O(copy)
        // restore instead of a rebuild; optimizers that cannot snapshot
        // (DDPG) return None here and keep the rebuild fallback.
        let use_snapshot = match self.mode {
            RetractionMode::Auto => self.inner.snapshot_beats_replay(),
            RetractionMode::Snapshot => true,
            RetractionMode::Rebuild => false,
        };
        self.snapshot = if use_snapshot {
            self.inner.snapshot().map(|snap| (snap, self.real.len()))
        } else {
            None
        };
        let lie = self.strategy.lie(&self.real);
        let mut batch = Vec::with_capacity(q);
        for _ in 0..q {
            let x = self.inner.suggest();
            // Fantasize: the pending point "scored" the lie, repelling
            // the next suggestion. Retracted when real results arrive.
            self.inner.observe(Observation { x: x.clone(), y: lie, metrics: Vec::new() });
            self.fantasized += 1;
            batch.push(x);
        }
        batch
    }

    fn observe_batch(&mut self, obs: Vec<Observation>) {
        if self.fantasized > 0 {
            self.real.extend(obs);
            self.retract();
        } else {
            // No outstanding lies (LHS-init rounds, history replay on
            // resume): feed the results straight through as one batch,
            // hitting the inner optimizer's incremental batch path.
            self.real.extend(obs.iter().cloned());
            self.inner.observe_batch(obs);
        }
    }

    fn drain_degradations(&mut self) -> Vec<llamatune_optim::DegradationEvent> {
        self.inner.drain_degradations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_optim::{RandomSearch, SearchSpec, Smac, SmacConfig};

    fn smac_factory(seed: u64, d: usize) -> OptimizerFactory {
        Box::new(move || -> Box<dyn Optimizer> {
            Box::new(Smac::new(SearchSpec::continuous(d), SmacConfig::default(), seed))
        })
    }

    fn sphere(x: &[f64]) -> f64 {
        -x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>()
    }

    /// Drives `opt` for `rounds` rounds of batch size `q` on the sphere.
    fn drive(mut opt: BatchSuggest, q: usize, rounds: usize) -> Vec<Vec<f64>> {
        let mut all = Vec::new();
        for _ in 0..rounds {
            let batch = opt.suggest_batch(q);
            let obs: Vec<Observation> = batch
                .iter()
                .map(|x| Observation { x: x.clone(), y: sphere(x), metrics: vec![] })
                .collect();
            all.extend(batch);
            opt.observe_batch(obs);
        }
        all
    }

    #[test]
    fn batches_are_diverse_under_the_liar() {
        let mut opt = BatchSuggest::new(smac_factory(1, 2));
        // Give the model something to fit.
        for i in 0..10 {
            let t = i as f64 / 10.0;
            let x = vec![t, 1.0 - t];
            let y = sphere(&x);
            opt.observe(Observation { x, y, metrics: vec![] });
        }
        let batch = opt.suggest_batch(4);
        assert_eq!(batch.len(), 4);
        // No two points in the batch are identical.
        for i in 0..batch.len() {
            for j in i + 1..batch.len() {
                assert_ne!(batch[i], batch[j], "points {i} and {j} collide");
            }
        }
    }

    #[test]
    fn lies_are_retracted_exactly() {
        // After a batch round, the wrapper's state must equal a plain
        // optimizer that saw only the real observations.
        let mut wrapped = BatchSuggest::new(smac_factory(9, 2));
        let mut plain = Smac::new(SearchSpec::continuous(2), SmacConfig::default(), 9);

        let batch = wrapped.suggest_batch(3);
        let obs: Vec<Observation> = batch
            .iter()
            .map(|x| Observation { x: x.clone(), y: sphere(x), metrics: vec![] })
            .collect();
        wrapped.observe_batch(obs.clone());
        for o in obs {
            plain.observe(o);
        }
        // Identical state ⇒ identical next suggestions.
        for _ in 0..3 {
            assert_eq!(wrapped.suggest(), plain.suggest());
        }
    }

    #[test]
    fn sequential_use_degenerates_to_the_wrapped_optimizer() {
        let mut wrapped = BatchSuggest::new(Box::new(|| {
            Box::new(RandomSearch::new(SearchSpec::continuous(3), 4)) as Box<dyn Optimizer>
        }));
        let mut plain = RandomSearch::new(SearchSpec::continuous(3), 4);
        for _ in 0..5 {
            let a = wrapped.suggest();
            let b = plain.suggest();
            assert_eq!(a, b);
            wrapped.observe(Observation { x: a, y: 0.0, metrics: vec![] });
            plain.observe(Observation { x: b, y: 0.0, metrics: vec![] });
        }
    }

    #[test]
    fn liar_strategies_use_the_real_history() {
        let real = [
            Observation { x: vec![0.0], y: -4.0, metrics: vec![] },
            Observation { x: vec![0.1], y: 2.0, metrics: vec![] },
            Observation { x: vec![0.2], y: 8.0, metrics: vec![] },
        ];
        assert_eq!(LiarStrategy::Min.lie(&real), -4.0);
        assert_eq!(LiarStrategy::Mean.lie(&real), 2.0);
        assert_eq!(LiarStrategy::Max.lie(&real), 8.0);
        assert_eq!(LiarStrategy::Min.lie(&[]), 0.0, "no history: neutral lie");
    }

    #[test]
    fn batched_optimization_still_approaches_the_optimum() {
        let opt = BatchSuggest::new(smac_factory(7, 2));
        let all = drive(opt, 4, 10);
        let best = all.iter().map(|x| sphere(x)).fold(f64::NEG_INFINITY, f64::max);
        assert!(best > -0.05, "40 evaluations in batches of 4 should near (0.5, 0.5): {best}");
    }

    /// The determinism contract of snapshot-based retraction: restoring
    /// the pre-batch snapshot and feeding the new reals leaves the inner
    /// optimizer in exactly the state rebuild-and-replay would — so both
    /// modes emit bit-identical suggestion streams over a whole
    /// batched campaign, for every snapshot-capable optimizer.
    #[test]
    fn retraction_modes_produce_identical_streams() {
        use llamatune_optim::{GpBo, GpConfig, OptimizerKind};
        type TestFactory = fn() -> Box<dyn Optimizer>;
        let factories: Vec<(&str, TestFactory)> = vec![
            ("smac", || Box::new(Smac::new(SearchSpec::continuous(2), SmacConfig::default(), 5))),
            ("gp-bo", || Box::new(GpBo::new(SearchSpec::continuous(2), GpConfig::default(), 5))),
            ("random", || Box::new(RandomSearch::new(SearchSpec::continuous(2), 5))),
            ("ddpg", || OptimizerKind::Ddpg.build(&SearchSpec::continuous(2), 5)),
        ];
        for (name, factory) in factories {
            let auto = BatchSuggest::new(Box::new(factory));
            let fast =
                BatchSuggest::new(Box::new(factory)).with_retraction(RetractionMode::Snapshot);
            let slow =
                BatchSuggest::new(Box::new(factory)).with_retraction(RetractionMode::Rebuild);
            let reference = drive(auto, 3, 5);
            let a = drive(fast, 3, 5);
            let b = drive(slow, 3, 5);
            assert_eq!(reference, a, "{name}: snapshot mode changed the suggestion stream");
            assert_eq!(a, b, "{name}: retraction mode changed the suggestion stream");
        }
    }

    /// A snapshot-capable optimizer retracts without touching the
    /// factory when snapshot mode is forced; one that cannot snapshot
    /// (DDPG) falls back to it.
    #[test]
    fn snapshot_retraction_skips_the_factory_rebuild() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let rebuilds = Arc::new(AtomicUsize::new(0));
        let counter = rebuilds.clone();
        let mut opt = BatchSuggest::new(Box::new(move || -> Box<dyn Optimizer> {
            counter.fetch_add(1, Ordering::SeqCst);
            Box::new(Smac::new(SearchSpec::continuous(2), SmacConfig::default(), 3))
        }))
        .with_retraction(RetractionMode::Snapshot);
        assert_eq!(rebuilds.load(Ordering::SeqCst), 1, "one build at construction");
        drop(drive_mut(&mut opt, 3, 4));
        assert_eq!(
            rebuilds.load(Ordering::SeqCst),
            1,
            "snapshot retraction must never rebuild a snapshot-capable optimizer"
        );
    }

    /// The default mode follows each optimizer's cost hint: SMAC (whose
    /// snapshot clones the cached forest) retracts by rebuild-and-
    /// replay, GP-BO by snapshot-restore.
    #[test]
    fn auto_mode_follows_the_optimizer_cost_hint() {
        use llamatune_optim::{GpBo, GpConfig};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let rebuilds = Arc::new(AtomicUsize::new(0));
        let counter = rebuilds.clone();
        let mut smac = BatchSuggest::new(Box::new(move || -> Box<dyn Optimizer> {
            counter.fetch_add(1, Ordering::SeqCst);
            Box::new(Smac::new(SearchSpec::continuous(2), SmacConfig::default(), 3))
        }));
        drop(drive_mut(&mut smac, 3, 4));
        assert!(
            rebuilds.load(Ordering::SeqCst) > 1,
            "auto mode must retract SMAC via rebuild-and-replay"
        );

        let rebuilds = Arc::new(AtomicUsize::new(0));
        let counter = rebuilds.clone();
        let mut gp = BatchSuggest::new(Box::new(move || -> Box<dyn Optimizer> {
            counter.fetch_add(1, Ordering::SeqCst);
            Box::new(GpBo::new(SearchSpec::continuous(2), GpConfig::default(), 3))
        }));
        drop(drive_mut(&mut gp, 3, 4));
        assert_eq!(
            rebuilds.load(Ordering::SeqCst),
            1,
            "auto mode must retract GP-BO via snapshot-restore"
        );
    }

    /// Like `drive` but borrowing, so the caller keeps the wrapper.
    fn drive_mut(opt: &mut BatchSuggest, q: usize, rounds: usize) -> Vec<Vec<f64>> {
        let mut all = Vec::new();
        for _ in 0..rounds {
            let batch = opt.suggest_batch(q);
            let obs: Vec<Observation> = batch
                .iter()
                .map(|x| Observation { x: x.clone(), y: sphere(x), metrics: vec![] })
                .collect();
            all.extend(batch);
            opt.observe_batch(obs);
        }
        all
    }
}

//! Constant-liar batch suggestion.
//!
//! Sequential optimizers propose one point, observe its result, and only
//! then propose the next — useless when a pool can evaluate q trials at
//! once. The constant-liar strategy (Ginsbourger et al. 2010, the
//! standard q-point fantasizing trick) extracts a diverse batch from any
//! unmodified [`Optimizer`]:
//!
//! 1. ask for a suggestion;
//! 2. *fantasize* its outcome by observing a pessimistic pseudo-score
//!    (the "lie": the worst real score seen so far), which pushes the
//!    optimizer's model away from the pending point;
//! 3. repeat until q points are collected;
//! 4. when real results arrive, *retract* the lies: rebuild the optimizer
//!    from its factory and replay only real observations, in iteration
//!    order.
//!
//! Rebuild-and-replay is how retraction stays exact for optimizers whose
//! internal state cannot be unwound (SMAC's forest, DDPG's replay
//! buffer): the factory recreates the identically-seeded optimizer, so
//! the post-retraction state is a pure function of the real history —
//! which is also what makes batched campaigns reproducible.

use llamatune_optim::{Observation, Optimizer};

/// How the lie value is chosen from the real observations so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LiarStrategy {
    /// The minimum real score (pessimistic — the classic "CL-min", best
    /// for maximization as it strongly repels pending points).
    #[default]
    Min,
    /// The mean real score (neutral).
    Mean,
    /// The maximum real score (optimistic — clusters the batch near the
    /// incumbent).
    Max,
}

impl LiarStrategy {
    fn lie(&self, real: &[Observation]) -> f64 {
        if real.is_empty() {
            return 0.0;
        }
        match self {
            LiarStrategy::Min => real.iter().map(|o| o.y).fold(f64::INFINITY, f64::min),
            LiarStrategy::Mean => real.iter().map(|o| o.y).sum::<f64>() / real.len() as f64,
            LiarStrategy::Max => real.iter().map(|o| o.y).fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Builds a fresh, identically-seeded optimizer. Called once up front and
/// once per retraction.
pub type OptimizerFactory = Box<dyn Fn() -> Box<dyn Optimizer> + Send>;

/// Wraps any [`Optimizer`] with constant-liar batch suggestion. Itself an
/// [`Optimizer`], so it drops into `run_session_parallel` (or any other
/// session loop) unchanged.
pub struct BatchSuggest {
    factory: OptimizerFactory,
    inner: Box<dyn Optimizer>,
    /// All real observations, in the order they were reported.
    real: Vec<Observation>,
    /// Number of fantasized observations currently inside `inner`.
    fantasized: usize,
    strategy: LiarStrategy,
}

impl BatchSuggest {
    /// Wraps the optimizer produced by `factory` with the default
    /// (pessimistic) liar.
    pub fn new(factory: OptimizerFactory) -> Self {
        let inner = factory();
        BatchSuggest {
            factory,
            inner,
            real: Vec::new(),
            fantasized: 0,
            strategy: LiarStrategy::default(),
        }
    }

    /// Selects the liar strategy.
    pub fn with_strategy(mut self, strategy: LiarStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Number of real observations replayed into the wrapped optimizer.
    pub fn observed(&self) -> usize {
        self.real.len()
    }

    /// Retracts any outstanding lies: rebuilds the wrapped optimizer and
    /// replays the real history in order.
    fn retract(&mut self) {
        self.inner = (self.factory)();
        for o in &self.real {
            self.inner.observe(o.clone());
        }
        self.fantasized = 0;
    }

    fn ensure_clean(&mut self) {
        if self.fantasized > 0 {
            self.retract();
        }
    }
}

impl Optimizer for BatchSuggest {
    fn suggest(&mut self) -> Vec<f64> {
        self.ensure_clean();
        self.inner.suggest()
    }

    fn observe(&mut self, obs: Observation) {
        self.real.push(obs.clone());
        if self.fantasized > 0 {
            self.retract();
        } else {
            self.inner.observe(obs);
        }
    }

    fn name(&self) -> &'static str {
        "constant-liar"
    }

    fn suggest_batch(&mut self, q: usize) -> Vec<Vec<f64>> {
        self.ensure_clean();
        let lie = self.strategy.lie(&self.real);
        let mut batch = Vec::with_capacity(q);
        for _ in 0..q {
            let x = self.inner.suggest();
            // Fantasize: the pending point "scored" the lie, repelling
            // the next suggestion. Retracted when real results arrive.
            self.inner.observe(Observation { x: x.clone(), y: lie, metrics: Vec::new() });
            self.fantasized += 1;
            batch.push(x);
        }
        batch
    }

    fn observe_batch(&mut self, obs: Vec<Observation>) {
        if self.fantasized > 0 {
            self.real.extend(obs);
            self.retract();
        } else {
            // No outstanding lies (e.g. LHS-init rounds): feed the
            // results straight through instead of rebuilding.
            for o in obs {
                self.real.push(o.clone());
                self.inner.observe(o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_optim::{RandomSearch, SearchSpec, Smac, SmacConfig};

    fn smac_factory(seed: u64, d: usize) -> OptimizerFactory {
        Box::new(move || -> Box<dyn Optimizer> {
            Box::new(Smac::new(SearchSpec::continuous(d), SmacConfig::default(), seed))
        })
    }

    fn sphere(x: &[f64]) -> f64 {
        -x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>()
    }

    /// Drives `opt` for `rounds` rounds of batch size `q` on the sphere.
    fn drive(mut opt: BatchSuggest, q: usize, rounds: usize) -> Vec<Vec<f64>> {
        let mut all = Vec::new();
        for _ in 0..rounds {
            let batch = opt.suggest_batch(q);
            let obs: Vec<Observation> = batch
                .iter()
                .map(|x| Observation { x: x.clone(), y: sphere(x), metrics: vec![] })
                .collect();
            all.extend(batch);
            opt.observe_batch(obs);
        }
        all
    }

    #[test]
    fn batches_are_diverse_under_the_liar() {
        let mut opt = BatchSuggest::new(smac_factory(1, 2));
        // Give the model something to fit.
        for i in 0..10 {
            let t = i as f64 / 10.0;
            let x = vec![t, 1.0 - t];
            let y = sphere(&x);
            opt.observe(Observation { x, y, metrics: vec![] });
        }
        let batch = opt.suggest_batch(4);
        assert_eq!(batch.len(), 4);
        // No two points in the batch are identical.
        for i in 0..batch.len() {
            for j in i + 1..batch.len() {
                assert_ne!(batch[i], batch[j], "points {i} and {j} collide");
            }
        }
    }

    #[test]
    fn lies_are_retracted_exactly() {
        // After a batch round, the wrapper's state must equal a plain
        // optimizer that saw only the real observations.
        let mut wrapped = BatchSuggest::new(smac_factory(9, 2));
        let mut plain = Smac::new(SearchSpec::continuous(2), SmacConfig::default(), 9);

        let batch = wrapped.suggest_batch(3);
        let obs: Vec<Observation> = batch
            .iter()
            .map(|x| Observation { x: x.clone(), y: sphere(x), metrics: vec![] })
            .collect();
        wrapped.observe_batch(obs.clone());
        for o in obs {
            plain.observe(o);
        }
        // Identical state ⇒ identical next suggestions.
        for _ in 0..3 {
            assert_eq!(wrapped.suggest(), plain.suggest());
        }
    }

    #[test]
    fn sequential_use_degenerates_to_the_wrapped_optimizer() {
        let mut wrapped = BatchSuggest::new(Box::new(|| {
            Box::new(RandomSearch::new(SearchSpec::continuous(3), 4)) as Box<dyn Optimizer>
        }));
        let mut plain = RandomSearch::new(SearchSpec::continuous(3), 4);
        for _ in 0..5 {
            let a = wrapped.suggest();
            let b = plain.suggest();
            assert_eq!(a, b);
            wrapped.observe(Observation { x: a, y: 0.0, metrics: vec![] });
            plain.observe(Observation { x: b, y: 0.0, metrics: vec![] });
        }
    }

    #[test]
    fn liar_strategies_use_the_real_history() {
        let real = [
            Observation { x: vec![0.0], y: -4.0, metrics: vec![] },
            Observation { x: vec![0.1], y: 2.0, metrics: vec![] },
            Observation { x: vec![0.2], y: 8.0, metrics: vec![] },
        ];
        assert_eq!(LiarStrategy::Min.lie(&real), -4.0);
        assert_eq!(LiarStrategy::Mean.lie(&real), 2.0);
        assert_eq!(LiarStrategy::Max.lie(&real), 8.0);
        assert_eq!(LiarStrategy::Min.lie(&[]), 0.0, "no history: neutral lie");
    }

    #[test]
    fn batched_optimization_still_approaches_the_optimum() {
        let opt = BatchSuggest::new(smac_factory(7, 2));
        let all = drive(opt, 4, 10);
        let best = all.iter().map(|x| sphere(x)).fold(f64::NEG_INFINITY, f64::max);
        assert!(best > -0.05, "40 evaluations in batches of 4 should near (0.5, 0.5): {best}");
    }
}

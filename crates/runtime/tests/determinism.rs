//! The runtime's reproducibility contract, pinned bit-for-bit: a
//! fixed-seed campaign records identical histories no matter how many
//! workers evaluate its trials, and LlamaTune's bucketization actually
//! exercises the evaluation cache.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignOptions, CampaignResult, CampaignSpec, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;

fn quick_run_options() -> RunOptions {
    RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() }
}

fn campaign_with_workers(trial_workers: usize, session_parallelism: usize) -> Vec<CampaignResult> {
    let spec = CampaignSpec {
        workloads: vec!["ycsb_a".into(), "tpcc".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![3, 4],
    };
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 10, n_init: 4, ..Default::default() },
        batch_size: 4,
        trial_workers,
        session_parallelism,
        run_options: Some(quick_run_options()),
        ..Default::default()
    };
    Campaign::new(postgres_v9_6(), spec, opts).run()
}

/// The headline guarantee: worker counts 1, 2, and 8 produce
/// byte-identical scores, trial results joined by iteration index.
#[test]
fn worker_count_never_changes_recorded_scores() {
    let reference = campaign_with_workers(1, 1);
    assert_eq!(reference.len(), 4);
    for (workers, lanes) in [(2, 1), (8, 1), (8, 4)] {
        let candidate = campaign_with_workers(workers, lanes);
        assert_eq!(candidate.len(), reference.len());
        for (a, b) in reference.iter().zip(&candidate) {
            assert_eq!(a.label, b.label);
            // Bitwise, not approximate: join by iteration index and
            // compare the raw f64 bits of every recorded score.
            let bits = |h: &[f64]| h.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&a.history.scores),
                bits(&b.history.scores),
                "{}: scores diverged at {workers} workers / {lanes} lanes",
                a.label
            );
            assert_eq!(
                bits(&a.history.best_curve),
                bits(&b.history.best_curve),
                "{}: best curve diverged",
                a.label
            );
            assert_eq!(a.history.raw_scores, b.history.raw_scores);
            assert_eq!(a.history.points, b.history.points);
            assert_eq!(a.history.configs, b.history.configs);
        }
    }
}

/// Coarse bucketization (16 values per synthetic dimension) collapses
/// suggestions onto few distinct configs — the cache must observe hits.
#[test]
fn bucketized_session_reports_cache_hits() {
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig {
            bucket_count: Some(16),
            ..Default::default()
        })],
        optimizers: vec![OptimizerKind::Random],
        seeds: vec![0],
    };
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 40, n_init: 5, ..Default::default() },
        batch_size: 4,
        trial_workers: 2,
        run_options: Some(quick_run_options()),
        ..Default::default()
    };
    let results = Campaign::new(postgres_v9_6(), spec, opts).run();
    let stats = results[0].cache.expect("campaign ran with a cache");
    // Repeated *successful* configs are answered by the cache; repeated
    // *failed* configs by the quarantine (the cache refuses retryable
    // results). Either way, a repeat must not re-run the benchmark.
    let quarantined = results[0]
        .history
        .statuses
        .iter()
        .filter(|s| **s == llamatune::session::TrialStatus::Quarantined)
        .count();
    assert!(
        stats.hits as usize + quarantined > 0,
        "bucket_count = Some(16) over 40 iterations must repeat configs: \
         {stats:?}, {quarantined} quarantined"
    );
    assert!(stats.misses > 0, "first sighting of each config is a miss");
}

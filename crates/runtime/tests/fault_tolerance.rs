//! Chaos suite: trial-level fault tolerance under *seeded* fault
//! schedules (part of the CI `fault-injection` gate).
//!
//! Three layers of property, in increasing blast radius:
//!
//! 1. **Session properties** (proptest, 96 seeded cases each): under any
//!    `FaultPlan::chaos(seed)` schedule a session terminates, records
//!    every trial exactly once (finite penalty scores, truthful
//!    statuses, attempt counts within the retry + hedge budget), and
//!    produces bit-identical histories at any worker count.
//! 2. **Optimizer degradation**: a panicking optimizer under
//!    `GuardedOptimizer` degrades rounds to random search — recorded as
//!    [`DegradationEvent`]s — instead of killing the session.
//! 3. **Campaign resume**: a store-backed campaign running under runner
//!    faults, killed at arbitrary record boundaries (and, in the
//!    env-driven CI matrix case, killed by *store-level* byte-budget
//!    faults at the same time), resumes to a byte-identical exported
//!    history.
//!
//! Everything here is deterministic: fault schedules key on
//! `(plan seed, config fingerprint)`, watchdogs run on the virtual
//! clock, and backoff jitter is seeded — so a red case replays exactly
//! from its printed seed.

use llamatune::pipeline::{IdentityAdapter, LlamaTuneConfig, SearchSpaceAdapter};
use llamatune::session::{run_session_parallel, SessionHistory, SessionOptions, TrialStatus};
use llamatune_engine::RunOptions;
use llamatune_optim::{GuardedOptimizer, Observation, Optimizer, RandomSearch};
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignOptions, CampaignSpec, ExecutionPolicy, OptimizerKind,
    WorkloadExecutor,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_space::{Config, ConfigSpace};
use llamatune_store::{
    FailingBackend, FaultPlan as StoreFaultPlan, ObjectStoreBackend, StoreBackend, StoreOptions,
    TrialStore,
};
use llamatune_workloads::{AttemptOutcome, FaultPlan, FaultyRunner, TrialRunner};
use proptest::prelude::*;
use std::sync::Arc;

/// Injected panics are expected noise here; keep every *other* panic
/// (real assertion failures) on the default hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") && !msg.contains("flaky optimizer") {
                prev(info);
            }
        }));
    });
}

/// A deterministic stand-in benchmark: cheap enough for thousands of
/// property cases, with config-dependent scores and virtual durations so
/// hedging and timeouts have something to bite on.
struct SimRunner;

impl TrialRunner for SimRunner {
    fn evaluate_attempt(
        &self,
        _space: &ConfigSpace,
        config: &Config,
        seed: u64,
        _attempt: u32,
    ) -> AttemptOutcome {
        let h = llamatune_workloads::config_fingerprint(config) ^ seed;
        AttemptOutcome {
            score: Some(1_000.0 + (h % 10_000) as f64 / 10.0),
            metrics: vec![(h % 97) as f64],
            virtual_ms: 500.0 + (h % 1_500) as f64,
            retryable: false,
        }
    }
}

const ITERS: usize = 9; // + iteration 0 = 10 recorded trials

fn run_chaos_session(
    seed: u64,
    workers: usize,
    plan: FaultPlan,
    policy: ExecutionPolicy,
) -> SessionHistory {
    let catalog = postgres_v9_6();
    let adapter = IdentityAdapter::new(&catalog);
    let optimizer: Box<dyn Optimizer> =
        Box::new(RandomSearch::new(adapter.optimizer_spec().clone(), seed));
    let runner: Arc<dyn TrialRunner> = Arc::new(FaultyRunner::new(Arc::new(SimRunner), plan));
    let mut executor =
        WorkloadExecutor::from_trial_runner(runner, catalog.clone(), seed ^ 0x5EED, workers)
            .with_policy(policy);
    let opts = SessionOptions { iterations: ITERS, n_init: 4, seed, ..Default::default() };
    run_session_parallel(&adapter, optimizer, &mut executor, &opts, 3)
}

proptest! {
    /// Termination + no-lost-trial: any seeded fault schedule, any
    /// policy in the grid — the session ends with every iteration
    /// recorded exactly once, failures penalty-scored (finite), statuses
    /// truthful about raw scores, and attempt counts inside the
    /// retry + hedge budget.
    #[test]
    fn any_fault_schedule_terminates_with_every_trial_accounted(
        seed in 0u64..1_000_000,
        workers in 1usize..5,
        max_attempts in 1u32..4,
        watchdog in any::<bool>(),
    ) {
        silence_injected_panics();
        let policy = ExecutionPolicy {
            max_attempts,
            timeout_ms: if watchdog { 10_000.0 } else { f64::INFINITY },
            hedge_ms: 2_500.0,
            ..ExecutionPolicy::default()
        };
        let h = run_chaos_session(seed, workers, FaultPlan::chaos(seed), policy);
        prop_assert_eq!(h.scores.len(), ITERS + 1);
        prop_assert_eq!(h.raw_scores.len(), ITERS + 1);
        prop_assert_eq!(h.statuses.len(), ITERS + 1);
        prop_assert_eq!(h.attempts.len(), ITERS + 1);
        for i in 0..=ITERS {
            prop_assert!(h.scores[i].is_finite(), "seed {seed} trial {i}: penalty not applied");
            // Budget: max_attempts retries + at most one hedge attempt.
            prop_assert!(
                h.attempts[i] >= 1 && h.attempts[i] <= max_attempts + 1,
                "seed {seed} trial {i}: attempts {} outside budget", h.attempts[i]
            );
            match h.raw_scores[i] {
                Some(raw) => {
                    prop_assert!(raw.is_finite());
                    prop_assert_eq!(h.statuses[i], TrialStatus::Ok, "seed {seed} trial {i}");
                }
                None => prop_assert!(
                    h.statuses[i].is_failure(),
                    "seed {seed} trial {i}: scoreless trial with status {:?}", h.statuses[i]
                ),
            }
        }
    }

    /// Worker-count invariance under chaos: the recorded history —
    /// scores, raw scores, statuses, attempt counts — is a pure function
    /// of the seeds, bit-identical at 1 and 4 workers even while panics,
    /// hangs, and retries land on different threads.
    #[test]
    fn chaos_histories_are_worker_count_invariant(seed in 0u64..1_000_000) {
        silence_injected_panics();
        let policy = ExecutionPolicy::hardened();
        let plan = FaultPlan::chaos(seed);
        let a = run_chaos_session(seed, 1, plan, policy);
        let b = run_chaos_session(seed, 4, plan, policy);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a.scores), bits(&b.scores), "seed {seed}: scores diverged");
        prop_assert_eq!(&a.raw_scores, &b.raw_scores, "seed {seed}");
        prop_assert_eq!(&a.statuses, &b.statuses, "seed {seed}: statuses diverged");
        prop_assert_eq!(&a.attempts, &b.attempts, "seed {seed}: attempts diverged");
        prop_assert_eq!(bits(&a.best_curve), bits(&b.best_curve), "seed {seed}");
    }

    /// Fault-free inertness: with no fault plan, a hardened policy must
    /// not change a single recorded bit relative to the inert default —
    /// retries, watchdogs, and hedging only engage on actual faults
    /// (hedge re-runs of a deterministic runner return the identical
    /// outcome, so only attempt counts may move, and only when a batch
    /// has a straggler).
    #[test]
    fn hardened_policy_is_score_inert_without_faults(seed in 0u64..1_000_000) {
        let a = run_chaos_session(seed, 2, FaultPlan::default(), ExecutionPolicy::default());
        let b = run_chaos_session(seed, 2, FaultPlan::default(), ExecutionPolicy::hardened());
        prop_assert_eq!(&a.raw_scores, &b.raw_scores, "seed {seed}");
        prop_assert_eq!(&a.statuses, &b.statuses, "seed {seed}");
        for s in &a.statuses {
            prop_assert_eq!(*s, TrialStatus::Ok, "seed {seed}: fault-free run must be clean");
        }
    }
}

/// A panicking optimizer: suggestion number `panic_on` (and every
/// `panic_on`-th after a rebuild) blows up.
struct FlakyOptimizer {
    inner: RandomSearch,
    calls: u32,
    panic_on: u32,
}

impl Optimizer for FlakyOptimizer {
    fn suggest(&mut self) -> Vec<f64> {
        self.calls += 1;
        if self.calls == self.panic_on {
            panic!("flaky optimizer: injected suggestion failure");
        }
        self.inner.suggest()
    }

    fn observe(&mut self, obs: Observation) {
        self.inner.observe(obs);
    }

    fn name(&self) -> &'static str {
        "flaky"
    }
}

#[test]
fn optimizer_panics_degrade_to_random_search_and_are_recorded() {
    silence_injected_panics();
    let catalog = postgres_v9_6();
    let adapter = IdentityAdapter::new(&catalog);
    let spec = adapter.optimizer_spec().clone();
    let factory_spec = spec.clone();
    let optimizer: Box<dyn Optimizer> = Box::new(GuardedOptimizer::new(
        Box::new(move || {
            Box::new(FlakyOptimizer {
                inner: RandomSearch::new(factory_spec.clone(), 11),
                calls: 0,
                panic_on: 4,
            })
        }),
        spec,
        11,
    ));
    let runner: Arc<dyn TrialRunner> = Arc::new(SimRunner);
    let mut executor = WorkloadExecutor::from_trial_runner(runner, catalog.clone(), 7, 2);
    let opts = SessionOptions { iterations: ITERS, n_init: 2, seed: 11, ..Default::default() };
    let h = run_session_parallel(&adapter, optimizer, &mut executor, &opts, 3);
    assert_eq!(h.scores.len(), ITERS + 1, "session survives its optimizer");
    assert!(h.scores.iter().all(|s| s.is_finite()));
    assert!(!h.degradations.is_empty(), "degradations must be recorded");
    for d in &h.degradations {
        assert_eq!(d.optimizer, "flaky");
        assert!(d.iteration <= ITERS);
        assert!(!d.reason.is_empty());
    }
}

fn chaos_campaign(seed: u64, workers: usize) -> Campaign {
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Random],
        seeds: vec![seed],
    };
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: workers,
        session_parallelism: 1,
        run_options: Some(run_opts),
        fault_plan: Some(FaultPlan::chaos(seed ^ 0xC4405)),
        policy: ExecutionPolicy::hardened(),
        ..Default::default()
    };
    Campaign::new(postgres_v9_6(), spec, opts)
}

/// The store's raw record stream, in manifest order, active segment
/// last (same helper as the checkpoint_resume suite).
fn record_stream(dir: &std::path::Path) -> String {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let sealed: Vec<&str> = manifest.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let mut out = String::new();
    for name in &sealed {
        out.push_str(&std::fs::read_to_string(dir.join(name)).unwrap());
    }
    let active = dir.join(format!("seg-{:06}.jsonl", sealed.len() + 1));
    if active.exists() {
        out.push_str(&std::fs::read_to_string(active).unwrap());
    }
    out
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_fault_tolerance")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_mid_chaos_campaign_resumes_byte_identically() {
    silence_injected_panics();
    for seed in [3u64, 11] {
        let campaign = chaos_campaign(seed, 2);

        // Ground truth: the chaos campaign, uninterrupted.
        let truth_dir = tmp_dir(&format!("truth_{seed}"));
        let truth_store = TrialStore::open(&truth_dir).unwrap();
        let truth = campaign.run_with_store(&truth_store).unwrap();
        let truth_export = truth_store.export_jsonl();
        let failures = truth[0].history.statuses.iter().filter(|s| s.is_failure()).count();
        assert!(failures > 0, "seed {seed}: chaos plan must actually fault some trials");
        assert!(
            truth_export.contains("\"status\""),
            "failure statuses must be persisted in the export"
        );

        // Kill after K whole records — including cuts that land right
        // after a faulted trial — and resume from the wreckage.
        let stream = record_stream(&truth_dir);
        let lines: Vec<&str> = stream.lines().collect();
        for cut in [2usize, 5, 8, lines.len() - 1] {
            let prefix: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
            let dir = tmp_dir(&format!("cut_{seed}_{cut}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("MANIFEST"), "llamatune-store v1\n").unwrap();
            std::fs::write(dir.join("seg-000001.jsonl"), prefix).unwrap();
            let store = TrialStore::open(&dir).unwrap();
            let resumed = campaign.resume(&store).unwrap();
            assert_eq!(
                store.export_jsonl(),
                truth_export,
                "seed {seed}: resume from cut {cut} must reproduce the chaos history"
            );
            assert_eq!(resumed[0].history.statuses, truth[0].history.statuses);
            assert_eq!(resumed[0].history.attempts, truth[0].history.attempts);
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&truth_dir).unwrap();
    }
}

/// The CI chaos-matrix entry point: seed, worker count, and the
/// store-fault leg come from the environment (`CHAOS_SEED`,
/// `CHAOS_WORKERS`, `CHAOS_STORE_FAULTS=1`), so one test binary covers
/// the whole matrix. Locally (no env) it runs one representative case.
#[test]
fn chaos_matrix_case_from_env() {
    silence_injected_panics();
    let seed: u64 = std::env::var("CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let workers: usize =
        std::env::var("CHAOS_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let store_faults = std::env::var("CHAOS_STORE_FAULTS").is_ok_and(|v| v == "1");
    let campaign = chaos_campaign(seed, workers);

    // Truth on a clean backend.
    let clean: Arc<dyn StoreBackend> = Arc::new(ObjectStoreBackend::default());
    let truth_store = TrialStore::open_backend(clean.clone(), StoreOptions::default()).unwrap();
    let truth = campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();
    assert_eq!(truth[0].history.scores.len(), 9);
    assert!(truth[0].history.scores.iter().all(|s| s.is_finite()));

    if store_faults {
        // Combined leg: runner faults AND a store that dies at a seeded
        // byte budget mid-campaign. The campaign errors out (never
        // panics), and resuming on the surviving backend converges to
        // the clean-run export.
        let inner: Arc<dyn StoreBackend> = Arc::new(ObjectStoreBackend::default());
        let budget = 2_000 + (seed % 7) * 900;
        let failing: Arc<dyn StoreBackend> =
            Arc::new(FailingBackend::new(inner.clone(), StoreFaultPlan::KillAtByte(budget)));
        if let Ok(store) = TrialStore::open_backend(failing, StoreOptions { segment_records: 4 }) {
            let _ = campaign.run_with_store(&store); // dies at the byte budget
        }
        let survivor = TrialStore::open_backend(inner, StoreOptions::default()).unwrap();
        if std::env::var("CHAOS_DEBUG").is_ok() {
            eprintln!("=== survivor before resume ===\n{}", survivor.export_jsonl());
        }
        campaign.resume(&survivor).unwrap();
        assert_eq!(
            survivor.export_jsonl(),
            truth_export,
            "seed {seed}, budget {budget}: combined runner+store faults must resume to truth"
        );
    } else {
        // Runner-faults-only leg: a second identical run is bit-equal.
        let again: Arc<dyn StoreBackend> = Arc::new(ObjectStoreBackend::default());
        let store = TrialStore::open_backend(again, StoreOptions::default()).unwrap();
        campaign.run_with_store(&store).unwrap();
        assert_eq!(store.export_jsonl(), truth_export, "seed {seed}: chaos run not deterministic");
    }
}

//! The observability stack's out-of-band contract, pinned end to end:
//! tracing never perturbs what a campaign records or persists, traces
//! themselves are deterministic across worker counts, and the session
//! report is reproducible from the stored telemetry alone.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_obs::trace::{parse_trace_jsonl, RecordingTracer, Tracer};
use llamatune_obs::{build_report, MetricsSnapshot};
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignOptions, CampaignResult, CampaignSpec, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::TrialStore;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

fn quick_run_options() -> RunOptions {
    RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() }
}

fn spec() -> CampaignSpec {
    CampaignSpec {
        workloads: vec!["ycsb_b".into(), "ycsb_f".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1],
    }
}

fn opts(trial_workers: usize, tracer: Option<Arc<RecordingTracer>>) -> CampaignOptions {
    let mut opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers,
        session_parallelism: 1,
        run_options: Some(quick_run_options()),
        ..Default::default()
    };
    if let Some(t) = tracer {
        opts.tracer = t;
    }
    opts
}

fn history_bits(results: &[CampaignResult]) -> Vec<(String, Vec<u64>, Vec<u64>)> {
    results
        .iter()
        .map(|r| {
            let bits = |h: &[f64]| h.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            (r.label.clone(), bits(&r.history.scores), bits(&r.history.best_curve))
        })
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_obs_test")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every store artifact that belongs to the checkpoint: the manifest
/// and the trial segments — telemetry objects excluded by name.
fn checkpoint_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if name == "MANIFEST" || name.starts_with("seg-") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    out
}

/// Tracing is strictly out-of-band: a traced campaign records
/// bit-identical histories to an untraced one, at every worker count.
#[test]
fn traced_and_untraced_histories_are_bit_identical() {
    let catalog = postgres_v9_6();
    for workers in [1usize, 4] {
        let untraced = Campaign::new(catalog.clone(), spec(), opts(workers, None)).run();
        let tracer = Arc::new(RecordingTracer::new());
        let traced =
            Campaign::new(catalog.clone(), spec(), opts(workers, Some(tracer.clone()))).run();
        assert_eq!(
            history_bits(&untraced),
            history_bits(&traced),
            "histories diverged under tracing at {workers} workers"
        );
        assert!(tracer.export_jsonl().is_some(), "tracer saw no events at {workers} workers");
    }
}

/// Store-backed campaigns persist byte-identical checkpoints traced vs
/// untraced; the traced store additionally carries telemetry objects
/// that never enter the manifest.
#[test]
fn tracing_never_changes_checkpoint_bytes() {
    let catalog = postgres_v9_6();

    let plain_dir = tmp_dir("untraced");
    let store = TrialStore::open(&plain_dir).unwrap();
    Campaign::new(catalog.clone(), spec(), opts(2, None)).run_with_store(&store).unwrap();

    let traced_dir = tmp_dir("traced");
    let store = TrialStore::open(&traced_dir).unwrap();
    let tracer = Arc::new(RecordingTracer::new());
    Campaign::new(catalog, spec(), opts(2, Some(tracer))).run_with_store(&store).unwrap();

    assert_eq!(
        checkpoint_bytes(&plain_dir),
        checkpoint_bytes(&traced_dir),
        "tracing perturbed the persisted checkpoint"
    );
    let telemetry = |dir: &Path| {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with("telemetry-"))
            .collect();
        names.sort();
        names
    };
    assert_eq!(telemetry(&plain_dir), Vec::<String>::new());
    assert_eq!(
        telemetry(&traced_dir),
        vec!["telemetry-local.metrics.json".to_string(), "telemetry-local.trace.jsonl".to_string()]
    );
}

/// Traces are a pure function of (seed, config): the exported JSONL is
/// byte-identical across worker counts, and round-trips through the
/// schema-validating parser.
#[test]
fn trace_export_is_worker_count_invariant_and_round_trips() {
    let catalog = postgres_v9_6();
    let export = |workers: usize| {
        let tracer = Arc::new(RecordingTracer::new());
        Campaign::new(catalog.clone(), spec(), opts(workers, Some(tracer.clone()))).run();
        tracer.export_jsonl().expect("traced campaign produced no events")
    };
    let reference = export(1);
    assert_eq!(reference, export(4), "trace bytes diverged across worker counts");

    let events = parse_trace_jsonl(&reference).unwrap();
    assert!(!events.is_empty());
    let rendered: String = events.iter().map(|e| format!("{}\n", e.to_json())).collect();
    assert_eq!(rendered, reference, "trace JSONL did not round-trip through the parser");
    for span in ["session.start", "round", "trial", "session.end"] {
        assert!(events.iter().any(|e| e.span == span), "no {span} span in the trace");
    }
}

/// `llamatune-report`'s input contract: the report built from the
/// *stored* telemetry alone reproduces the campaign's best-so-far
/// curves and fault totals.
#[test]
fn report_is_reproducible_from_stored_telemetry_alone() {
    let catalog = postgres_v9_6();
    let dir = tmp_dir("report");
    let store = TrialStore::open(&dir).unwrap();
    let tracer = Arc::new(RecordingTracer::new());
    let results =
        Campaign::new(catalog, spec(), opts(2, Some(tracer))).run_with_store(&store).unwrap();

    let trace = store.read_telemetry("local.trace.jsonl").unwrap().unwrap();
    let events = parse_trace_jsonl(std::str::from_utf8(&trace).unwrap()).unwrap();
    let metrics = store.read_telemetry("local.metrics.json").unwrap().unwrap();
    let metrics = MetricsSnapshot::from_json(std::str::from_utf8(&metrics).unwrap()).unwrap();
    let report = build_report(&events, Some(metrics)).unwrap();

    assert_eq!(report.sessions.len(), results.len());
    for (s, r) in report.sessions.iter().zip(&results) {
        assert_eq!(s.session, r.label);
        assert_eq!(s.best_curve, r.history.best_curve, "{}: best curve diverged", r.label);
    }
    let totals = report.metrics.as_ref().unwrap();
    let expected: u64 = results.iter().map(|r| r.faults.quarantine_hits).sum();
    assert_eq!(totals.counter("policy.quarantine_hits"), expected);
    let expected: u64 = results.iter().map(|r| r.faults.retries).sum();
    assert_eq!(totals.counter("policy.retries"), expected);
}

//! The observability stack's out-of-band contract, pinned end to end:
//! tracing never perturbs what a campaign records or persists, traces
//! themselves are deterministic across worker counts, and the session
//! report is reproducible from the stored telemetry alone.

use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_obs::aggregate::events_to_jsonl;
use llamatune_obs::trace::{parse_trace_jsonl, RecordingTracer, Tracer};
use llamatune_obs::{
    build_report, MemoryProgressSink, MetricsExporter, MetricsRegistry, MetricsSnapshot,
    TelemetrySet,
};
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignOptions, CampaignResult, CampaignSpec, OptimizerKind,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::{LocalDirBackend, StoreBackend, StoreOptions, TrialStore};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

fn quick_run_options() -> RunOptions {
    RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() }
}

fn spec() -> CampaignSpec {
    CampaignSpec {
        workloads: vec!["ycsb_b".into(), "ycsb_f".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1],
    }
}

fn opts(trial_workers: usize, tracer: Option<Arc<RecordingTracer>>) -> CampaignOptions {
    let mut opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers,
        session_parallelism: 1,
        run_options: Some(quick_run_options()),
        ..Default::default()
    };
    if let Some(t) = tracer {
        opts.tracer = t;
    }
    opts
}

fn history_bits(results: &[CampaignResult]) -> Vec<(String, Vec<u64>, Vec<u64>)> {
    results
        .iter()
        .map(|r| {
            let bits = |h: &[f64]| h.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            (r.label.clone(), bits(&r.history.scores), bits(&r.history.best_curve))
        })
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("llamatune_obs_test")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every store artifact that belongs to the checkpoint: the manifest
/// and the trial segments — telemetry objects excluded by name.
fn checkpoint_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if name == "MANIFEST" || name.starts_with("seg-") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    out
}

/// Tracing is strictly out-of-band: a traced campaign records
/// bit-identical histories to an untraced one, at every worker count.
#[test]
fn traced_and_untraced_histories_are_bit_identical() {
    let catalog = postgres_v9_6();
    for workers in [1usize, 4] {
        let untraced = Campaign::new(catalog.clone(), spec(), opts(workers, None)).run();
        let tracer = Arc::new(RecordingTracer::new());
        let traced =
            Campaign::new(catalog.clone(), spec(), opts(workers, Some(tracer.clone()))).run();
        assert_eq!(
            history_bits(&untraced),
            history_bits(&traced),
            "histories diverged under tracing at {workers} workers"
        );
        assert!(tracer.export_jsonl().is_some(), "tracer saw no events at {workers} workers");
    }
}

/// Store-backed campaigns persist byte-identical checkpoints traced vs
/// untraced; the traced store additionally carries telemetry objects
/// that never enter the manifest.
#[test]
fn tracing_never_changes_checkpoint_bytes() {
    let catalog = postgres_v9_6();

    let plain_dir = tmp_dir("untraced");
    let store = TrialStore::open(&plain_dir).unwrap();
    Campaign::new(catalog.clone(), spec(), opts(2, None)).run_with_store(&store).unwrap();

    let traced_dir = tmp_dir("traced");
    let store = TrialStore::open(&traced_dir).unwrap();
    let tracer = Arc::new(RecordingTracer::new());
    Campaign::new(catalog, spec(), opts(2, Some(tracer))).run_with_store(&store).unwrap();

    assert_eq!(
        checkpoint_bytes(&plain_dir),
        checkpoint_bytes(&traced_dir),
        "tracing perturbed the persisted checkpoint"
    );
    let telemetry = |dir: &Path| {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with("telemetry-"))
            .collect();
        names.sort();
        names
    };
    assert_eq!(telemetry(&plain_dir), Vec::<String>::new());
    assert_eq!(
        telemetry(&traced_dir),
        vec!["telemetry-local.metrics.json".to_string(), "telemetry-local.trace.jsonl".to_string()]
    );
}

/// Traces are a pure function of (seed, config): the exported JSONL is
/// byte-identical across worker counts, and round-trips through the
/// schema-validating parser.
#[test]
fn trace_export_is_worker_count_invariant_and_round_trips() {
    let catalog = postgres_v9_6();
    let export = |workers: usize| {
        let tracer = Arc::new(RecordingTracer::new());
        Campaign::new(catalog.clone(), spec(), opts(workers, Some(tracer.clone()))).run();
        tracer.export_jsonl().expect("traced campaign produced no events")
    };
    let reference = export(1);
    assert_eq!(reference, export(4), "trace bytes diverged across worker counts");

    let events = parse_trace_jsonl(&reference).unwrap();
    assert!(!events.is_empty());
    let rendered: String = events.iter().map(|e| format!("{}\n", e.to_json())).collect();
    assert_eq!(rendered, reference, "trace JSONL did not round-trip through the parser");
    for span in ["session.start", "round", "trial", "session.end"] {
        assert!(events.iter().any(|e| e.span == span), "no {span} span in the trace");
    }
}

/// `llamatune-report`'s input contract: the report built from the
/// *stored* telemetry alone reproduces the campaign's best-so-far
/// curves and fault totals.
#[test]
fn report_is_reproducible_from_stored_telemetry_alone() {
    let catalog = postgres_v9_6();
    let dir = tmp_dir("report");
    let store = TrialStore::open(&dir).unwrap();
    let tracer = Arc::new(RecordingTracer::new());
    let results =
        Campaign::new(catalog, spec(), opts(2, Some(tracer))).run_with_store(&store).unwrap();

    let trace = store.read_telemetry("local.trace.jsonl").unwrap().unwrap();
    let events = parse_trace_jsonl(std::str::from_utf8(&trace).unwrap()).unwrap();
    let metrics = store.read_telemetry("local.metrics.json").unwrap().unwrap();
    let metrics = MetricsSnapshot::from_json(std::str::from_utf8(&metrics).unwrap()).unwrap();
    let report = build_report(&events, Some(metrics)).unwrap();

    assert_eq!(report.sessions.len(), results.len());
    for (s, r) in report.sessions.iter().zip(&results) {
        assert_eq!(s.session, r.label);
        assert_eq!(s.best_curve, r.history.best_curve, "{}: best curve diverged", r.label);
    }
    let totals = report.metrics.as_ref().unwrap();
    let expected: u64 = results.iter().map(|r| r.faults.quarantine_hits).sum();
    assert_eq!(totals.counter("policy.quarantine_hits"), expected);
    let expected: u64 = results.iter().map(|r| r.faults.retries).sum();
    assert_eq!(totals.counter("policy.retries"), expected);
}

/// A traced fleet persists one `telemetry-<tag>.*` pair per registered
/// writer, and the aggregate module's merged view of those pairs is
/// byte-identical at every worker count — and identical to the merged
/// view of a single-writer store of the same campaign.
#[test]
fn fleet_persists_per_writer_telemetry_and_merge_is_worker_count_invariant() {
    let catalog = postgres_v9_6();
    let run_fleet = |workers: usize, tag: &str| {
        let dir = tmp_dir(tag);
        let backend: Arc<dyn StoreBackend> = Arc::new(LocalDirBackend::create(&dir).unwrap());
        let tracer = Arc::new(RecordingTracer::new());
        Campaign::new(catalog.clone(), spec(), opts(2, Some(tracer)))
            .run_shared(backend, workers, StoreOptions::default())
            .unwrap();
        dir
    };
    let dir1 = run_fleet(1, "fleet_w1");
    let dir2 = run_fleet(2, "fleet_w2");

    for (dir, workers) in [(&dir1, 1usize), (&dir2, 2)] {
        for w in 0..workers {
            for suffix in ["trace.jsonl", "metrics.json"] {
                let name = format!("telemetry-w{w}.{suffix}");
                assert!(dir.join(&name).exists(), "{workers}-worker fleet missing {name}");
            }
        }
        // The derived fleet pair rides along either way.
        assert!(dir.join("telemetry-fleet.trace.jsonl").exists());
    }

    let merged = |dir: &Path| {
        let set = TelemetrySet::load_dir(dir).unwrap();
        (events_to_jsonl(&set.merged_events()), set.merged_metrics())
    };
    let (trace1, metrics1) = merged(&dir1);
    let (trace2, metrics2) = merged(&dir2);
    assert!(!trace1.is_empty());
    assert_eq!(trace1, trace2, "merged fleet trace diverged across worker counts");
    assert_eq!(
        metrics1.counter("policy.retries"),
        metrics2.counter("policy.retries"),
        "merged fault counters diverged across worker counts"
    );

    // A single-writer store of the same campaign merges to the same
    // bytes: the fleet changes who records, never what is recorded.
    let single = tmp_dir("fleet_single");
    let store = TrialStore::open(&single).unwrap();
    let tracer = Arc::new(RecordingTracer::new());
    Campaign::new(catalog, spec(), opts(2, Some(tracer))).run_with_store(&store).unwrap();
    let (trace_single, _) = merged(&single);
    assert_eq!(trace1, trace_single, "fleet merge diverged from the single-writer store");
}

/// The progress sink receives one update per completed round, and the
/// stream is deterministic: same values at every trial-worker count,
/// with cumulative counters and a monotone best-so-far.
#[test]
fn progress_stream_is_per_round_and_worker_count_invariant() {
    let catalog = postgres_v9_6();
    let run = |trial_workers: usize| {
        let sink = Arc::new(MemoryProgressSink::new());
        let mut o = opts(trial_workers, None);
        o.progress = Some(sink.clone());
        let results = Campaign::new(catalog.clone(), spec(), o).run();
        (sink.updates(), results)
    };
    let (updates, results) = run(1);
    let (updates4, _) = run(4);
    assert_eq!(updates, updates4, "progress updates diverged across trial-worker counts");

    for r in &results {
        let mine: Vec<_> = updates.iter().filter(|u| u.session == r.label).collect();
        assert!(!mine.is_empty(), "{}: no progress updates", r.label);
        assert_eq!(mine[0].iteration, 0, "{}: first update is the default round", r.label);
        assert_eq!(mine[0].phase, "default");
        let evaluated: u64 = mine.iter().map(|u| u.round_size).sum();
        assert_eq!(evaluated as usize, r.history.scores.len(), "{}: rounds ≠ trials", r.label);
        let mut best = f64::NEG_INFINITY;
        for u in &mine {
            assert!(u.best_so_far >= best, "{}: best-so-far regressed", r.label);
            best = u.best_so_far;
            assert!(u.regret >= 0.0);
            assert!(u.attempts >= u.round_size || u.iteration == 0);
        }
        let last = mine.last().unwrap();
        assert_eq!(last.best_so_far, *r.history.best_curve.last().unwrap());
    }
}

/// A campaign-wide live registry sees every session's writes as they
/// happen (via registry forwarding) and renders as a Prometheus scrape
/// body — while each session's own snapshot stays session-scoped.
#[test]
fn live_metrics_registry_aggregates_the_campaign_and_renders_prometheus() {
    let catalog = postgres_v9_6();
    let live = Arc::new(MetricsRegistry::new());
    let mut o = opts(2, None);
    o.live_metrics = Some(live.clone());
    let results = Campaign::new(catalog, spec(), o).run();

    let scraped = live.snapshot();
    for name in ["cache.misses", "policy.retries"] {
        let expected: u64 = results.iter().map(|r| r.metrics.counter(name)).sum();
        assert_eq!(scraped.counter(name), expected, "live {name} ≠ sum of session snapshots");
    }
    // Per-session snapshots stayed session-scoped: each strictly below
    // the campaign-wide total (two sessions both evaluate trials).
    let total = scraped.counter("cache.misses");
    assert!(total > 0);
    for r in &results {
        assert!(r.metrics.counter("cache.misses") < total, "{}: snapshot not scoped", r.label);
    }

    let body = MetricsExporter::new(live).render();
    assert!(body.contains("# TYPE llamatune_cache_misses_total counter\n"));
    assert!(body.contains(&format!("llamatune_cache_misses_total {total}\n")));
    assert!(body.contains("# TYPE llamatune_session_evaluate_ms histogram\n"));
}

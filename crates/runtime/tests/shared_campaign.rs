//! Fleet campaigns: N workers sharing one knowledge base through
//! `Campaign::run_shared`.
//!
//! The acceptance bar (mirroring the single-store checkpoint suite):
//! a 4-worker fleet writing into one object-store backend produces the
//! *same exported event history* as the single-store run, and killing
//! any worker mid-round — injected at the storage seam, where a real
//! `kill -9` bites — followed by a fresh `run_shared` (any worker
//! count) converges to that history byte for byte.

use llamatune::history_io::{dedup_events, events_from_jsonl, session_curves};
use llamatune::pipeline::LlamaTuneConfig;
use llamatune::session::SessionOptions;
use llamatune_engine::RunOptions;
use llamatune_runtime::{
    AdapterKind, Campaign, CampaignOptions, CampaignSpec, OptimizerKind, WarmStartOptions,
};
use llamatune_space::catalog::postgres_v9_6;
use llamatune_store::{
    FailingBackend, FaultPlan, ObjectStoreBackend, ObjectStoreOptions, SessionStatus, StoreBackend,
    StoreOptions, TrialStore,
};
use std::sync::Arc;

fn object_backend() -> Arc<dyn StoreBackend> {
    Arc::new(ObjectStoreBackend::new(ObjectStoreOptions { eventual_list: true }))
}

fn fleet_store_opts() -> StoreOptions {
    // Tiny segments so every session crosses several CAS rotations.
    StoreOptions { segment_records: 5 }
}

fn campaign() -> Campaign {
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let spec = CampaignSpec {
        workloads: vec!["ycsb_b".into(), "ycsb_f".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![1, 2],
    };
    let opts = CampaignOptions {
        session: SessionOptions { iterations: 8, n_init: 3, ..Default::default() },
        batch_size: 3,
        trial_workers: 2,
        run_options: Some(run_opts),
        ..Default::default()
    };
    Campaign::new(postgres_v9_6(), spec, opts)
}

#[test]
fn four_worker_fleet_matches_the_single_store_run_and_resumes_for_free() {
    let campaign = campaign();

    // Single-store ground truth.
    let truth_be = object_backend();
    let truth_store = TrialStore::open_backend(truth_be, StoreOptions::default()).unwrap();
    let truth = campaign.run_with_store(&truth_store).unwrap();
    let truth_export = truth_store.export_jsonl();

    // 4 workers, one backend, 4 sessions pulled from a shared queue.
    let be = object_backend();
    let results = campaign.run_shared(be.clone(), 4, fleet_store_opts()).unwrap();
    assert_eq!(results.len(), 4);
    for (a, b) in truth.iter().zip(&results) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.history.scores, b.history.scores);
        assert_eq!(a.history.points, b.history.points);
        assert_eq!(a.history.best_curve, b.history.best_curve);
    }

    let reader = TrialStore::open_reader(be.clone(), StoreOptions::default()).unwrap();
    assert_eq!(reader.export_jsonl(), truth_export, "merged fleet view equals the single store");
    for r in &results {
        let meta = reader.session_meta(&r.label).expect("meta recorded");
        assert_eq!(meta.status, SessionStatus::Done);
        assert!(meta.lease.is_none(), "lease released on completion: {:?}", meta.lease);
    }
    // The raw merged stream is curve-consumable after deduplication.
    let events = dedup_events(&events_from_jsonl(&reader.export_jsonl()).unwrap());
    assert_eq!(session_curves(&events).unwrap().len(), 4);

    // Re-running the finished fleet re-evaluates nothing.
    let records_before = reader.trial_records();
    let resumed = campaign.run_shared(be.clone(), 2, fleet_store_opts()).unwrap();
    let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
    assert_eq!(reader.trial_records(), records_before, "no re-evaluation on fleet resume");
    for (a, b) in truth.iter().zip(&resumed) {
        assert_eq!(a.history.scores, b.history.scores);
        assert_eq!(a.history.configs, b.history.configs);
    }
}

#[test]
fn killing_any_worker_mid_round_resumes_byte_identically() {
    let campaign = campaign();

    // Fleet ground truth (fleet runs are deterministic per cell, so a
    // clean fleet's export is the reference for every kill scenario).
    let clean_be = object_backend();
    campaign.run_shared(clean_be.clone(), 4, fleet_store_opts()).unwrap();
    let truth_export =
        TrialStore::open_reader(clean_be, StoreOptions::default()).unwrap().export_jsonl();

    // Kill each of the four sessions' workers in turn: appends carrying
    // that session's label start failing mid-round (allow = 5 lets the
    // lease metadata and the first trials through), which is the
    // storage-visible footprint of that worker dying.
    let victims = [
        "ycsb_b/llamatune/smac/s1",
        "ycsb_b/llamatune/smac/s2",
        "ycsb_f/llamatune/smac/s1",
        "ycsb_f/llamatune/smac/s2",
    ];
    for victim in victims {
        let inner = object_backend();
        let failing: Arc<dyn StoreBackend> = Arc::new(FailingBackend::new(
            inner.clone(),
            FaultPlan::FailAppendsMatching { needle: victim.to_string(), allow: 5 },
        ));
        let err = campaign.run_shared(failing, 4, fleet_store_opts()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe, "kill {victim}: {err}");

        // The victim's session is stranded mid-round, still leased...
        let reader = TrialStore::open_reader(inner.clone(), StoreOptions::default()).unwrap();
        let meta = reader.session_meta(victim).expect("victim's lease metadata survived");
        assert_eq!(meta.status, SessionStatus::Running, "kill {victim}");
        assert!(meta.lease.is_some(), "kill {victim}: lease still held by the dead worker");
        assert!(
            reader.export_jsonl() != truth_export,
            "kill {victim}: the kill must actually lose work for this test to bite"
        );

        // ...and a fresh fleet (different worker count) takes it over
        // and converges to the identical exported history.
        campaign.run_shared(inner.clone(), 2, fleet_store_opts()).unwrap();
        let reader = TrialStore::open_reader(inner, StoreOptions::default()).unwrap();
        assert_eq!(reader.export_jsonl(), truth_export, "kill {victim}: resume diverged");
        let meta = reader.session_meta(victim).unwrap();
        assert_eq!(meta.status, SessionStatus::Done, "kill {victim}");
        assert!(meta.lease.is_none(), "kill {victim}: lease released after takeover");
    }
}

#[test]
fn fleet_warm_start_reads_the_merged_view_of_past_fleets() {
    // Phase 1: a 2-worker fleet tunes the source workload to completion.
    let catalog = postgres_v9_6();
    let run_opts =
        RunOptions { duration_s: 0.2, warmup_s: 0.05, max_txns: 20_000, ..Default::default() };
    let base_opts = CampaignOptions {
        session: SessionOptions { iterations: 6, n_init: 3, ..Default::default() },
        batch_size: 2,
        trial_workers: 2,
        run_options: Some(run_opts),
        ..Default::default()
    };
    let source = CampaignSpec {
        workloads: vec!["ycsb_a".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![7, 8],
    };
    let be = object_backend();
    Campaign::new(catalog.clone(), source, base_opts.clone())
        .run_shared(be.clone(), 2, fleet_store_opts())
        .unwrap();

    // Phase 2: a later fleet tunes a fingerprint-adjacent workload with
    // warm start on; its sessions must seed from the merged store the
    // first fleet's workers wrote.
    let target = CampaignSpec {
        workloads: vec!["ycsb_f".into()],
        adapters: vec![AdapterKind::LlamaTune(LlamaTuneConfig::default())],
        optimizers: vec![OptimizerKind::Smac],
        seeds: vec![7],
    };
    let opts = CampaignOptions {
        warm_start: Some(WarmStartOptions { k: 2, max_distance: 1.9 }),
        ..base_opts
    };
    let results =
        Campaign::new(catalog, target, opts).run_shared(be.clone(), 2, fleet_store_opts()).unwrap();
    let reader = TrialStore::open_reader(be, StoreOptions::default()).unwrap();
    let meta = reader.session_meta(&results[0].label).unwrap();
    assert!(!meta.warm_points.is_empty(), "transfer found the first fleet's session");
    assert_eq!(
        meta.warm_points,
        reader.top_points("ycsb_a/llamatune/smac/s7", 2),
        "warm points come from the matched source session (same adapter identity and seed)"
    );
}

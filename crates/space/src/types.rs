//! Core knob types: domains, values, units, special values.

use std::fmt;

/// Engineering unit of a knob, kept as metadata so the engine can convert
/// raw knob values into bytes / durations without guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Plain count (connections, workers, tuples, ...).
    Count,
    /// 8 kB buffer pages (PostgreSQL's `BLCKSZ`).
    Pages8k,
    /// Kilobytes.
    KiloBytes,
    /// 16 MB WAL segments.
    WalSegments16Mb,
    /// Milliseconds.
    Millis,
    /// Microseconds.
    Micros,
    /// Seconds.
    Seconds,
    /// Dimensionless factor / cost multiplier.
    Factor,
}

/// The domain of a knob.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Discrete numerical knob over an inclusive range.
    Integer { min: i64, max: i64 },
    /// Continuous numerical knob over an inclusive range.
    Float { min: f64, max: f64 },
    /// Categorical knob over a fixed set of choices (order carries no
    /// meaning; optimizers must treat the values as unordered).
    Categorical { choices: &'static [&'static str] },
}

impl Domain {
    /// Number of distinct values, if finite and easily countable.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            Domain::Integer { min, max } => Some((max - min) as u64 + 1),
            Domain::Float { .. } => None,
            Domain::Categorical { choices } => Some(choices.len() as u64),
        }
    }

    /// Whether this is a categorical domain.
    pub fn is_categorical(&self) -> bool {
        matches!(self, Domain::Categorical { .. })
    }
}

/// A special value of a "hybrid" knob (Section 4.1 of the paper): setting
/// the knob to exactly this value triggers a qualitatively different
/// behavior (disable a feature, defer to another knob, use a heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecialValue {
    /// The magic value (always an integer in PostgreSQL: `0` or `-1`).
    pub value: i64,
    /// Human-readable action, quoted from the knob documentation.
    pub meaning: &'static str,
}

/// A single runtime value for a knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KnobValue {
    /// Value of an integer knob.
    Int(i64),
    /// Value of a float knob.
    Float(f64),
    /// Index into the choices of a categorical knob.
    Cat(usize),
}

impl KnobValue {
    /// Integer payload.
    ///
    /// # Panics
    /// Panics if the value is not `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            KnobValue::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Float payload (also accepts `Int`, widening it).
    ///
    /// # Panics
    /// Panics if the value is categorical.
    pub fn as_float(&self) -> f64 {
        match self {
            KnobValue::Float(v) => *v,
            KnobValue::Int(v) => *v as f64,
            other => panic!("expected numeric value, got {other:?}"),
        }
    }

    /// Categorical index payload.
    ///
    /// # Panics
    /// Panics if the value is not `Cat`.
    pub fn as_cat(&self) -> usize {
        match self {
            KnobValue::Cat(v) => *v,
            other => panic!("expected Cat, got {other:?}"),
        }
    }
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Int(v) => write!(f, "{v}"),
            KnobValue::Float(v) => write!(f, "{v:.4}"),
            KnobValue::Cat(v) => write!(f, "#{v}"),
        }
    }
}

/// A tunable DBMS parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Knob {
    /// Knob name as it appears in `postgresql.conf`.
    pub name: &'static str,
    /// Value domain.
    pub domain: Domain,
    /// Server default.
    pub default: KnobValue,
    /// Special value, for hybrid knobs only.
    pub special: Option<SpecialValue>,
    /// Engineering unit.
    pub unit: Unit,
    /// One-line description from the documentation.
    pub description: &'static str,
}

impl Knob {
    /// Whether this knob is *hybrid*, i.e. has a special value.
    pub fn is_hybrid(&self) -> bool {
        self.special.is_some()
    }

    /// Checks that `value` matches the domain type and lies inside it.
    pub fn validates(&self, value: &KnobValue) -> bool {
        match (&self.domain, value) {
            (Domain::Integer { min, max }, KnobValue::Int(v)) => v >= min && v <= max,
            (Domain::Float { min, max }, KnobValue::Float(v)) => v >= min && v <= max,
            (Domain::Categorical { choices }, KnobValue::Cat(i)) => *i < choices.len(),
            _ => false,
        }
    }

    /// Converts a knob value to bytes where the unit allows it.
    pub fn value_to_bytes(&self, value: &KnobValue) -> Option<u64> {
        let raw = match value {
            KnobValue::Int(v) => *v,
            KnobValue::Float(v) => *v as i64,
            KnobValue::Cat(_) => return None,
        };
        if raw < 0 {
            return None;
        }
        let raw = raw as u64;
        match self.unit {
            Unit::Pages8k => Some(raw * 8 * 1024),
            Unit::KiloBytes => Some(raw * 1024),
            Unit::WalSegments16Mb => Some(raw * 16 * 1024 * 1024),
            _ => None,
        }
    }

    /// Renders the concrete choice label for a categorical value.
    pub fn choice_label(&self, value: &KnobValue) -> Option<&'static str> {
        match (&self.domain, value) {
            (Domain::Categorical { choices }, KnobValue::Cat(i)) => choices.get(*i).copied(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_knob() -> Knob {
        Knob {
            name: "backend_flush_after",
            domain: Domain::Integer { min: 0, max: 256 },
            default: KnobValue::Int(0),
            special: Some(SpecialValue { value: 0, meaning: "forced writeback disabled" }),
            unit: Unit::Pages8k,
            description: "pages after which previously performed writes are flushed to disk",
        }
    }

    #[test]
    fn validates_respects_bounds_and_types() {
        let k = test_knob();
        assert!(k.validates(&KnobValue::Int(0)));
        assert!(k.validates(&KnobValue::Int(256)));
        assert!(!k.validates(&KnobValue::Int(257)));
        assert!(!k.validates(&KnobValue::Int(-1)));
        assert!(!k.validates(&KnobValue::Float(1.0)));
        assert!(!k.validates(&KnobValue::Cat(0)));
    }

    #[test]
    fn categorical_validation() {
        let k = Knob {
            name: "synchronous_commit",
            domain: Domain::Categorical { choices: &["on", "off"] },
            default: KnobValue::Cat(0),
            special: None,
            unit: Unit::Count,
            description: "",
        };
        assert!(k.validates(&KnobValue::Cat(1)));
        assert!(!k.validates(&KnobValue::Cat(2)));
        assert_eq!(k.choice_label(&KnobValue::Cat(1)), Some("off"));
        assert_eq!(k.choice_label(&KnobValue::Cat(7)), None);
    }

    #[test]
    fn value_to_bytes_units() {
        let k = test_knob();
        assert_eq!(k.value_to_bytes(&KnobValue::Int(2)), Some(16 * 1024));
        let kb = Knob { unit: Unit::KiloBytes, ..test_knob() };
        assert_eq!(kb.value_to_bytes(&KnobValue::Int(4)), Some(4096));
        let wal = Knob { unit: Unit::WalSegments16Mb, ..test_knob() };
        assert_eq!(wal.value_to_bytes(&KnobValue::Int(1)), Some(16 * 1024 * 1024));
        let ms = Knob { unit: Unit::Millis, ..test_knob() };
        assert_eq!(ms.value_to_bytes(&KnobValue::Int(5)), None);
        assert_eq!(k.value_to_bytes(&KnobValue::Int(-1)), None);
    }

    #[test]
    fn cardinality() {
        assert_eq!(Domain::Integer { min: 0, max: 256 }.cardinality(), Some(257));
        assert_eq!(Domain::Float { min: 0.0, max: 1.0 }.cardinality(), None);
        assert_eq!(Domain::Categorical { choices: &["a", "b", "c"] }.cardinality(), Some(3));
    }

    #[test]
    fn hybrid_flag() {
        assert!(test_knob().is_hybrid());
        let plain = Knob { special: None, ..test_knob() };
        assert!(!plain.is_hybrid());
    }
}

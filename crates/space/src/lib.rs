//! DBMS configuration-space model for the LlamaTune reproduction.
//!
//! This crate defines the *typed knob space* that every other layer consumes:
//!
//! * [`Knob`] — a single tunable parameter with an integer, float, or
//!   categorical domain, a default, an engineering unit, and (for the paper's
//!   "hybrid" knobs) a *special value* that changes semantics discontinuously
//!   (e.g. `backend_flush_after = 0` disables forced writeback entirely).
//! * [`ConfigSpace`] — an ordered collection of knobs with the min–max
//!   unit-space conversions from Section 3.3 of the paper (numerical knobs
//!   scale linearly into `[0, 1]`; categorical knobs split `[0, 1]` into
//!   equal bins).
//! * [`catalog`] — the PostgreSQL v9.6 catalog (90 knobs, 17 hybrid) and the
//!   PostgreSQL v13.6 catalog (112 knobs, 23 hybrid) used throughout the
//!   evaluation, modeled on the official documentation.
//!
//! The knob *semantics* (what `shared_buffers` does to performance) live in
//! `llamatune-engine`; this crate only owns names, domains, defaults, and
//! conversions, exactly like the configuration layer of a real tuner.

pub mod catalog;
pub mod conf_file;
pub mod space;
pub mod types;

pub use space::{Config, ConfigSpace, KnobAssignment};
pub use types::{Domain, Knob, KnobValue, SpecialValue, Unit};

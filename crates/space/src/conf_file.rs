//! Rendering configurations as `postgresql.conf` fragments (with
//! human-readable units) and parsing them back — the artifact a tuner
//! actually hands to an operator.

use crate::space::{Config, ConfigSpace};
use crate::types::{Domain, KnobValue, Unit};

/// Renders one knob value the way `postgresql.conf` expects it, using the
/// knob's unit (`16384` pages -> `'128MB'`, `200` ms -> `'200ms'`).
pub fn render_value(space: &ConfigSpace, knob_idx: usize, value: &KnobValue) -> String {
    let knob = &space.knobs()[knob_idx];
    if let Some(label) = knob.choice_label(value) {
        return label.to_string();
    }
    match (value, knob.unit) {
        (KnobValue::Int(v), Unit::Pages8k) if *v >= 0 => format_bytes(*v as u64 * 8 * 1024),
        (KnobValue::Int(v), Unit::KiloBytes) if *v >= 0 => format_bytes(*v as u64 * 1024),
        (KnobValue::Int(v), Unit::WalSegments16Mb) if *v >= 0 => {
            format_bytes(*v as u64 * 16 * 1024 * 1024)
        }
        (KnobValue::Int(v), Unit::Millis) => format!("{v}ms"),
        (KnobValue::Int(v), Unit::Micros) => format!("{v}"),
        (KnobValue::Int(v), Unit::Seconds) => format!("{v}s"),
        (KnobValue::Int(v), _) => format!("{v}"),
        (KnobValue::Float(v), _) => format!("{v}"),
        (KnobValue::Cat(i), _) => format!("{i}"),
    }
}

fn format_bytes(bytes: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * KB;
    const GB: u64 = 1024 * MB;
    if bytes >= GB && bytes.is_multiple_of(GB) {
        format!("{}GB", bytes / GB)
    } else if bytes >= MB && bytes.is_multiple_of(MB) {
        format!("{}MB", bytes / MB)
    } else if bytes >= KB && bytes.is_multiple_of(KB) {
        format!("{}kB", bytes / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Renders a full configuration as a `postgresql.conf` fragment,
/// optionally restricted to knobs that differ from the defaults.
pub fn to_conf(space: &ConfigSpace, config: &Config, only_changed: bool) -> String {
    let defaults = space.default_config();
    let mut out = String::new();
    for (idx, (knob, value)) in space.knobs().iter().zip(config.values()).enumerate() {
        if only_changed && value == &defaults.values()[idx] {
            continue;
        }
        out.push_str(&format!("{} = {}\n", knob.name, render_value(space, idx, value)));
    }
    out
}

/// Parses a `postgresql.conf` fragment back into a configuration, starting
/// from defaults. Unknown knobs and malformed lines are reported as errors;
/// comments and blank lines are skipped.
pub fn from_conf(space: &ConfigSpace, text: &str) -> Result<Config, String> {
    let mut config = space.default_config();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: missing '=': {raw}", lineno + 1))?;
        let name = name.trim();
        let value = value.trim().trim_matches('\'');
        let idx = space
            .index_of(name)
            .ok_or_else(|| format!("line {}: unknown knob {name}", lineno + 1))?;
        let knob = &space.knobs()[idx];
        let parsed = match &knob.domain {
            Domain::Categorical { choices } => {
                let ci = choices
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(value))
                    .ok_or_else(|| format!("line {}: bad choice {value} for {name}", lineno + 1))?;
                KnobValue::Cat(ci)
            }
            Domain::Float { .. } => KnobValue::Float(
                value.parse::<f64>().map_err(|e| format!("line {}: {e}", lineno + 1))?,
            ),
            Domain::Integer { .. } => KnobValue::Int(parse_sized_int(value, knob.unit)?),
        };
        if !knob.validates(&parsed) {
            return Err(format!("line {}: {parsed:?} outside {name}'s domain", lineno + 1));
        }
        config.values_mut()[idx] = parsed;
    }
    Ok(config)
}

/// Parses `128MB` / `200ms` / `-1` style values into the knob's native
/// integer unit.
fn parse_sized_int(value: &str, unit: Unit) -> Result<i64, String> {
    let value = value.trim();
    let (digits, suffix) = match value.find(|c: char| c.is_ascii_alphabetic()) {
        Some(pos) => value.split_at(pos),
        None => (value, ""),
    };
    let n: i64 = digits.trim().parse().map_err(|e| format!("bad integer {value}: {e}"))?;
    if suffix.is_empty() {
        return Ok(n);
    }
    let bytes: i64 = match suffix.to_ascii_lowercase().as_str() {
        "b" => n,
        "kb" => n * 1024,
        "mb" => n * 1024 * 1024,
        "gb" => n * 1024 * 1024 * 1024,
        "ms" => return Ok(n),
        "s" => return Ok(n),
        "min" => return Ok(n * 60),
        other => return Err(format!("unknown unit suffix {other}")),
    };
    match unit {
        Unit::Pages8k => Ok(bytes / (8 * 1024)),
        Unit::KiloBytes => Ok(bytes / 1024),
        Unit::WalSegments16Mb => Ok(bytes / (16 * 1024 * 1024)),
        _ => Ok(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::postgres_v9_6;

    #[test]
    fn renders_sizes_with_units() {
        let space = postgres_v9_6();
        let sb = space.index_of("shared_buffers").unwrap();
        assert_eq!(render_value(&space, sb, &KnobValue::Int(16_384)), "128MB");
        assert_eq!(render_value(&space, sb, &KnobValue::Int(131_072)), "1GB");
        let wd = space.index_of("wal_writer_delay").unwrap();
        assert_eq!(render_value(&space, wd, &KnobValue::Int(200)), "200ms");
        let sc = space.index_of("synchronous_commit").unwrap();
        assert_eq!(render_value(&space, sc, &KnobValue::Cat(1)), "off");
    }

    #[test]
    fn default_config_renders_empty_diff() {
        let space = postgres_v9_6();
        let conf = to_conf(&space, &space.default_config(), true);
        assert!(conf.is_empty(), "nothing changed: {conf}");
        let full = to_conf(&space, &space.default_config(), false);
        assert_eq!(full.lines().count(), space.len());
    }

    #[test]
    fn conf_roundtrip_preserves_values() {
        let space = postgres_v9_6();
        let mut cfg = space.default_config();
        let sb = space.index_of("shared_buffers").unwrap();
        let cd = space.index_of("commit_delay").unwrap();
        let sc = space.index_of("synchronous_commit").unwrap();
        let ccp = space.index_of("checkpoint_completion_target").unwrap();
        cfg.values_mut()[sb] = KnobValue::Int(524_288);
        cfg.values_mut()[cd] = KnobValue::Int(5_000);
        cfg.values_mut()[sc] = KnobValue::Cat(1);
        cfg.values_mut()[ccp] = KnobValue::Float(0.9);
        let text = to_conf(&space, &cfg, true);
        let back = from_conf(&space, &text).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let space = postgres_v9_6();
        let text = "# a comment\n\nshared_buffers = 256MB   # inline comment\n";
        let cfg = from_conf(&space, text).unwrap();
        let sb = space.index_of("shared_buffers").unwrap();
        assert_eq!(cfg.values()[sb], KnobValue::Int(32_768));
    }

    #[test]
    fn parser_rejects_unknown_knobs_and_bad_values() {
        let space = postgres_v9_6();
        assert!(from_conf(&space, "not_a_knob = 1\n").is_err());
        assert!(from_conf(&space, "shared_buffers\n").is_err());
        assert!(from_conf(&space, "synchronous_commit = banana\n").is_err());
        // Out-of-domain value.
        assert!(from_conf(&space, "max_connections = 5\n").is_err());
    }

    #[test]
    fn negative_specials_survive_roundtrip() {
        let space = postgres_v9_6();
        let text = "wal_buffers = -1\nautovacuum_work_mem = -1\n";
        let cfg = from_conf(&space, text).unwrap();
        let wb = space.index_of("wal_buffers").unwrap();
        assert_eq!(cfg.values()[wb], KnobValue::Int(-1));
    }

    #[test]
    fn quoted_values_accepted() {
        let space = postgres_v9_6();
        let cfg = from_conf(&space, "shared_buffers = '1GB'\n").unwrap();
        let sb = space.index_of("shared_buffers").unwrap();
        assert_eq!(cfg.values()[sb], KnobValue::Int(131_072));
    }
}

//! PostgreSQL knob catalogs, modeled on the official documentation \[28\].
//!
//! * [`postgres_v9_6`] — the 90 tunable knobs used for most of the paper's
//!   evaluation, 17 of which are *hybrid* (have a special value). Knobs
//!   related to debugging, security, and path-setting are excluded, as in
//!   Section 6.1.
//! * [`postgres_v13_6`] — the 112-knob catalog of Section 6.3 (23 hybrid):
//!   v9.6 minus `replacement_sort_tuples` (removed upstream) plus 23 knobs
//!   introduced between v10 and v13 (JIT, parallel query, WAL, autovacuum
//!   insert thresholds, ...).
//!
//! Unbounded upper limits are pruned to "reasonable" values exactly as the
//! paper does for Table 3 (e.g. `shared_buffers` capped at 16 GB on the
//! 16 GB evaluation box).

use crate::space::ConfigSpace;
use crate::types::{Domain, Knob, KnobValue, SpecialValue, Unit};

const BOOL: &[&str] = &["off", "on"];

fn int(
    name: &'static str,
    min: i64,
    max: i64,
    default: i64,
    unit: Unit,
    description: &'static str,
) -> Knob {
    Knob {
        name,
        domain: Domain::Integer { min, max },
        default: KnobValue::Int(default),
        special: None,
        unit,
        description,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the knob-table column layout
fn int_sp(
    name: &'static str,
    min: i64,
    max: i64,
    default: i64,
    special: i64,
    meaning: &'static str,
    unit: Unit,
    description: &'static str,
) -> Knob {
    Knob {
        name,
        domain: Domain::Integer { min, max },
        default: KnobValue::Int(default),
        special: Some(SpecialValue { value: special, meaning }),
        unit,
        description,
    }
}

fn flt(name: &'static str, min: f64, max: f64, default: f64, description: &'static str) -> Knob {
    Knob {
        name,
        domain: Domain::Float { min, max },
        default: KnobValue::Float(default),
        special: None,
        unit: Unit::Factor,
        description,
    }
}

fn cat(
    name: &'static str,
    choices: &'static [&'static str],
    default_idx: usize,
    description: &'static str,
) -> Knob {
    Knob {
        name,
        domain: Domain::Categorical { choices },
        default: KnobValue::Cat(default_idx),
        special: None,
        unit: Unit::Count,
        description,
    }
}

fn toggle(name: &'static str, default_on: bool, description: &'static str) -> Knob {
    cat(name, BOOL, usize::from(default_on), description)
}

/// Knobs shared by both catalog versions (89 knobs, 17 hybrid).
fn common_knobs() -> Vec<Knob> {
    vec![
        // ------------------------------------------------ memory & resources
        int(
            "shared_buffers",
            16,
            2_097_152,
            16_384,
            Unit::Pages8k,
            "Amount of memory the server uses for shared memory buffers",
        ),
        int(
            "work_mem",
            64,
            2_097_152,
            4_096,
            Unit::KiloBytes,
            "Memory used by internal sort and hash operations before spilling",
        ),
        int(
            "maintenance_work_mem",
            1_024,
            2_097_152,
            65_536,
            Unit::KiloBytes,
            "Memory used by maintenance operations such as VACUUM",
        ),
        int_sp(
            "autovacuum_work_mem",
            -1,
            2_097_152,
            -1,
            -1,
            "use maintenance_work_mem instead",
            Unit::KiloBytes,
            "Memory used by each autovacuum worker",
        ),
        int(
            "temp_buffers",
            100,
            131_072,
            1_024,
            Unit::Pages8k,
            "Maximum temporary buffers per session",
        ),
        int(
            "effective_cache_size",
            16,
            2_097_152,
            524_288,
            Unit::Pages8k,
            "Planner assumption about the effective size of the disk cache",
        ),
        int_sp(
            "temp_file_limit",
            -1,
            20_971_520,
            -1,
            -1,
            "no limit on temporary file space",
            Unit::KiloBytes,
            "Maximum temporary file space per process",
        ),
        int(
            "max_stack_depth",
            100,
            7_680,
            2_048,
            Unit::KiloBytes,
            "Maximum safe execution stack depth",
        ),
        int(
            "huge_pages_try",
            0,
            2,
            0,
            Unit::Count,
            "Whether huge memory pages are requested (0=try, 1=off, 2=on)",
        ),
        // ------------------------------------------------ connections & workers
        int(
            "max_connections",
            10,
            1_000,
            100,
            Unit::Count,
            "Maximum number of concurrent connections",
        ),
        int_sp(
            "max_prepared_transactions",
            0,
            1_000,
            0,
            0,
            "prepared transactions are disabled",
            Unit::Count,
            "Maximum number of simultaneously prepared transactions",
        ),
        int(
            "max_files_per_process",
            25,
            50_000,
            1_000,
            Unit::Count,
            "Maximum number of simultaneously open files for each server process",
        ),
        int(
            "max_worker_processes",
            0,
            64,
            8,
            Unit::Count,
            "Maximum number of background worker processes",
        ),
        // ------------------------------------------------ WAL & checkpoints
        toggle("fsync", true, "Force synchronization of updates to disk"),
        cat(
            "synchronous_commit",
            &["on", "off", "local", "remote_write"],
            0,
            "Whether transaction commit waits for WAL flush",
        ),
        cat(
            "wal_sync_method",
            &["fdatasync", "fsync", "open_datasync", "open_sync"],
            0,
            "Method used for forcing WAL updates out to disk",
        ),
        toggle(
            "full_page_writes",
            true,
            "Write full pages to WAL when first modified after a checkpoint",
        ),
        toggle("wal_compression", false, "Compress full-page writes in WAL"),
        toggle("wal_log_hints", false, "Log full pages for non-critical hint-bit changes"),
        int_sp(
            "wal_buffers",
            -1,
            262_143,
            -1,
            -1,
            "1/32nd of shared_buffers (>= 64kB, <= one WAL segment)",
            Unit::Pages8k,
            "Number of disk-page buffers in shared memory for WAL",
        ),
        int(
            "wal_writer_delay",
            1,
            10_000,
            200,
            Unit::Millis,
            "Time between WAL flushes performed by the WAL writer",
        ),
        int_sp(
            "wal_writer_flush_after",
            0,
            2_097_152,
            128,
            0,
            "threshold-triggered flushing is disabled",
            Unit::Pages8k,
            "Amount of WAL written out by the WAL writer that triggers a flush",
        ),
        int_sp(
            "commit_delay",
            0,
            100_000,
            0,
            0,
            "group-commit delay is disabled",
            Unit::Micros,
            "Delay between transaction commit and flushing WAL to disk",
        ),
        int(
            "commit_siblings",
            0,
            1_000,
            5,
            Unit::Count,
            "Minimum concurrent open transactions before performing commit_delay",
        ),
        int(
            "checkpoint_timeout",
            30,
            86_400,
            300,
            Unit::Seconds,
            "Maximum time between automatic WAL checkpoints",
        ),
        flt(
            "checkpoint_completion_target",
            0.0,
            1.0,
            0.5,
            "Fraction of the checkpoint interval used to spread out dirty-page writes",
        ),
        int_sp(
            "checkpoint_flush_after",
            0,
            256,
            32,
            0,
            "forced writeback during checkpoints is disabled",
            Unit::Pages8k,
            "Pages after which checkpoint writes are flushed to disk",
        ),
        int(
            "max_wal_size",
            2,
            65_536,
            64,
            Unit::WalSegments16Mb,
            "WAL size that triggers a checkpoint",
        ),
        int(
            "min_wal_size",
            2,
            65_536,
            5,
            Unit::WalSegments16Mb,
            "WAL size below which segments are recycled rather than removed",
        ),
        int_sp(
            "backend_flush_after",
            0,
            256,
            0,
            0,
            "forced writeback by backends is disabled",
            Unit::Pages8k,
            "Number of pages after which previously performed writes are flushed to disk",
        ),
        // ------------------------------------------------ background writer
        int(
            "bgwriter_delay",
            10,
            10_000,
            200,
            Unit::Millis,
            "Background writer sleep time between rounds",
        ),
        int_sp(
            "bgwriter_lru_maxpages",
            0,
            1_000,
            100,
            0,
            "background writing is disabled",
            Unit::Count,
            "Maximum pages written per background writer round",
        ),
        flt(
            "bgwriter_lru_multiplier",
            0.0,
            10.0,
            2.0,
            "Multiple of recent buffer usage to write per round",
        ),
        int_sp(
            "bgwriter_flush_after",
            0,
            256,
            64,
            0,
            "forced writeback by the background writer is disabled",
            Unit::Pages8k,
            "Pages after which background writer writes are flushed to disk",
        ),
        // ------------------------------------------------ I/O, snapshots, locks
        int_sp(
            "effective_io_concurrency",
            0,
            1_000,
            1,
            0,
            "asynchronous prefetching is disabled",
            Unit::Count,
            "Number of concurrent disk I/O operations the server expects to issue",
        ),
        int_sp(
            "old_snapshot_threshold",
            -1,
            86_400,
            -1,
            -1,
            "snapshot-too-old errors are disabled",
            Unit::Seconds,
            "Time before a snapshot is too old to read pages changed after it",
        ),
        int(
            "deadlock_timeout",
            1,
            600_000,
            1_000,
            Unit::Millis,
            "Time to wait on a lock before checking for deadlock",
        ),
        int(
            "max_locks_per_transaction",
            10,
            1_000,
            64,
            Unit::Count,
            "Shared lock-table slots per transaction",
        ),
        int(
            "max_pred_locks_per_transaction",
            10,
            1_000,
            64,
            Unit::Count,
            "Shared predicate-lock slots per transaction",
        ),
        // ------------------------------------------------ cost-based vacuum
        int_sp(
            "vacuum_cost_delay",
            0,
            100,
            0,
            0,
            "cost-based vacuum delay is disabled",
            Unit::Millis,
            "Time vacuum sleeps when the cost limit is exceeded",
        ),
        int(
            "vacuum_cost_page_hit",
            0,
            10_000,
            1,
            Unit::Count,
            "Vacuum cost for a page found in the buffer cache",
        ),
        int(
            "vacuum_cost_page_miss",
            0,
            10_000,
            10,
            Unit::Count,
            "Vacuum cost for a page read from disk",
        ),
        int(
            "vacuum_cost_page_dirty",
            0,
            10_000,
            20,
            Unit::Count,
            "Vacuum cost for a page dirtied by cleanup",
        ),
        int(
            "vacuum_cost_limit",
            1,
            10_000,
            200,
            Unit::Count,
            "Accumulated vacuum cost that triggers a sleep",
        ),
        // ------------------------------------------------ autovacuum
        toggle("autovacuum", true, "Start the autovacuum launcher"),
        int(
            "autovacuum_max_workers",
            1,
            64,
            3,
            Unit::Count,
            "Maximum number of simultaneously running autovacuum workers",
        ),
        int(
            "autovacuum_naptime",
            1,
            3_600,
            60,
            Unit::Seconds,
            "Sleep time between autovacuum runs",
        ),
        int(
            "autovacuum_vacuum_threshold",
            0,
            1_000_000,
            50,
            Unit::Count,
            "Minimum number of dead tuples before vacuuming a table",
        ),
        int(
            "autovacuum_analyze_threshold",
            0,
            1_000_000,
            50,
            Unit::Count,
            "Minimum number of changed tuples before analyzing a table",
        ),
        flt(
            "autovacuum_vacuum_scale_factor",
            0.0,
            1.0,
            0.2,
            "Fraction of table size added to autovacuum_vacuum_threshold",
        ),
        flt(
            "autovacuum_analyze_scale_factor",
            0.0,
            1.0,
            0.1,
            "Fraction of table size added to autovacuum_analyze_threshold",
        ),
        int(
            "autovacuum_freeze_max_age",
            100_000,
            2_000_000_000,
            200_000_000,
            Unit::Count,
            "Age at which to autovacuum a table to prevent transaction ID wraparound",
        ),
        int(
            "autovacuum_multixact_freeze_max_age",
            10_000,
            2_000_000_000,
            400_000_000,
            Unit::Count,
            "Multixact age at which to autovacuum a table",
        ),
        int_sp(
            "autovacuum_vacuum_cost_delay",
            -1,
            100,
            20,
            -1,
            "use vacuum_cost_delay instead",
            Unit::Millis,
            "Vacuum cost delay, for autovacuum",
        ),
        int_sp(
            "autovacuum_vacuum_cost_limit",
            -1,
            10_000,
            -1,
            -1,
            "use vacuum_cost_limit instead",
            Unit::Count,
            "Vacuum cost limit, for autovacuum",
        ),
        int(
            "vacuum_freeze_min_age",
            0,
            1_000_000_000,
            50_000_000,
            Unit::Count,
            "Minimum age at which VACUUM should freeze a table row",
        ),
        // ------------------------------------------------ planner costs
        flt(
            "seq_page_cost",
            0.0,
            100.0,
            1.0,
            "Planner's estimate of the cost of a sequentially fetched disk page",
        ),
        flt(
            "random_page_cost",
            0.0,
            100.0,
            4.0,
            "Planner's estimate of the cost of a nonsequentially fetched disk page",
        ),
        flt(
            "cpu_tuple_cost",
            0.0,
            10.0,
            0.01,
            "Planner's estimate of the cost of processing each tuple",
        ),
        flt(
            "cpu_index_tuple_cost",
            0.0,
            10.0,
            0.005,
            "Planner's estimate of the cost of processing each index entry",
        ),
        flt(
            "cpu_operator_cost",
            0.0,
            10.0,
            0.0025,
            "Planner's estimate of the cost of processing each operator or function",
        ),
        flt(
            "parallel_setup_cost",
            0.0,
            100_000.0,
            1_000.0,
            "Planner's estimate of the cost of starting worker processes",
        ),
        flt(
            "parallel_tuple_cost",
            0.0,
            10.0,
            0.1,
            "Planner's estimate of the cost of passing a tuple from a worker",
        ),
        int(
            "min_parallel_relation_size",
            0,
            131_072,
            1_024,
            Unit::Pages8k,
            "Minimum relation size considered for parallel scan",
        ),
        // ------------------------------------------------ planner methods
        toggle("enable_bitmapscan", true, "Enables the planner's use of bitmap-scan plans"),
        toggle("enable_hashagg", true, "Enables the planner's use of hashed aggregation"),
        toggle("enable_hashjoin", true, "Enables the planner's use of hash-join plans"),
        toggle("enable_indexonlyscan", true, "Enables the planner's use of index-only-scan plans"),
        toggle("enable_indexscan", true, "Enables the planner's use of index-scan plans"),
        toggle("enable_material", true, "Enables the planner's use of materialization"),
        toggle("enable_mergejoin", true, "Enables the planner's use of merge-join plans"),
        toggle("enable_nestloop", true, "Enables the planner's use of nested-loop joins"),
        toggle("enable_seqscan", true, "Enables the planner's use of sequential-scan plans"),
        toggle("enable_sort", true, "Enables the planner's use of explicit sort steps"),
        toggle("enable_tidscan", true, "Enables the planner's use of TID-scan plans"),
        // ------------------------------------------------ GEQO & planner misc
        toggle("geqo", true, "Enables genetic query optimization"),
        int("geqo_threshold", 2, 100, 12, Unit::Count, "FROM items beyond which GEQO is used"),
        int("geqo_effort", 1, 10, 5, Unit::Count, "GEQO: effort used to set default parameters"),
        int_sp(
            "geqo_pool_size",
            0,
            1_000,
            0,
            0,
            "a suitable value is chosen based on geqo_effort and table count",
            Unit::Count,
            "GEQO: number of individuals in the genetic population",
        ),
        int_sp(
            "geqo_generations",
            0,
            1_000,
            0,
            0,
            "a suitable value is chosen based on geqo_effort",
            Unit::Count,
            "GEQO: number of iterations of the algorithm",
        ),
        flt("geqo_selection_bias", 1.5, 2.0, 2.0, "GEQO: selective pressure within the population"),
        flt("geqo_seed", 0.0, 1.0, 0.0, "GEQO: seed for random path selection"),
        int(
            "default_statistics_target",
            1,
            10_000,
            100,
            Unit::Count,
            "Default statistics target for table columns",
        ),
        flt(
            "cursor_tuple_fraction",
            0.0,
            1.0,
            0.1,
            "Planner's estimate of the fraction of a cursor's rows that will be retrieved",
        ),
        cat(
            "constraint_exclusion",
            &["partition", "on", "off"],
            0,
            "Controls the planner's use of table constraints to optimize queries",
        ),
        int(
            "from_collapse_limit",
            1,
            100,
            8,
            Unit::Count,
            "FROM items beyond which subqueries are not collapsed",
        ),
        int(
            "join_collapse_limit",
            1,
            100,
            8,
            Unit::Count,
            "JOIN constructs beyond which they are not flattened",
        ),
        cat(
            "force_parallel_mode",
            &["off", "on", "regress"],
            0,
            "Forces the planner's use of parallel query facilities",
        ),
    ]
}

/// The PostgreSQL v9.6 catalog: 90 knobs, 17 of them hybrid.
pub fn postgres_v9_6() -> ConfigSpace {
    let mut knobs = common_knobs();
    // v9.6-only knobs.
    knobs.push(int(
        "replacement_sort_tuples",
        0,
        1_000_000,
        150_000,
        Unit::Count,
        "Maximum tuples for which replacement selection sort is used",
    ));
    knobs.push(int(
        "max_parallel_workers_per_gather",
        0,
        64,
        0,
        Unit::Count,
        "Maximum parallel worker processes per Gather node",
    ));
    ConfigSpace::new(knobs)
}

/// The PostgreSQL v13.6 catalog of Section 6.3: 112 knobs, 23 hybrid.
///
/// Relative to v9.6: `replacement_sort_tuples` is gone (removed upstream in
/// v11) and 23 knobs introduced between v10 and v13 are added, 6 of them
/// hybrid (`jit_*_cost`, `maintenance_io_concurrency`,
/// `max_slot_wal_keep_size`, `autovacuum_vacuum_insert_threshold`).
pub fn postgres_v13_6() -> ConfigSpace {
    let mut knobs = common_knobs();
    knobs.push(int(
        "max_parallel_workers_per_gather",
        0,
        64,
        2,
        Unit::Count,
        "Maximum parallel worker processes per Gather node",
    ));
    // JIT compilation (v11+).
    knobs.push(toggle("jit", true, "Allow JIT compilation"));
    knobs.push(int_sp(
        "jit_above_cost",
        -1,
        10_000_000,
        100_000,
        -1,
        "JIT compilation is disabled for all queries",
        Unit::Count,
        "Query cost above which JIT compilation is activated",
    ));
    knobs.push(int_sp(
        "jit_inline_above_cost",
        -1,
        10_000_000,
        500_000,
        -1,
        "inlining is never performed",
        Unit::Count,
        "Query cost above which JIT compiled functions are inlined",
    ));
    knobs.push(int_sp(
        "jit_optimize_above_cost",
        -1,
        10_000_000,
        500_000,
        -1,
        "expensive optimizations are never applied",
        Unit::Count,
        "Query cost above which JIT applies expensive optimizations",
    ));
    // Parallel query maturation (v10+).
    knobs.push(int(
        "max_parallel_workers",
        0,
        64,
        8,
        Unit::Count,
        "Maximum parallel workers active at one time",
    ));
    knobs.push(int(
        "max_parallel_maintenance_workers",
        0,
        64,
        2,
        Unit::Count,
        "Maximum parallel workers per maintenance operation",
    ));
    knobs.push(toggle(
        "parallel_leader_participation",
        true,
        "Leader also executes the parallel plan",
    ));
    // I/O (v13).
    knobs.push(int_sp(
        "maintenance_io_concurrency",
        0,
        1_000,
        10,
        0,
        "asynchronous prefetching for maintenance work is disabled",
        Unit::Count,
        "effective_io_concurrency for maintenance work",
    ));
    // WAL (v12/v13).
    knobs.push(int_sp(
        "max_slot_wal_keep_size",
        -1,
        65_536,
        -1,
        -1,
        "replication slots may retain an unlimited amount of WAL",
        Unit::WalSegments16Mb,
        "Maximum WAL size reserved by replication slots",
    ));
    knobs.push(toggle("wal_init_zero", true, "Zero-fill new WAL files"));
    knobs.push(toggle("wal_recycle", true, "Recycle WAL files by renaming them"));
    knobs.push(int(
        "wal_skip_threshold",
        0,
        2_097_152,
        2_048,
        Unit::KiloBytes,
        "Size of new files below which WAL is skipped at commit (wal_level=minimal)",
    ));
    // Autovacuum (v13).
    knobs.push(int_sp(
        "autovacuum_vacuum_insert_threshold",
        -1,
        1_000_000,
        1_000,
        -1,
        "insert-triggered vacuums are disabled",
        Unit::Count,
        "Minimum number of inserted tuples before vacuuming a table",
    ));
    knobs.push(flt(
        "autovacuum_vacuum_insert_scale_factor",
        0.0,
        1.0,
        0.2,
        "Fraction of inserts over table size that triggers vacuum",
    ));
    // Memory (v13).
    knobs.push(int(
        "logical_decoding_work_mem",
        64,
        2_097_152,
        65_536,
        Unit::KiloBytes,
        "Memory used by logical decoding before spilling",
    ));
    knobs.push(flt(
        "hash_mem_multiplier",
        1.0,
        100.0,
        1.0,
        "Multiple of work_mem available to hash tables",
    ));
    // Planner methods (v11-v13).
    knobs.push(toggle("enable_partitionwise_join", false, "Enables partitionwise join"));
    knobs.push(toggle(
        "enable_partitionwise_aggregate",
        false,
        "Enables partitionwise aggregation",
    ));
    knobs.push(toggle(
        "enable_parallel_append",
        true,
        "Enables the planner's use of parallel append plans",
    ));
    knobs.push(toggle(
        "enable_parallel_hash",
        true,
        "Enables the planner's use of parallel hash plans",
    ));
    knobs.push(toggle(
        "enable_incremental_sort",
        true,
        "Enables the planner's use of incremental sort steps",
    ));
    knobs.push(toggle(
        "enable_gathermerge",
        true,
        "Enables the planner's use of gather merge plans",
    ));
    knobs.push(cat(
        "plan_cache_mode",
        &["auto", "force_generic_plan", "force_custom_plan"],
        0,
        "Controls the planner's selection of custom or generic plan",
    ));
    ConfigSpace::new(knobs)
}

/// The hand-picked "expert" top-8 knob set for YCSB-A from Table 1.
pub const HAND_PICKED_TOP8_YCSB_A: [&str; 8] = [
    "autovacuum_analyze_scale_factor",
    "autovacuum_vacuum_scale_factor",
    "commit_delay",
    "full_page_writes",
    "geqo_selection_bias",
    "max_wal_size",
    "shared_buffers",
    "wal_writer_flush_after",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v9_6_has_90_knobs_17_hybrid() {
        let s = postgres_v9_6();
        assert_eq!(s.len(), 90, "paper tunes 90 knobs for v9.6");
        assert_eq!(s.hybrid_knobs().count(), 17, "paper identifies 17 hybrid knobs");
    }

    #[test]
    fn v13_6_has_112_knobs_23_hybrid() {
        let s = postgres_v13_6();
        assert_eq!(s.len(), 112, "paper tunes 112 knobs for v13.6");
        assert_eq!(s.hybrid_knobs().count(), 23, "paper identifies 23 hybrid knobs");
    }

    #[test]
    fn table2_examples_present_with_correct_specials() {
        let s = postgres_v9_6();
        let bfa = s.knob("backend_flush_after").unwrap();
        assert_eq!(bfa.special.unwrap().value, 0);
        assert_eq!(bfa.domain, Domain::Integer { min: 0, max: 256 });
        let gps = s.knob("geqo_pool_size").unwrap();
        assert_eq!(gps.special.unwrap().value, 0);
        let wb = s.knob("wal_buffers").unwrap();
        assert_eq!(wb.special.unwrap().value, -1);
        // For about half the hybrid knobs the special value IS the default.
        let at_default =
            s.hybrid_knobs().filter(|(_, k)| k.default.as_int() == k.special.unwrap().value);
        assert!(at_default.count() >= 7);
    }

    #[test]
    fn table3_large_range_knobs_present() {
        let s = postgres_v9_6();
        for (name, min_card) in [
            ("commit_delay", 100_000u64),
            ("max_files_per_process", 10_000),
            ("shared_buffers", 1_000_000),
            ("wal_writer_flush_after", 1_000_000),
        ] {
            let k = s.knob(name).unwrap();
            assert!(
                k.domain.cardinality().unwrap() > min_card,
                "{name} should have a large value range"
            );
        }
    }

    #[test]
    fn hand_picked_set_exists_and_forms_subspace() {
        let s = postgres_v9_6();
        let sub = s.subspace(&HAND_PICKED_TOP8_YCSB_A);
        assert_eq!(sub.len(), 8);
        assert!(s.validate(&s.default_config()).is_ok());
        assert!(sub.validate(&sub.default_config()).is_ok());
    }

    #[test]
    fn v13_6_contains_new_hybrids() {
        let s = postgres_v13_6();
        for name in [
            "jit_above_cost",
            "jit_inline_above_cost",
            "jit_optimize_above_cost",
            "maintenance_io_concurrency",
            "max_slot_wal_keep_size",
            "autovacuum_vacuum_insert_threshold",
        ] {
            assert!(s.knob(name).unwrap().is_hybrid(), "{name} should be hybrid");
        }
        assert!(s.knob("replacement_sort_tuples").is_none(), "removed in v11");
    }

    #[test]
    fn default_configs_are_valid() {
        for space in [postgres_v9_6(), postgres_v13_6()] {
            let cfg = space.default_config();
            assert!(space.validate(&cfg).is_ok());
        }
    }

    #[test]
    fn unit_roundtrip_over_whole_catalog() {
        let s = postgres_v9_6();
        let unit = vec![0.37; s.len()];
        let cfg = s.config_from_unit(&unit);
        assert!(s.validate(&cfg).is_ok());
        let back = s.config_to_unit(&cfg);
        let cfg2 = s.config_from_unit(&back);
        assert_eq!(cfg, cfg2, "unit conversion must be idempotent");
    }

    #[test]
    fn hybrid_defaults_match_docs_sample() {
        let s = postgres_v9_6();
        // backend_flush_after defaults to its special value.
        let k = s.knob("backend_flush_after").unwrap();
        assert_eq!(k.default, KnobValue::Int(0));
        // autovacuum_vacuum_cost_delay defaults to a NON-special value.
        let k = s.knob("autovacuum_vacuum_cost_delay").unwrap();
        assert_eq!(k.default, KnobValue::Int(20));
        assert_eq!(k.special.unwrap().value, -1);
    }
}

//! [`ConfigSpace`]: an ordered knob collection with the unit-space
//! conversions from Section 3.3 of the paper.

use crate::types::{Domain, Knob, KnobValue};
use std::collections::HashMap;

/// A concrete configuration: one value per knob of some [`ConfigSpace`],
/// in the same order.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    values: Vec<KnobValue>,
}

impl Config {
    /// Wraps raw values. Callers normally go through
    /// [`ConfigSpace::config_from_unit`] instead.
    pub fn new(values: Vec<KnobValue>) -> Self {
        Config { values }
    }

    /// The values, ordered like the owning space's knobs.
    pub fn values(&self) -> &[KnobValue] {
        &self.values
    }

    /// Mutable access, for targeted overrides in tests and sweeps.
    pub fn values_mut(&mut self) -> &mut [KnobValue] {
        &mut self.values
    }
}

/// A name → value view of a configuration. Subset spaces (e.g. the paper's
/// "top-8 knobs" experiments) produce assignments that only mention the
/// tuned knobs; consumers fall back to catalog defaults for the rest.
pub type KnobAssignment = HashMap<&'static str, KnobValue>;

/// An ordered, immutable collection of knobs plus conversion logic between
/// DBMS values and the optimizer-facing unit hypercube `[0, 1]^D`.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    knobs: Vec<Knob>,
    by_name: HashMap<&'static str, usize>,
}

impl ConfigSpace {
    /// Builds a space from a knob list.
    ///
    /// # Panics
    /// Panics if two knobs share a name or a knob's default violates its own
    /// domain — both are catalog bugs worth failing loudly on.
    pub fn new(knobs: Vec<Knob>) -> Self {
        let mut by_name = HashMap::with_capacity(knobs.len());
        for (i, k) in knobs.iter().enumerate() {
            assert!(
                k.validates(&k.default),
                "default {:?} of knob {} violates its domain",
                k.default,
                k.name
            );
            if let Some(sp) = &k.special {
                match &k.domain {
                    Domain::Integer { min, max } => assert!(
                        sp.value >= *min && sp.value <= *max,
                        "special value of {} outside domain",
                        k.name
                    ),
                    other => panic!("special value on non-integer knob {} ({other:?})", k.name),
                }
            }
            let prev = by_name.insert(k.name, i);
            assert!(prev.is_none(), "duplicate knob name {}", k.name);
        }
        ConfigSpace { knobs, by_name }
    }

    /// Number of knobs (the paper's `D`).
    pub fn len(&self) -> usize {
        self.knobs.len()
    }

    /// Whether the space has no knobs.
    pub fn is_empty(&self) -> bool {
        self.knobs.is_empty()
    }

    /// The knobs, in order.
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// Looks a knob up by name.
    pub fn knob(&self, name: &str) -> Option<&Knob> {
        self.by_name.get(name).map(|&i| &self.knobs[i])
    }

    /// Index of a knob by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The hybrid knobs (those with special values), as `(index, &Knob)`.
    pub fn hybrid_knobs(&self) -> impl Iterator<Item = (usize, &Knob)> {
        self.knobs.iter().enumerate().filter(|(_, k)| k.is_hybrid())
    }

    /// The configuration with every knob at its server default.
    pub fn default_config(&self) -> Config {
        Config::new(self.knobs.iter().map(|k| k.default).collect())
    }

    /// Restricts the space to the named knobs (used for the Section 2.3
    /// "top-8 knobs" experiments).
    ///
    /// # Panics
    /// Panics if a name is unknown.
    pub fn subspace(&self, names: &[&str]) -> ConfigSpace {
        let knobs = names
            .iter()
            .map(|n| self.knob(n).unwrap_or_else(|| panic!("unknown knob {n}")).clone())
            .collect();
        ConfigSpace::new(knobs)
    }

    /// Converts one unit-space coordinate `u ∈ [0, 1]` to a knob value via
    /// the min–max scaling of Section 3.3 (round to integer for discrete
    /// knobs; equal-width binning for categorical knobs).
    pub fn unit_to_value(&self, knob_idx: usize, u: f64) -> KnobValue {
        let u = u.clamp(0.0, 1.0);
        match &self.knobs[knob_idx].domain {
            Domain::Integer { min, max } => {
                let span = (*max - *min) as f64;
                let v = (*min as f64 + u * span).round() as i64;
                KnobValue::Int(v.clamp(*min, *max))
            }
            Domain::Float { min, max } => KnobValue::Float(min + u * (max - min)),
            Domain::Categorical { choices } => {
                let k = choices.len();
                let idx = ((u * k as f64).floor() as usize).min(k - 1);
                KnobValue::Cat(idx)
            }
        }
    }

    /// Converts a knob value back to a unit-space coordinate (inverse of
    /// [`Self::unit_to_value`] up to rounding; categorical values map to
    /// their bin center).
    pub fn value_to_unit(&self, knob_idx: usize, value: &KnobValue) -> f64 {
        match (&self.knobs[knob_idx].domain, value) {
            (Domain::Integer { min, max }, KnobValue::Int(v)) => {
                if max == min {
                    0.0
                } else {
                    (*v - *min) as f64 / (*max - *min) as f64
                }
            }
            (Domain::Float { min, max }, KnobValue::Float(v)) => {
                if max == min {
                    0.0
                } else {
                    (v - min) / (max - min)
                }
            }
            (Domain::Categorical { choices }, KnobValue::Cat(i)) => {
                (*i as f64 + 0.5) / choices.len() as f64
            }
            (d, v) => panic!("type mismatch: domain {d:?} value {v:?}"),
        }
    }

    /// Converts a full unit-space point to a configuration.
    ///
    /// # Panics
    /// Panics if `point.len() != self.len()`.
    pub fn config_from_unit(&self, point: &[f64]) -> Config {
        assert_eq!(point.len(), self.len(), "unit point dimension mismatch");
        Config::new(point.iter().enumerate().map(|(i, &u)| self.unit_to_value(i, u)).collect())
    }

    /// Converts a configuration to a unit-space point.
    pub fn config_to_unit(&self, config: &Config) -> Vec<f64> {
        assert_eq!(config.values().len(), self.len());
        config.values().iter().enumerate().map(|(i, v)| self.value_to_unit(i, v)).collect()
    }

    /// Checks every value of `config` against its knob's domain.
    pub fn validate(&self, config: &Config) -> Result<(), String> {
        if config.values().len() != self.len() {
            return Err(format!(
                "config has {} values, space has {} knobs",
                config.values().len(),
                self.len()
            ));
        }
        for (k, v) in self.knobs.iter().zip(config.values()) {
            if !k.validates(v) {
                return Err(format!("value {v:?} invalid for knob {}", k.name));
            }
        }
        Ok(())
    }

    /// Produces a name → value map (for engines that fall back to defaults
    /// for knobs outside a subset space).
    pub fn assignment(&self, config: &Config) -> KnobAssignment {
        self.knobs.iter().zip(config.values()).map(|(k, v)| (k.name, *v)).collect()
    }

    /// Pretty-prints a configuration as `name = value` lines (categorical
    /// values rendered with their labels).
    pub fn render(&self, config: &Config) -> String {
        let mut out = String::new();
        for (k, v) in self.knobs.iter().zip(config.values()) {
            let rendered = match k.choice_label(v) {
                Some(label) => label.to_string(),
                None => v.to_string(),
            };
            out.push_str(&format!("{} = {}\n", k.name, rendered));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SpecialValue, Unit};
    use proptest::prelude::*;

    fn small_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Knob {
                name: "int_knob",
                domain: Domain::Integer { min: 10, max: 110 },
                default: KnobValue::Int(10),
                special: None,
                unit: Unit::Count,
                description: "",
            },
            Knob {
                name: "float_knob",
                domain: Domain::Float { min: -1.0, max: 3.0 },
                default: KnobValue::Float(0.0),
                special: None,
                unit: Unit::Factor,
                description: "",
            },
            Knob {
                name: "cat_knob",
                domain: Domain::Categorical { choices: &["a", "b", "c", "d"] },
                default: KnobValue::Cat(0),
                special: None,
                unit: Unit::Count,
                description: "",
            },
            Knob {
                name: "hybrid_knob",
                domain: Domain::Integer { min: -1, max: 100 },
                default: KnobValue::Int(-1),
                special: Some(SpecialValue { value: -1, meaning: "auto" }),
                unit: Unit::Count,
                description: "",
            },
        ])
    }

    #[test]
    fn unit_to_value_endpoints() {
        let s = small_space();
        assert_eq!(s.unit_to_value(0, 0.0), KnobValue::Int(10));
        assert_eq!(s.unit_to_value(0, 1.0), KnobValue::Int(110));
        assert_eq!(s.unit_to_value(0, 0.5), KnobValue::Int(60));
        assert_eq!(s.unit_to_value(1, 0.5), KnobValue::Float(1.0));
        assert_eq!(s.unit_to_value(2, 0.0), KnobValue::Cat(0));
        assert_eq!(s.unit_to_value(2, 0.99), KnobValue::Cat(3));
        // u = 1.0 must not overflow the choice list.
        assert_eq!(s.unit_to_value(2, 1.0), KnobValue::Cat(3));
    }

    #[test]
    fn unit_values_clamp_out_of_range_inputs() {
        let s = small_space();
        assert_eq!(s.unit_to_value(0, -0.5), KnobValue::Int(10));
        assert_eq!(s.unit_to_value(0, 1.5), KnobValue::Int(110));
    }

    #[test]
    fn categorical_bins_are_equal_width() {
        let s = small_space();
        // 4 choices -> bins of width 0.25.
        assert_eq!(s.unit_to_value(2, 0.24), KnobValue::Cat(0));
        assert_eq!(s.unit_to_value(2, 0.25), KnobValue::Cat(1));
        assert_eq!(s.unit_to_value(2, 0.50), KnobValue::Cat(2));
        assert_eq!(s.unit_to_value(2, 0.75), KnobValue::Cat(3));
    }

    #[test]
    fn default_config_is_valid() {
        let s = small_space();
        let c = s.default_config();
        assert!(s.validate(&c).is_ok());
    }

    #[test]
    fn validate_catches_bad_values() {
        let s = small_space();
        let mut c = s.default_config();
        c.values_mut()[0] = KnobValue::Int(5000);
        assert!(s.validate(&c).is_err());
        let mut c2 = s.default_config();
        c2.values_mut()[2] = KnobValue::Cat(9);
        assert!(s.validate(&c2).is_err());
    }

    #[test]
    fn subspace_preserves_knob_identity() {
        let s = small_space();
        let sub = s.subspace(&["cat_knob", "int_knob"]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.knobs()[0].name, "cat_knob");
        assert_eq!(sub.knobs()[1].name, "int_knob");
    }

    #[test]
    #[should_panic(expected = "unknown knob")]
    fn subspace_rejects_unknown_names() {
        small_space().subspace(&["nope"]);
    }

    #[test]
    fn assignment_maps_names() {
        let s = small_space();
        let a = s.assignment(&s.default_config());
        assert_eq!(a.get("int_knob"), Some(&KnobValue::Int(10)));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn hybrid_iterator_finds_only_hybrids() {
        let s = small_space();
        let hybrids: Vec<_> = s.hybrid_knobs().map(|(i, k)| (i, k.name)).collect();
        assert_eq!(hybrids, vec![(3, "hybrid_knob")]);
    }

    #[test]
    fn render_uses_choice_labels() {
        let s = small_space();
        let mut c = s.default_config();
        c.values_mut()[2] = KnobValue::Cat(2);
        let text = s.render(&c);
        assert!(text.contains("cat_knob = c"));
        assert!(text.contains("int_knob = 10"));
    }

    #[test]
    #[should_panic(expected = "duplicate knob name")]
    fn duplicate_names_rejected() {
        let k = small_space().knobs()[0].clone();
        ConfigSpace::new(vec![k.clone(), k]);
    }

    proptest! {
        /// unit -> value -> unit is a contraction: converting twice gives
        /// the same value (rounding is idempotent).
        #[test]
        fn roundtrip_is_idempotent(u in 0.0f64..=1.0, idx in 0usize..4) {
            let s = small_space();
            let v1 = s.unit_to_value(idx, u);
            let u1 = s.value_to_unit(idx, &v1);
            let v2 = s.unit_to_value(idx, u1);
            prop_assert_eq!(v1, v2);
        }

        /// Every unit point maps to a valid configuration.
        #[test]
        fn all_unit_points_valid(us in proptest::collection::vec(0.0f64..=1.0, 4)) {
            let s = small_space();
            let c = s.config_from_unit(&us);
            prop_assert!(s.validate(&c).is_ok());
        }

        /// value_to_unit stays within [0, 1].
        #[test]
        fn value_to_unit_in_range(u in 0.0f64..=1.0, idx in 0usize..4) {
            let s = small_space();
            let v = s.unit_to_value(idx, u);
            let back = s.value_to_unit(idx, &v);
            prop_assert!((0.0..=1.0).contains(&back));
        }
    }
}

//! Write-ahead log: append accounting (with full-page-write amplification
//! and buffer-full stalls) and the group-commit flush pipeline that
//! `commit_delay`, `commit_siblings`, and `synchronous_commit` act on.

use crate::bufferpool::PageId;
use crate::sim::Micros;
use std::collections::HashSet;

/// Outcome of appending WAL for one page modification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendOutcome {
    /// Bytes actually appended (record + any full-page image).
    pub bytes: u64,
    /// A full-page image was attached (first touch since checkpoint).
    pub full_page_image: bool,
    /// The WAL buffer overflowed: the backend must perform a synchronous
    /// buffer write before continuing.
    pub stalled: bool,
}

/// Outcome of a durable commit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitOutcome {
    /// Microseconds the committing backend waits for its flush.
    pub wait_us: u64,
    /// This commit started a new flush (charge the device); `false` means it
    /// rode an already-scheduled group flush for free.
    pub issued_flush: bool,
}

/// WAL bookkeeping for one run.
#[derive(Debug)]
pub struct WalState {
    buffers_bytes: u64,
    full_page_writes: bool,
    compression: bool,
    fsync_us: f64,

    /// Bytes appended since the last (any) flush.
    unflushed_bytes: u64,
    /// Bytes appended since the last checkpoint (drives max_wal_size).
    bytes_since_checkpoint: u64,
    /// Pages already carrying a full-page image this checkpoint cycle.
    fpw_done: HashSet<PageId>,

    // Group-commit epoch: the flush currently scheduled.
    epoch_flush_start: Micros,
    epoch_flush_end: Micros,

    // Statistics.
    pub total_bytes: u64,
    pub fpw_pages: u64,
    pub flushes: u64,
    pub group_commits: u64,
    pub stalls: u64,
    pub commits: u64,
}

/// Bytes of an ordinary WAL record for a row-level change.
pub const RECORD_BYTES: u64 = 180;
/// Bytes of a full-page image (page + header).
pub const FPI_BYTES: u64 = 8 * 1024 + 64;
/// Compression shrinks full-page images by roughly this factor.
pub const FPI_COMPRESSION_RATIO: f64 = 0.45;

impl WalState {
    /// Creates WAL state. `fsync_us` is the effective durable-flush cost
    /// (device fsync x `wal_sync_method` multiplier; ~0 when `fsync=off`).
    pub fn new(
        buffers_bytes: u64,
        full_page_writes: bool,
        compression: bool,
        fsync_us: f64,
    ) -> Self {
        WalState {
            buffers_bytes: buffers_bytes.max(64 * 1024),
            full_page_writes,
            compression,
            fsync_us,
            unflushed_bytes: 0,
            bytes_since_checkpoint: 0,
            fpw_done: HashSet::new(),
            epoch_flush_start: 0,
            epoch_flush_end: 0,
            total_bytes: 0,
            fpw_pages: 0,
            flushes: 0,
            group_commits: 0,
            stalls: 0,
            commits: 0,
        }
    }

    /// Appends a record for a modification of `page`.
    pub fn append(&mut self, page: PageId) -> AppendOutcome {
        let mut bytes = RECORD_BYTES;
        let mut fpi = false;
        if self.full_page_writes && self.fpw_done.insert(page) {
            fpi = true;
            self.fpw_pages += 1;
            let image = if self.compression {
                (FPI_BYTES as f64 * FPI_COMPRESSION_RATIO) as u64
            } else {
                FPI_BYTES
            };
            bytes += image;
        }
        self.total_bytes += bytes;
        self.bytes_since_checkpoint += bytes;
        self.unflushed_bytes += bytes;
        let stalled = self.unflushed_bytes > self.buffers_bytes;
        if stalled {
            self.stalls += 1;
            // The backend writes the buffer out itself (not a durable
            // flush, just freeing buffer space).
            self.unflushed_bytes = 0;
        }
        AppendOutcome { bytes, full_page_image: fpi, stalled }
    }

    /// Durable commit through the group-commit pipeline.
    ///
    /// A commit arriving before the currently scheduled flush has *started*
    /// rides it for free; otherwise it schedules a new flush that begins
    /// after any configured `commit_delay` (when at least `commit_siblings`
    /// other transactions are in flight) and after the device finishes the
    /// previous flush.
    pub fn commit_durable(
        &mut self,
        now: Micros,
        commit_delay_us: Option<u64>,
        siblings_met: bool,
        device_flush_us: f64,
    ) -> CommitOutcome {
        self.commits += 1;
        if now <= self.epoch_flush_start {
            // Ride the scheduled group flush.
            self.group_commits += 1;
            return CommitOutcome { wait_us: self.epoch_flush_end - now, issued_flush: false };
        }
        let delay = match commit_delay_us {
            Some(d) if siblings_met => d,
            _ => 0,
        };
        let start = (now + delay).max(self.epoch_flush_end);
        let cost = (self.fsync_us + device_flush_us) as u64;
        self.epoch_flush_start = start;
        self.epoch_flush_end = start + cost;
        self.flushes += 1;
        self.unflushed_bytes = 0;
        CommitOutcome { wait_us: self.epoch_flush_end - now, issued_flush: true }
    }

    /// Asynchronous commit: returns immediately; WAL is left for the WAL
    /// writer daemon.
    pub fn commit_async(&mut self) {
        self.commits += 1;
    }

    /// Background flush by the WAL writer; returns flushed bytes (0 when
    /// there was nothing to do).
    pub fn background_flush(&mut self) -> u64 {
        let bytes = self.unflushed_bytes;
        if bytes > 0 {
            self.unflushed_bytes = 0;
            self.flushes += 1;
        }
        bytes
    }

    /// Unflushed bytes currently sitting in the WAL buffer.
    pub fn unflushed_bytes(&self) -> u64 {
        self.unflushed_bytes
    }

    /// WAL volume since the last checkpoint (compared against
    /// `max_wal_size`).
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.bytes_since_checkpoint
    }

    /// Called by the checkpointer: resets the full-page-write epoch.
    pub fn on_checkpoint(&mut self) {
        self.bytes_since_checkpoint = 0;
        self.fpw_done.clear();
    }

    /// Mean commits per flush (group-commit effectiveness).
    pub fn avg_batch_size(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.commits as f64 / self.flushes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufferpool::page_id;

    fn wal() -> WalState {
        WalState::new(512 * 1024, true, false, 900.0)
    }

    #[test]
    fn first_touch_attaches_full_page_image() {
        let mut w = wal();
        let a = w.append(page_id(0, 1));
        assert!(a.full_page_image);
        assert_eq!(a.bytes, RECORD_BYTES + FPI_BYTES);
        // Second touch of the same page: record only.
        let b = w.append(page_id(0, 1));
        assert!(!b.full_page_image);
        assert_eq!(b.bytes, RECORD_BYTES);
    }

    #[test]
    fn checkpoint_resets_fpw_epoch() {
        let mut w = wal();
        w.append(page_id(0, 1));
        w.on_checkpoint();
        assert_eq!(w.bytes_since_checkpoint(), 0);
        let a = w.append(page_id(0, 1));
        assert!(a.full_page_image, "new checkpoint cycle re-images pages");
        assert_eq!(w.fpw_pages, 2);
    }

    #[test]
    fn fpw_off_never_images() {
        let mut w = WalState::new(512 * 1024, false, false, 900.0);
        let a = w.append(page_id(0, 1));
        assert!(!a.full_page_image);
        assert_eq!(a.bytes, RECORD_BYTES);
    }

    #[test]
    fn compression_shrinks_images() {
        let mut plain = WalState::new(512 * 1024, true, false, 900.0);
        let mut compressed = WalState::new(512 * 1024, true, true, 900.0);
        let a = plain.append(page_id(0, 9));
        let b = compressed.append(page_id(0, 9));
        assert!(b.bytes < a.bytes);
    }

    #[test]
    fn small_buffer_stalls() {
        let mut w = WalState::new(64 * 1024, true, false, 900.0);
        let mut stalled = false;
        for i in 0..20 {
            stalled |= w.append(page_id(0, i)).stalled;
        }
        assert!(stalled, "8 FPIs overflow a 64 kB buffer");
        assert!(w.stalls >= 1);
    }

    #[test]
    fn solo_commit_pays_full_fsync() {
        let mut w = wal();
        let c = w.commit_durable(10_000, None, false, 0.0);
        assert!(c.issued_flush);
        assert_eq!(c.wait_us, 900);
    }

    #[test]
    fn natural_group_commit_under_load() {
        let mut w = wal();
        // A @ t=0 issues a flush ending at 900.
        let a = w.commit_durable(1, None, false, 0.0);
        assert!(a.issued_flush);
        // B @ t=300 schedules the next flush (starts when the device frees).
        let b = w.commit_durable(300, None, false, 0.0);
        assert!(b.issued_flush);
        assert_eq!(b.wait_us, 901 + 900 - 300);
        // C @ t=500 arrives before B's flush starts: rides it for free.
        let c = w.commit_durable(500, None, false, 0.0);
        assert!(!c.issued_flush);
        assert_eq!(w.group_commits, 1);
    }

    #[test]
    fn commit_delay_widens_the_batch_window() {
        let mut w = wal();
        // With a 5 ms delay, the flush starts at t=5001.
        let a = w.commit_durable(1, Some(5_000), true, 0.0);
        assert!(a.issued_flush);
        assert_eq!(a.wait_us, 5_000 + 900);
        // Anything arriving in the window batches.
        for t in [500, 1_500, 3_000, 4_999] {
            let c = w.commit_durable(t, Some(5_000), true, 0.0);
            assert!(!c.issued_flush, "commit at {t} should ride the batch");
        }
        assert_eq!(w.flushes, 1);
        assert_eq!(w.avg_batch_size(), 5.0);
    }

    #[test]
    fn commit_delay_ignored_without_siblings() {
        let mut w = wal();
        let a = w.commit_durable(1, Some(5_000), false, 0.0);
        assert_eq!(a.wait_us, 900);
    }

    #[test]
    fn async_commit_skips_flush() {
        let mut w = wal();
        w.append(page_id(0, 1));
        w.commit_async();
        assert_eq!(w.flushes, 0);
        assert!(w.unflushed_bytes() > 0);
        let flushed = w.background_flush();
        assert!(flushed > 0);
        assert_eq!(w.unflushed_bytes(), 0);
        assert_eq!(w.background_flush(), 0, "nothing left to flush");
    }
}

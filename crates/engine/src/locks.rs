//! Row-level lock manager.
//!
//! Transactions acquire exclusive row locks in sorted key order (so the
//! simulation is deadlock-free by construction; `deadlock_timeout` only
//! bounds the worst-case wait) and hold them until commit, i.e. strict 2PL.
//! Because transactions are simulated in start-time order, the lock table
//! stores *release times*: a later transaction that touches a locked key
//! simply waits until the earlier holder's commit time.

use crate::sim::Micros;
use std::collections::HashMap;

/// A lockable row address.
pub type LockKey = (u32, u64);

/// Outcome of acquiring a set of row locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockGrant {
    /// Time spent waiting for the slowest conflicting holder.
    pub wait_us: Micros,
    /// Number of keys that conflicted.
    pub conflicts: u32,
    /// The wait exceeded the abort horizon and the transaction gives up.
    pub aborted: bool,
}

/// Lock table mapping keys to the time their current holder releases them.
#[derive(Debug, Default)]
pub struct LockTable {
    release_at: HashMap<LockKey, Micros>,
    /// Total waits observed (for metrics).
    pub waits: u64,
    pub wait_time_us: u64,
    pub aborts: u64,
    ops_since_sweep: u64,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire all `keys` at `now`. Waits for conflicting
    /// holders; if the cumulative wait would exceed `abort_after_us`
    /// (derived from `deadlock_timeout`), the transaction aborts instead.
    pub fn acquire(&mut self, now: Micros, keys: &[LockKey], abort_after_us: Micros) -> LockGrant {
        let mut wait_until = now;
        let mut conflicts = 0;
        for key in keys {
            if let Some(&rel) = self.release_at.get(key) {
                if rel > wait_until {
                    wait_until = rel;
                }
                if rel > now {
                    conflicts += 1;
                }
            }
        }
        let wait = wait_until - now;
        if conflicts > 0 {
            self.waits += 1;
            self.wait_time_us += wait;
        }
        if wait > abort_after_us {
            self.aborts += 1;
            return LockGrant { wait_us: abort_after_us, conflicts, aborted: true };
        }
        LockGrant { wait_us: wait, conflicts, aborted: false }
    }

    /// Registers that `keys` are held until `commit_time`.
    pub fn hold_until(&mut self, keys: &[LockKey], commit_time: Micros) {
        for key in keys {
            let slot = self.release_at.entry(*key).or_insert(0);
            if *slot < commit_time {
                *slot = commit_time;
            }
        }
        self.ops_since_sweep += keys.len() as u64;
        // Periodically drop stale entries so the table tracks only the
        // recent working set.
        if self.ops_since_sweep > 100_000 {
            let horizon = commit_time.saturating_sub(5_000_000);
            self.release_at.retain(|_, rel| *rel > horizon);
            self.ops_since_sweep = 0;
        }
    }

    /// Number of keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.release_at.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_is_free() {
        let mut lt = LockTable::new();
        let g = lt.acquire(1_000, &[(0, 1), (0, 2)], 1_000_000);
        assert_eq!(g.wait_us, 0);
        assert_eq!(g.conflicts, 0);
        assert!(!g.aborted);
    }

    #[test]
    fn conflicting_acquire_waits_until_release() {
        let mut lt = LockTable::new();
        lt.hold_until(&[(0, 7)], 5_000);
        let g = lt.acquire(2_000, &[(0, 7)], 1_000_000);
        assert_eq!(g.wait_us, 3_000);
        assert_eq!(g.conflicts, 1);
        assert_eq!(lt.waits, 1);
    }

    #[test]
    fn waits_take_the_max_over_keys() {
        let mut lt = LockTable::new();
        lt.hold_until(&[(0, 1)], 4_000);
        lt.hold_until(&[(0, 2)], 9_000);
        let g = lt.acquire(1_000, &[(0, 1), (0, 2)], 1_000_000);
        assert_eq!(g.wait_us, 8_000);
        assert_eq!(g.conflicts, 2);
    }

    #[test]
    fn expired_locks_do_not_block() {
        let mut lt = LockTable::new();
        lt.hold_until(&[(0, 1)], 4_000);
        let g = lt.acquire(10_000, &[(0, 1)], 1_000_000);
        assert_eq!(g.wait_us, 0);
        assert_eq!(g.conflicts, 0);
    }

    #[test]
    fn excessive_wait_aborts() {
        let mut lt = LockTable::new();
        lt.hold_until(&[(0, 1)], 10_000_000);
        let g = lt.acquire(0, &[(0, 1)], 50_000);
        assert!(g.aborted);
        assert_eq!(g.wait_us, 50_000, "abort happens at the horizon");
        assert_eq!(lt.aborts, 1);
    }

    #[test]
    fn hold_until_keeps_the_later_release() {
        let mut lt = LockTable::new();
        lt.hold_until(&[(0, 1)], 9_000);
        lt.hold_until(&[(0, 1)], 4_000); // earlier commit must not shorten
        let g = lt.acquire(0, &[(0, 1)], 1_000_000);
        assert_eq!(g.wait_us, 9_000);
    }

    #[test]
    fn sweep_prunes_stale_entries() {
        let mut lt = LockTable::new();
        for i in 0..60_000u64 {
            lt.hold_until(&[(0, i)], 100);
        }
        assert_eq!(lt.tracked_keys(), 60_000);
        // A burst of fresh keys far in the future triggers the sweep and
        // drops everything released more than 5 virtual seconds ago.
        for i in 100_000..160_000u64 {
            lt.hold_until(&[(0, i)], 100_000_000);
        }
        assert!(lt.tracked_keys() <= 60_001, "stale keys should be swept");
    }
}

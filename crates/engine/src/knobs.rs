//! Resolution of a raw [`KnobAssignment`] into the typed view the engine
//! consumes, including special-value semantics ("-1 means use
//! `maintenance_work_mem`") and the memory-overcommit crash check.

use crate::hardware::HardwareProfile;
use llamatune_space::{ConfigSpace, KnobAssignment, KnobValue};

/// How transaction commit interacts with WAL flushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncCommit {
    /// Wait for a durable flush (`on`, `local`, `remote_write` all wait in a
    /// single-node deployment).
    Durable,
    /// Return before the WAL is flushed; the WAL writer flushes in the
    /// background.
    Off,
}

/// Fully resolved engine-facing knob values.
///
/// Values are pulled from the assignment when present, and from the catalog
/// default otherwise (which is how subset spaces — e.g. the "top-8 knobs"
/// experiments — leave the remaining knobs at their defaults). Knobs that
/// don't exist in a catalog version (e.g. `jit` on v9.6) resolve to a
/// neutral "feature absent" value.
#[derive(Debug, Clone)]
pub struct DbmsKnobs {
    // --- memory ---
    pub shared_buffers_pages: u64,
    pub work_mem_kb: u64,
    pub maintenance_work_mem_kb: u64,
    pub autovacuum_work_mem_kb: u64,
    pub temp_buffers_pages: u64,
    pub effective_cache_size_pages: u64,
    // --- connections ---
    pub max_connections: u32,
    pub max_worker_processes: u32,
    // --- WAL ---
    pub fsync: bool,
    pub synchronous_commit: SyncCommit,
    pub wal_sync_cost_mult: f64,
    pub full_page_writes: bool,
    pub wal_compression: bool,
    pub wal_buffers_pages: u64,
    pub wal_writer_delay_ms: u64,
    /// `None` means the flush-threshold feature is disabled (special value 0).
    pub wal_writer_flush_after_pages: Option<u64>,
    /// `None` means group-commit delay is disabled (special value 0).
    pub commit_delay_us: Option<u64>,
    pub commit_siblings: u32,
    // --- checkpoints ---
    pub checkpoint_timeout_s: u64,
    pub checkpoint_completion_target: f64,
    pub max_wal_size_bytes: u64,
    /// `None` means forced writeback by backends is disabled (special 0).
    pub backend_flush_after_pages: Option<u64>,
    // --- background writer ---
    pub bgwriter_delay_ms: u64,
    /// `None` means the background writer is disabled (special value 0).
    pub bgwriter_lru_maxpages: Option<u64>,
    pub bgwriter_lru_multiplier: f64,
    // --- I/O ---
    /// `None` means prefetching is disabled (special value 0).
    pub effective_io_concurrency: Option<u32>,
    // --- autovacuum ---
    pub autovacuum: bool,
    pub autovacuum_max_workers: u32,
    pub autovacuum_naptime_s: u64,
    pub autovacuum_vacuum_threshold: u64,
    pub autovacuum_vacuum_scale_factor: f64,
    /// Resolved through the special value -1 (use `vacuum_cost_delay`).
    pub av_cost_delay_ms: u64,
    /// Resolved through the special value -1 (use `vacuum_cost_limit`).
    pub av_cost_limit: u64,
    pub vacuum_cost_page_hit: u64,
    pub vacuum_cost_page_miss: u64,
    pub vacuum_cost_page_dirty: u64,
    // --- planner ---
    pub seq_page_cost: f64,
    pub random_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub cpu_index_tuple_cost: f64,
    pub enable_seqscan: bool,
    pub enable_indexscan: bool,
    pub enable_bitmapscan: bool,
    pub enable_nestloop: bool,
    pub enable_hashjoin: bool,
    pub enable_mergejoin: bool,
    pub geqo_quality: f64,
    pub default_statistics_target: u64,
    // --- locks ---
    pub deadlock_timeout_ms: u64,
    // --- parallel & JIT (v13-era; neutral when absent from the catalog) ---
    pub max_parallel_workers_per_gather: u32,
    pub jit_enabled: bool,
    /// `None` means JIT is disabled for all queries (special value -1 or
    /// `jit = off`).
    pub jit_above_cost: Option<u64>,
}

fn get<'a>(
    assignment: &'a KnobAssignment,
    catalog: &'a ConfigSpace,
    name: &str,
) -> Option<KnobValue> {
    assignment.get(name).copied().or_else(|| catalog.knob(name).map(|k| k.default))
}

fn int(a: &KnobAssignment, c: &ConfigSpace, name: &str) -> i64 {
    get(a, c, name).unwrap_or_else(|| panic!("knob {name} missing from catalog")).as_int()
}

fn float(a: &KnobAssignment, c: &ConfigSpace, name: &str) -> f64 {
    get(a, c, name).unwrap_or_else(|| panic!("knob {name} missing from catalog")).as_float()
}

/// Boolean knobs are categorical with choices `["off", "on"]`.
fn toggled(a: &KnobAssignment, c: &ConfigSpace, name: &str) -> bool {
    get(a, c, name).unwrap_or_else(|| panic!("knob {name} missing from catalog")).as_cat() == 1
}

impl DbmsKnobs {
    /// Resolves an assignment against a catalog (the catalog supplies
    /// defaults for knobs a subset space does not mention).
    pub fn resolve(assignment: &KnobAssignment, catalog: &ConfigSpace) -> DbmsKnobs {
        let shared_buffers_pages = int(assignment, catalog, "shared_buffers") as u64;
        let maintenance_work_mem_kb = int(assignment, catalog, "maintenance_work_mem") as u64;
        let av_work_mem = int(assignment, catalog, "autovacuum_work_mem");
        let vacuum_cost_delay = int(assignment, catalog, "vacuum_cost_delay") as u64;
        let vacuum_cost_limit = int(assignment, catalog, "vacuum_cost_limit") as u64;
        let av_cost_delay = int(assignment, catalog, "autovacuum_vacuum_cost_delay");
        let av_cost_limit = int(assignment, catalog, "autovacuum_vacuum_cost_limit");

        let wal_buffers = int(assignment, catalog, "wal_buffers");
        let wal_buffers_pages = if wal_buffers == -1 {
            // Special value: 1/32nd of shared_buffers, >= 8 pages (64 kB),
            // <= one WAL segment (2048 pages).
            (shared_buffers_pages / 32).clamp(8, 2048)
        } else {
            (wal_buffers as u64).max(8)
        };

        let sync_commit_choice = get(assignment, catalog, "synchronous_commit")
            .expect("synchronous_commit in catalog")
            .as_cat();
        let synchronous_commit =
            if sync_commit_choice == 1 { SyncCommit::Off } else { SyncCommit::Durable };

        // fdatasync, fsync, open_datasync, open_sync.
        let wal_sync_cost_mult =
            match get(assignment, catalog, "wal_sync_method").expect("wal_sync_method").as_cat() {
                0 => 1.0,
                1 => 1.05,
                2 => 1.15,
                _ => 1.3,
            };

        let geqo_quality = Self::geqo_quality(assignment, catalog);

        let jit_present = catalog.knob("jit").is_some();
        let jit_enabled = jit_present && toggled(assignment, catalog, "jit");
        let jit_above_cost = if jit_enabled {
            match int(assignment, catalog, "jit_above_cost") {
                -1 => None,
                v => Some(v as u64),
            }
        } else {
            None
        };

        let opt_u64 = |v: i64| if v == 0 { None } else { Some(v as u64) };

        DbmsKnobs {
            shared_buffers_pages,
            work_mem_kb: int(assignment, catalog, "work_mem") as u64,
            maintenance_work_mem_kb,
            autovacuum_work_mem_kb: if av_work_mem == -1 {
                maintenance_work_mem_kb
            } else {
                av_work_mem as u64
            },
            temp_buffers_pages: int(assignment, catalog, "temp_buffers") as u64,
            effective_cache_size_pages: int(assignment, catalog, "effective_cache_size") as u64,
            max_connections: int(assignment, catalog, "max_connections") as u32,
            max_worker_processes: int(assignment, catalog, "max_worker_processes") as u32,
            fsync: toggled(assignment, catalog, "fsync"),
            synchronous_commit,
            wal_sync_cost_mult,
            full_page_writes: toggled(assignment, catalog, "full_page_writes"),
            wal_compression: toggled(assignment, catalog, "wal_compression"),
            wal_buffers_pages,
            wal_writer_delay_ms: int(assignment, catalog, "wal_writer_delay") as u64,
            wal_writer_flush_after_pages: opt_u64(int(
                assignment,
                catalog,
                "wal_writer_flush_after",
            )),
            commit_delay_us: opt_u64(int(assignment, catalog, "commit_delay")),
            commit_siblings: int(assignment, catalog, "commit_siblings") as u32,
            checkpoint_timeout_s: int(assignment, catalog, "checkpoint_timeout") as u64,
            checkpoint_completion_target: float(
                assignment,
                catalog,
                "checkpoint_completion_target",
            ),
            max_wal_size_bytes: int(assignment, catalog, "max_wal_size") as u64 * 16 * 1024 * 1024,
            backend_flush_after_pages: opt_u64(int(assignment, catalog, "backend_flush_after")),
            bgwriter_delay_ms: int(assignment, catalog, "bgwriter_delay") as u64,
            bgwriter_lru_maxpages: opt_u64(int(assignment, catalog, "bgwriter_lru_maxpages")),
            bgwriter_lru_multiplier: float(assignment, catalog, "bgwriter_lru_multiplier"),
            effective_io_concurrency: opt_u64(int(assignment, catalog, "effective_io_concurrency"))
                .map(|v| v as u32),
            autovacuum: toggled(assignment, catalog, "autovacuum"),
            autovacuum_max_workers: int(assignment, catalog, "autovacuum_max_workers") as u32,
            autovacuum_naptime_s: int(assignment, catalog, "autovacuum_naptime") as u64,
            autovacuum_vacuum_threshold: int(assignment, catalog, "autovacuum_vacuum_threshold")
                as u64,
            autovacuum_vacuum_scale_factor: float(
                assignment,
                catalog,
                "autovacuum_vacuum_scale_factor",
            ),
            av_cost_delay_ms: if av_cost_delay == -1 {
                vacuum_cost_delay
            } else {
                av_cost_delay as u64
            },
            av_cost_limit: if av_cost_limit == -1 {
                vacuum_cost_limit.max(1)
            } else {
                (av_cost_limit as u64).max(1)
            },
            vacuum_cost_page_hit: int(assignment, catalog, "vacuum_cost_page_hit") as u64,
            vacuum_cost_page_miss: int(assignment, catalog, "vacuum_cost_page_miss") as u64,
            vacuum_cost_page_dirty: int(assignment, catalog, "vacuum_cost_page_dirty") as u64,
            seq_page_cost: float(assignment, catalog, "seq_page_cost"),
            random_page_cost: float(assignment, catalog, "random_page_cost"),
            cpu_tuple_cost: float(assignment, catalog, "cpu_tuple_cost"),
            cpu_index_tuple_cost: float(assignment, catalog, "cpu_index_tuple_cost"),
            enable_seqscan: toggled(assignment, catalog, "enable_seqscan"),
            enable_indexscan: toggled(assignment, catalog, "enable_indexscan"),
            enable_bitmapscan: toggled(assignment, catalog, "enable_bitmapscan"),
            enable_nestloop: toggled(assignment, catalog, "enable_nestloop"),
            enable_hashjoin: toggled(assignment, catalog, "enable_hashjoin"),
            enable_mergejoin: toggled(assignment, catalog, "enable_mergejoin"),
            geqo_quality,
            default_statistics_target: int(assignment, catalog, "default_statistics_target") as u64,
            deadlock_timeout_ms: int(assignment, catalog, "deadlock_timeout") as u64,
            max_parallel_workers_per_gather: int(
                assignment,
                catalog,
                "max_parallel_workers_per_gather",
            ) as u32,
            jit_enabled,
            jit_above_cost,
        }
    }

    /// Join-plan quality in `[0, 1]` (1 = optimal plans) derived from the
    /// GEQO knobs: the genetic optimizer finds better join orders with more
    /// effort, a larger pool, and higher selection bias. The special value 0
    /// of `geqo_pool_size` / `geqo_generations` uses a decent heuristic.
    fn geqo_quality(a: &KnobAssignment, c: &ConfigSpace) -> f64 {
        if !toggled(a, c, "geqo") {
            // Exhaustive search: optimal but only matters above the
            // (collapse-limited) threshold; treat as near-optimal.
            return 0.95;
        }
        let effort = int(a, c, "geqo_effort") as f64; // 1..10
        let pool = int(a, c, "geqo_pool_size");
        let gens = int(a, c, "geqo_generations");
        let bias = float(a, c, "geqo_selection_bias"); // 1.5..2.0
        let pool_q = if pool == 0 { 0.7 } else { (pool as f64 / 1000.0).powf(0.3).min(1.0) };
        let gen_q = if gens == 0 { 0.7 } else { (gens as f64 / 1000.0).powf(0.3).min(1.0) };
        let bias_q = (bias - 1.5) / 0.5; // 0..1
        (0.5 + 0.2 * (effort / 10.0) + 0.15 * pool_q * gen_q + 0.15 * bias_q).min(1.0)
    }

    /// Estimated peak memory footprint in bytes, used for the crash check.
    ///
    /// Shared memory (`shared_buffers`, WAL buffers) is allocated up front;
    /// `work_mem` and `temp_buffers` are allocated lazily per operation, so
    /// only a small fraction of backends hold them at any instant in an
    /// OLTP workload; autovacuum workers hold maintenance memory while a
    /// table is being vacuumed.
    pub fn memory_footprint_bytes(&self, active_clients: u32) -> u64 {
        const PAGE: u64 = 8 * 1024;
        const KB: u64 = 1024;
        // Per-backend overhead (stack, caches, catalogs).
        const BACKEND_OVERHEAD: u64 = 6 * 1024 * 1024;
        let backends = u64::from(self.max_connections.min(active_clients + 8));
        let concurrent_sorts = (u64::from(active_clients) / 16).max(2);
        self.shared_buffers_pages * PAGE
            + self.wal_buffers_pages * PAGE
            + backends * BACKEND_OVERHEAD
            + concurrent_sorts * (self.work_mem_kb * KB + self.temp_buffers_pages * PAGE)
            + u64::from(self.autovacuum_max_workers.min(2)) * self.autovacuum_work_mem_kb * KB
    }

    /// Whether this configuration crashes the server on the given hardware:
    /// either it overcommits memory (OOM during the run) or it refuses the
    /// benchmark's connection count.
    pub fn crashes(&self, hw: &HardwareProfile, clients: u32) -> bool {
        if self.max_connections < clients + 3 {
            return true;
        }
        self.memory_footprint_bytes(clients) > hw.usable_memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::{postgres_v13_6, postgres_v9_6};
    use llamatune_space::KnobValue;

    fn defaults() -> (ConfigSpace, DbmsKnobs) {
        let cat = postgres_v9_6();
        let assignment = cat.assignment(&cat.default_config());
        let k = DbmsKnobs::resolve(&assignment, &cat);
        (cat, k)
    }

    #[test]
    fn defaults_resolve_to_documented_values() {
        let (_, k) = defaults();
        assert_eq!(k.shared_buffers_pages, 16_384); // 128 MB
        assert_eq!(k.work_mem_kb, 4_096);
        assert_eq!(k.max_connections, 100);
        assert!(k.fsync);
        assert_eq!(k.synchronous_commit, SyncCommit::Durable);
        assert!(k.full_page_writes);
        assert_eq!(k.commit_delay_us, None, "default 0 is the special value");
        assert_eq!(k.backend_flush_after_pages, None);
        assert_eq!(k.wal_writer_flush_after_pages, Some(128));
    }

    #[test]
    fn wal_buffers_special_value_tracks_shared_buffers() {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        let sb = cat.index_of("shared_buffers").unwrap();
        cfg.values_mut()[sb] = KnobValue::Int(1_048_576); // 8 GB
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        // 1/32nd capped at one WAL segment (2048 pages).
        assert_eq!(k.wal_buffers_pages, 2048);

        let mut cfg = cat.default_config();
        cfg.values_mut()[sb] = KnobValue::Int(16_384);
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert_eq!(k.wal_buffers_pages, 512);

        // Explicit value overrides the heuristic.
        let wb = cat.index_of("wal_buffers").unwrap();
        let mut cfg = cat.default_config();
        cfg.values_mut()[wb] = KnobValue::Int(100);
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert_eq!(k.wal_buffers_pages, 100);
    }

    #[test]
    fn autovacuum_cost_specials_defer_to_vacuum_knobs() {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        let idx = cat.index_of("autovacuum_vacuum_cost_delay").unwrap();
        cfg.values_mut()[idx] = KnobValue::Int(-1);
        let vd = cat.index_of("vacuum_cost_delay").unwrap();
        cfg.values_mut()[vd] = KnobValue::Int(7);
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert_eq!(k.av_cost_delay_ms, 7);
        // Default -1 for the limit defers to vacuum_cost_limit (200).
        assert_eq!(k.av_cost_limit, 200);
    }

    #[test]
    fn synchronous_commit_off_detected() {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        let idx = cat.index_of("synchronous_commit").unwrap();
        cfg.values_mut()[idx] = KnobValue::Cat(1); // off
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert_eq!(k.synchronous_commit, SyncCommit::Off);
        // local / remote_write still wait on the local flush.
        cfg.values_mut()[idx] = KnobValue::Cat(2);
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert_eq!(k.synchronous_commit, SyncCommit::Durable);
    }

    #[test]
    fn default_config_does_not_crash() {
        let (_, k) = defaults();
        assert!(!k.crashes(&HardwareProfile::default(), 40));
    }

    #[test]
    fn oversized_shared_buffers_crashes() {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        let sb = cat.index_of("shared_buffers").unwrap();
        cfg.values_mut()[sb] = KnobValue::Int(2_097_152); // 16 GB
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert!(k.crashes(&HardwareProfile::default(), 40));
    }

    #[test]
    fn huge_work_mem_plus_large_buffers_crashes() {
        // work_mem is allocated lazily, so even 2 GB alone survives...
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        let wm = cat.index_of("work_mem").unwrap();
        cfg.values_mut()[wm] = KnobValue::Int(2_097_152); // 2 GB per op
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert!(!k.crashes(&HardwareProfile::default(), 40));
        // ...but combined with a large shared_buffers it overcommits.
        let sb = cat.index_of("shared_buffers").unwrap();
        cfg.values_mut()[sb] = KnobValue::Int(1_572_864); // 12 GB
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert!(k.crashes(&HardwareProfile::default(), 40));
    }

    #[test]
    fn too_few_connections_crashes_the_benchmark() {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        let mc = cat.index_of("max_connections").unwrap();
        cfg.values_mut()[mc] = KnobValue::Int(20);
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        assert!(k.crashes(&HardwareProfile::default(), 40));
        assert!(!k.crashes(&HardwareProfile::default(), 10));
    }

    #[test]
    fn subset_space_falls_back_to_catalog_defaults() {
        let cat = postgres_v9_6();
        let sub = cat.subspace(&["shared_buffers", "commit_delay"]);
        let mut cfg = sub.default_config();
        cfg.values_mut()[0] = KnobValue::Int(100_000);
        cfg.values_mut()[1] = KnobValue::Int(500);
        let k = DbmsKnobs::resolve(&sub.assignment(&cfg), &cat);
        assert_eq!(k.shared_buffers_pages, 100_000);
        assert_eq!(k.commit_delay_us, Some(500));
        // Untouched knob resolves to its catalog default.
        assert_eq!(k.work_mem_kb, 4_096);
    }

    #[test]
    fn v13_catalog_resolves_jit() {
        let cat = postgres_v13_6();
        let assignment = cat.assignment(&cat.default_config());
        let k = DbmsKnobs::resolve(&assignment, &cat);
        assert!(k.jit_enabled);
        assert_eq!(k.jit_above_cost, Some(100_000));
        // v9.6 resolves JIT as absent.
        let cat96 = postgres_v9_6();
        let k96 = DbmsKnobs::resolve(&cat96.assignment(&cat96.default_config()), &cat96);
        assert!(!k96.jit_enabled);
        assert_eq!(k96.jit_above_cost, None);
    }

    #[test]
    fn geqo_quality_increases_with_bias_and_effort() {
        let cat = postgres_v9_6();
        let base = cat.default_config();
        let q_base = DbmsKnobs::resolve(&cat.assignment(&base), &cat).geqo_quality;

        let mut low = base.clone();
        let bias = cat.index_of("geqo_selection_bias").unwrap();
        low.values_mut()[bias] = KnobValue::Float(1.5);
        let q_low = DbmsKnobs::resolve(&cat.assignment(&low), &cat).geqo_quality;
        assert!(q_low < q_base, "lower selection bias should reduce plan quality");

        let mut high = base.clone();
        let effort = cat.index_of("geqo_effort").unwrap();
        high.values_mut()[effort] = KnobValue::Int(10);
        let q_high = DbmsKnobs::resolve(&cat.assignment(&high), &cat).geqo_quality;
        assert!(q_high > q_base);
    }
}

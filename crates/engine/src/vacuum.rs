//! Dead-tuple accounting, table bloat, and autovacuum scheduling.
//!
//! Updates and deletes leave dead tuples behind; dead tuples inflate the
//! effective page count of a table (bloat), which raises buffer-pool
//! pressure. The autovacuum daemon wakes every `autovacuum_naptime`, picks
//! tables whose dead-tuple count exceeds
//! `threshold + scale_factor * live_tuples` (Section 19.10 of the docs), and
//! scans them at a rate paced by the vacuum cost knobs.

/// Maximum bloat multiplier: beyond this, HOT pruning and opportunistic
/// page-level cleanup hold the line even without vacuum.
pub const MAX_BLOAT: f64 = 3.0;

/// Per-table vacuum bookkeeping.
#[derive(Debug, Clone)]
pub struct TableVacState {
    /// Pages the table occupies when fully packed.
    pub base_pages: u64,
    /// Live tuples.
    pub live_tuples: u64,
    /// Dead tuples awaiting vacuum.
    pub dead_tuples: u64,
}

impl TableVacState {
    /// Creates state for a table with `rows` live tuples over `base_pages`.
    pub fn new(rows: u64, base_pages: u64) -> Self {
        TableVacState { base_pages, live_tuples: rows, dead_tuples: 0 }
    }

    /// Bloat multiplier in `[1, MAX_BLOAT]`.
    pub fn bloat(&self) -> f64 {
        if self.live_tuples == 0 {
            return 1.0;
        }
        (1.0 + self.dead_tuples as f64 / self.live_tuples as f64).min(MAX_BLOAT)
    }

    /// Pages the table effectively occupies, bloat included.
    pub fn effective_pages(&self) -> u64 {
        (self.base_pages as f64 * self.bloat()).ceil() as u64
    }

    /// Records an update (old version becomes dead).
    pub fn on_update(&mut self) {
        self.dead_tuples += 1;
    }

    /// Records `n` inserted tuples.
    pub fn on_insert(&mut self, n: u64) {
        self.live_tuples += n;
    }

    /// Whether autovacuum should process this table.
    pub fn needs_vacuum(&self, threshold: u64, scale_factor: f64) -> bool {
        self.dead_tuples as f64 > threshold as f64 + scale_factor * self.live_tuples as f64
    }

    /// Completes a vacuum: dead tuples are reclaimed.
    pub fn on_vacuumed(&mut self) {
        self.dead_tuples = 0;
    }
}

/// Cost-based pacing of one vacuum pass (the `vacuum_cost_*` knobs).
#[derive(Debug, Clone, Copy)]
pub struct VacuumPacing {
    /// Cost units charged per buffer hit / miss / dirtied page.
    pub cost_page_hit: u64,
    pub cost_page_miss: u64,
    pub cost_page_dirty: u64,
    /// Accumulated cost that triggers a sleep.
    pub cost_limit: u64,
    /// Sleep duration in milliseconds (0 = unpaced).
    pub cost_delay_ms: u64,
}

/// Work summary for one table vacuum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VacuumWork {
    /// Pages scanned (reads).
    pub pages_scanned: u64,
    /// Pages rewritten (dirtied).
    pub pages_dirtied: u64,
    /// Wall-clock duration of the pass in microseconds, pacing included.
    pub duration_us: u64,
}

impl VacuumPacing {
    /// Plans the work for vacuuming a table in `state`, assuming `hit_rate`
    /// of its pages are in shared buffers and a per-page scan cost of
    /// `page_scan_us` microseconds of raw I/O + CPU.
    pub fn plan(&self, state: &TableVacState, hit_rate: f64, page_scan_us: f64) -> VacuumWork {
        let pages = state.effective_pages();
        // Pages holding dead tuples get dirtied; approximate by the dead
        // fraction of the table, at least one page per 50 dead tuples.
        let dirty_frac = if state.live_tuples == 0 {
            1.0
        } else {
            (state.dead_tuples as f64 / state.live_tuples as f64).min(1.0)
        };
        let pages_dirtied =
            ((pages as f64 * dirty_frac) as u64).min(pages).max(state.dead_tuples / 50);
        let hit_pages = (pages as f64 * hit_rate) as u64;
        let miss_pages = pages - hit_pages.min(pages);
        let cost = hit_pages * self.cost_page_hit
            + miss_pages * self.cost_page_miss
            + pages_dirtied * self.cost_page_dirty;
        let sleeps = if self.cost_delay_ms == 0 { 0 } else { cost / self.cost_limit.max(1) };
        let work_us = pages as f64 * page_scan_us;
        let sleep_us = sleeps * self.cost_delay_ms * 1_000;
        VacuumWork { pages_scanned: pages, pages_dirtied, duration_us: work_us as u64 + sleep_us }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_table_has_no_bloat() {
        let t = TableVacState::new(1_000, 100);
        assert_eq!(t.bloat(), 1.0);
        assert_eq!(t.effective_pages(), 100);
        assert!(!t.needs_vacuum(50, 0.2));
    }

    #[test]
    fn updates_accumulate_dead_tuples_and_bloat() {
        let mut t = TableVacState::new(1_000, 100);
        for _ in 0..500 {
            t.on_update();
        }
        assert_eq!(t.dead_tuples, 500);
        assert!((t.bloat() - 1.5).abs() < 1e-12);
        assert_eq!(t.effective_pages(), 150);
        assert!(t.needs_vacuum(50, 0.2), "500 > 50 + 0.2*1000");
    }

    #[test]
    fn bloat_is_capped() {
        let mut t = TableVacState::new(100, 10);
        for _ in 0..10_000 {
            t.on_update();
        }
        assert_eq!(t.bloat(), MAX_BLOAT);
        assert_eq!(t.effective_pages(), 30);
    }

    #[test]
    fn vacuum_reclaims() {
        let mut t = TableVacState::new(1_000, 100);
        for _ in 0..400 {
            t.on_update();
        }
        t.on_vacuumed();
        assert_eq!(t.dead_tuples, 0);
        assert_eq!(t.effective_pages(), 100);
    }

    #[test]
    fn threshold_formula_matches_docs() {
        let mut t = TableVacState::new(10_000, 1_000);
        for _ in 0..2_050 {
            t.on_update();
        }
        // threshold + scale * live = 50 + 0.2 * 10000 = 2050; the docs say
        // vacuum triggers when dead tuples *exceed* the threshold.
        assert!(!t.needs_vacuum(50, 0.2));
        t.on_update();
        assert!(t.needs_vacuum(50, 0.2));
    }

    #[test]
    fn pacing_slows_vacuum_down() {
        let t = {
            let mut t = TableVacState::new(10_000, 1_000);
            for _ in 0..5_000 {
                t.on_update();
            }
            t
        };
        let unpaced = VacuumPacing {
            cost_page_hit: 1,
            cost_page_miss: 10,
            cost_page_dirty: 20,
            cost_limit: 200,
            cost_delay_ms: 0,
        };
        let paced = VacuumPacing { cost_delay_ms: 20, ..unpaced };
        let w0 = unpaced.plan(&t, 0.5, 20.0);
        let w1 = paced.plan(&t, 0.5, 20.0);
        assert_eq!(w0.pages_scanned, w1.pages_scanned);
        assert!(w1.duration_us > w0.duration_us, "pacing adds sleeps");
        // Raising the limit shrinks the sleeps.
        let generous = VacuumPacing { cost_limit: 10_000, cost_delay_ms: 20, ..unpaced };
        let w2 = generous.plan(&t, 0.5, 20.0);
        assert!(w2.duration_us < w1.duration_us);
    }

    #[test]
    fn inserts_grow_live_count() {
        let mut t = TableVacState::new(100, 10);
        t.on_insert(50);
        assert_eq!(t.live_tuples, 150);
    }

    proptest! {
        #[test]
        fn bloat_bounded(updates in 0u64..100_000, rows in 1u64..100_000) {
            let mut t = TableVacState::new(rows, rows / 8 + 1);
            for _ in 0..updates.min(5_000) {
                t.on_update();
            }
            prop_assert!(t.bloat() >= 1.0);
            prop_assert!(t.bloat() <= MAX_BLOAT);
            prop_assert!(t.effective_pages() >= t.base_pages);
        }

        #[test]
        fn vacuum_duration_monotone_in_delay(delay in 0u64..100) {
            let mut t = TableVacState::new(10_000, 1_000);
            for _ in 0..3_000 {
                t.on_update();
            }
            let base = VacuumPacing {
                cost_page_hit: 1,
                cost_page_miss: 10,
                cost_page_dirty: 20,
                cost_limit: 200,
                cost_delay_ms: 0,
            };
            let with_delay = VacuumPacing { cost_delay_ms: delay, ..base };
            prop_assert!(
                with_delay.plan(&t, 0.5, 20.0).duration_us >= base.plan(&t, 0.5, 20.0).duration_us
            );
        }
    }
}

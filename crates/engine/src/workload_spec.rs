//! Declarative workload description consumed by the engine: table shapes,
//! transaction templates built from logical operations, and the arrival
//! process. The concrete OLTP suites (YCSB, TPC-C, SEATS, Twitter,
//! ResourceStresser) are constructed in `llamatune-workloads`.

/// How keys are selected within a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// YCSB-style Zipfian over all rows with the given theta (hot keys
    /// scattered by hashing).
    Zipfian(f64),
    /// Uniform over all rows.
    Uniform,
    /// Uniform over the first `fraction` of rows (a fixed hot set, e.g. the
    /// warehouse rows of TPC-C or ResourceStresser's contended table).
    HotRange(f64),
}

/// A table participating in the workload.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (for reports).
    pub name: &'static str,
    /// Number of rows.
    pub rows: u64,
    /// Bytes per row (determines pages).
    pub row_bytes: u32,
    /// Number of columns (reported in Table 4).
    pub columns: u32,
}

impl TableSpec {
    /// Rows per 8 kB page (fill factor ~90%).
    pub fn rows_per_page(&self) -> u64 {
        ((8 * 1024 * 9 / 10) / self.row_bytes as u64).max(1)
    }

    /// Heap pages when fully packed.
    pub fn base_pages(&self) -> u64 {
        self.rows.div_ceil(self.rows_per_page()).max(1)
    }

    /// Pages of the table's primary index (roughly 2% of the heap, at least
    /// one page).
    pub fn index_pages(&self) -> u64 {
        (self.base_pages() / 50).max(1)
    }

    /// Total bytes on disk (heap + index).
    pub fn bytes(&self) -> u64 {
        (self.base_pages() + self.index_pages()) * 8 * 1024
    }
}

/// One logical operation inside a transaction template.
#[derive(Debug, Clone)]
pub enum OpTemplate {
    /// Index point read of one row.
    PointRead { table: usize, dist: KeyDist },
    /// Index point update of one row (read + modify + WAL).
    PointUpdate { table: usize, dist: KeyDist },
    /// Append `rows` new rows.
    Insert { table: usize, rows: u32 },
    /// Range scan returning ~`rows` rows starting at a selected key; the
    /// planner picks the access path.
    RangeScan { table: usize, dist: KeyDist, rows: u32 },
    /// Multi-table join driven by ~`driving_rows` outer rows; plan quality
    /// depends on the join knobs and GEQO.
    Join { tables: u32, driving_rows: u32, dist: KeyDist, table: usize },
    /// Pure computation (ResourceStresser's CPU transactions).
    Compute { us: u32 },
}

/// A weighted transaction template.
#[derive(Debug, Clone)]
pub struct TxnTemplate {
    pub name: &'static str,
    /// Relative weight in the mix (normalized by the engine).
    pub weight: f64,
    pub ops: Vec<OpTemplate>,
    /// Read-only transactions skip WAL and commit flushes.
    pub read_only: bool,
}

/// Arrival process for transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Closed loop: each of the configured clients immediately issues the
    /// next transaction when the previous one finishes (throughput mode).
    Closed,
    /// Open loop: transactions arrive at a fixed Poisson `rate_tps`,
    /// queueing for a free client (tail-latency mode, Section 6.2).
    Open { rate_tps: f64 },
}

/// A complete workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub name: &'static str,
    pub tables: Vec<TableSpec>,
    pub txns: Vec<TxnTemplate>,
    /// Baseline CPU microseconds per transaction (parse/plan/protocol).
    pub base_cpu_us: f64,
}

impl WorkloadSpec {
    /// Database size in bytes (Section 6.1 sizes all databases to ~20 GB).
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(TableSpec::bytes).sum()
    }

    /// Fraction of the mix that is read-only (Table 4's "RO Txns").
    pub fn read_only_fraction(&self) -> f64 {
        let total: f64 = self.txns.iter().map(|t| t.weight).sum();
        let ro: f64 = self.txns.iter().filter(|t| t.read_only).map(|t| t.weight).sum();
        if total == 0.0 {
            0.0
        } else {
            ro / total
        }
    }

    /// Validates table indices inside templates.
    pub fn validate(&self) -> Result<(), String> {
        if self.txns.is_empty() {
            return Err("workload has no transactions".into());
        }
        if self.txns.iter().all(|t| t.weight <= 0.0) {
            return Err("all transaction weights are zero".into());
        }
        for t in &self.txns {
            for op in &t.ops {
                let table = match op {
                    OpTemplate::PointRead { table, .. }
                    | OpTemplate::PointUpdate { table, .. }
                    | OpTemplate::Insert { table, .. }
                    | OpTemplate::RangeScan { table, .. }
                    | OpTemplate::Join { table, .. } => Some(*table),
                    OpTemplate::Compute { .. } => None,
                };
                if let Some(idx) = table {
                    if idx >= self.tables.len() {
                        return Err(format!("txn {} references unknown table {idx}", t.name));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny",
            tables: vec![TableSpec { name: "t", rows: 1_000, row_bytes: 100, columns: 3 }],
            txns: vec![
                TxnTemplate {
                    name: "read",
                    weight: 0.75,
                    ops: vec![OpTemplate::PointRead { table: 0, dist: KeyDist::Uniform }],
                    read_only: true,
                },
                TxnTemplate {
                    name: "write",
                    weight: 0.25,
                    ops: vec![OpTemplate::PointUpdate { table: 0, dist: KeyDist::Uniform }],
                    read_only: false,
                },
            ],
            base_cpu_us: 30.0,
        }
    }

    #[test]
    fn rows_per_page_and_pages() {
        let t = TableSpec { name: "t", rows: 1_000, row_bytes: 1_000, columns: 11 };
        assert_eq!(t.rows_per_page(), 7); // 7372 usable / 1000
        assert_eq!(t.base_pages(), 143);
        assert!(t.index_pages() >= 1);
        assert!(t.bytes() > 1_000 * 1_000);
    }

    #[test]
    fn read_only_fraction_weighted() {
        let spec = tiny_spec();
        assert!((spec.read_only_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_table_index() {
        let mut spec = tiny_spec();
        spec.txns[0].ops = vec![OpTemplate::PointRead { table: 9, dist: KeyDist::Uniform }];
        assert!(spec.validate().is_err());
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn validation_rejects_empty_mix() {
        let mut spec = tiny_spec();
        spec.txns.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn wide_rows_still_fit_one_per_page() {
        let t = TableSpec { name: "wide", rows: 10, row_bytes: 60_000, columns: 2 };
        assert_eq!(t.rows_per_page(), 1);
        assert_eq!(t.base_pages(), 10);
    }
}

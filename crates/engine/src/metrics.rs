//! Internal DBMS metrics: the 27 system-wide counters sampled by the DDPG
//! optimizer (Section 6.4) and reported alongside every run.

/// Names of the 27 metrics, in the order produced by
/// [`MetricCounters::to_vector`].
pub const METRIC_NAMES: [&str; 27] = [
    "blks_hit",
    "blks_read",
    "os_cache_hits",
    "dirty_evictions",
    "bp_dirty_fraction",
    "wal_bytes_per_s",
    "wal_flushes_per_s",
    "wal_stalls_per_s",
    "group_commit_batch_avg",
    "fpw_pages_per_s",
    "checkpoints",
    "checkpoint_pages_per_s",
    "bgwriter_pages_per_s",
    "backend_flushes_per_s",
    "vacuum_runs",
    "vacuum_pages_per_s",
    "dead_tuple_ratio",
    "avg_bloat_factor",
    "lock_waits_per_s",
    "lock_wait_avg_us",
    "aborts_per_s",
    "commits_per_s",
    "cpu_utilization",
    "disk_utilization",
    "avg_read_latency_us",
    "txn_latency_p50_us",
    "active_clients",
];

/// Raw counters accumulated during a run.
#[derive(Debug, Clone, Default)]
pub struct MetricCounters {
    pub blks_hit: u64,
    pub blks_read: u64,
    pub os_cache_hits: u64,
    pub dirty_evictions: u64,
    pub bp_dirty_fraction: f64,
    pub wal_bytes: u64,
    pub wal_flushes: u64,
    pub wal_stalls: u64,
    pub group_commit_batch_avg: f64,
    pub fpw_pages: u64,
    pub checkpoints: u64,
    pub checkpoint_pages: u64,
    pub bgwriter_pages: u64,
    pub backend_flushes: u64,
    pub vacuum_runs: u64,
    pub vacuum_pages: u64,
    pub dead_tuple_ratio: f64,
    pub avg_bloat_factor: f64,
    pub lock_waits: u64,
    pub lock_wait_us: u64,
    pub aborts: u64,
    pub commits: u64,
    pub cpu_utilization: f64,
    pub disk_utilization: f64,
    pub read_latency_sum_us: f64,
    pub read_latency_count: u64,
    pub txn_latency_p50_us: f64,
    pub active_clients: u32,
}

impl MetricCounters {
    /// Normalizes the counters over `elapsed_s` virtual seconds into the
    /// 27-element vector matching [`METRIC_NAMES`].
    pub fn to_vector(&self, elapsed_s: f64) -> Vec<f64> {
        let dt = elapsed_s.max(1e-9);
        let per_s = |v: u64| v as f64 / dt;
        vec![
            per_s(self.blks_hit),
            per_s(self.blks_read),
            per_s(self.os_cache_hits),
            per_s(self.dirty_evictions),
            self.bp_dirty_fraction,
            per_s(self.wal_bytes),
            per_s(self.wal_flushes),
            per_s(self.wal_stalls),
            self.group_commit_batch_avg,
            per_s(self.fpw_pages),
            self.checkpoints as f64,
            per_s(self.checkpoint_pages),
            per_s(self.bgwriter_pages),
            per_s(self.backend_flushes),
            self.vacuum_runs as f64,
            per_s(self.vacuum_pages),
            self.dead_tuple_ratio,
            self.avg_bloat_factor,
            per_s(self.lock_waits),
            if self.lock_waits == 0 {
                0.0
            } else {
                self.lock_wait_us as f64 / self.lock_waits as f64
            },
            per_s(self.aborts),
            per_s(self.commits),
            self.cpu_utilization,
            self.disk_utilization,
            if self.read_latency_count == 0 {
                0.0
            } else {
                self.read_latency_sum_us / self.read_latency_count as f64
            },
            self.txn_latency_p50_us,
            f64::from(self.active_clients),
        ]
    }
}

/// Compresses a 27-metric vector ([`MetricCounters::to_vector`]) into a
/// scale-free *workload fingerprint*: heavy-tailed rate metrics are
/// log-compressed (`sign(m) · ln(1 + |m|)`, which leaves small ratio
/// metrics essentially untouched) and the result is L2-normalized, so
/// two fingerprints compare by direction (cosine) rather than by the
/// absolute throughput of the machine that produced them. This is the
/// metric-snapshot export behind warm-start transfer: a probe run's
/// fingerprint identifies "workloads that stress the DBMS the same
/// way", the similarity notion under which past tuning knowledge
/// transfers.
pub fn fingerprint_features(metrics: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = metrics.iter().map(|&m| m.signum() * m.abs().ln_1p()).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_matches_names() {
        let v = MetricCounters::default().to_vector(1.0);
        assert_eq!(v.len(), METRIC_NAMES.len());
        assert_eq!(v.len(), 27, "the paper samples 27 system-wide metrics");
    }

    #[test]
    fn rates_are_normalized_by_duration() {
        let c = MetricCounters { commits: 100, ..Default::default() };
        let v1 = c.to_vector(1.0);
        let v2 = c.to_vector(2.0);
        let idx = METRIC_NAMES.iter().position(|n| *n == "commits_per_s").unwrap();
        assert_eq!(v1[idx], 100.0);
        assert_eq!(v2[idx], 50.0);
    }

    #[test]
    fn averages_guard_division_by_zero() {
        let v = MetricCounters::default().to_vector(0.0);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn lock_wait_average() {
        let c = MetricCounters { lock_waits: 4, lock_wait_us: 2_000, ..Default::default() };
        let v = c.to_vector(1.0);
        let idx = METRIC_NAMES.iter().position(|n| *n == "lock_wait_avg_us").unwrap();
        assert_eq!(v[idx], 500.0);
    }

    #[test]
    fn fingerprint_is_unit_length_and_scale_free() {
        let c = MetricCounters { commits: 5_000, blks_hit: 900_000, ..Default::default() };
        let fp = fingerprint_features(&c.to_vector(1.0));
        assert_eq!(fp.len(), METRIC_NAMES.len());
        let norm: f64 = fp.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12, "L2-normalized: {norm}");
        // Doubling every rate (a 2x faster machine) barely moves the
        // fingerprint direction: cosine similarity stays near 1.
        let c2 = MetricCounters { commits: 10_000, blks_hit: 1_800_000, ..Default::default() };
        let fp2 = fingerprint_features(&c2.to_vector(1.0));
        let cos: f64 = fp.iter().zip(&fp2).map(|(a, b)| a * b).sum();
        assert!(cos > 0.999, "scale shift must not change the direction: {cos}");
    }

    #[test]
    fn fingerprint_of_zeros_is_zero_not_nan() {
        let fp = fingerprint_features(&vec![0.0; 27]);
        assert!(fp.iter().all(|x| *x == 0.0));
    }
}

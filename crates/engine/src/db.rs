//! The simulated DBMS: wires the buffer pool, WAL, checkpointer, background
//! writer, autovacuum, lock manager, and planner together and executes a
//! workload against them on a virtual clock.

use crate::bufferpool::{page_id, Access, BufferPool, OsCache};
use crate::hardware::HardwareProfile;
use crate::knobs::{DbmsKnobs, SyncCommit};
use crate::locks::{LockKey, LockTable};
use crate::metrics::MetricCounters;
use crate::planner;
use crate::sim::{LatencyReservoir, Micros, ResourceMeter};
use crate::vacuum::{TableVacState, VacuumPacing};
use crate::wal::WalState;
use crate::workload_spec::{Arrival, KeyDist, OpTemplate, TxnTemplate, WorkloadSpec};
use llamatune_math::Zipfian;
use llamatune_space::{ConfigSpace, KnobAssignment};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Options controlling one simulated workload run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Measured window, virtual seconds (substitutes the paper's 5-minute
    /// wall-clock runs).
    pub duration_s: f64,
    /// Warmup excluded from measurement, virtual seconds.
    pub warmup_s: f64,
    /// Concurrent workload clients (the paper uses 40).
    pub clients: u32,
    /// Arrival process (closed loop for throughput, open for tail latency).
    pub arrival: Arrival,
    /// Divisor applied to slow daemon periods (checkpoint timeout, vacuum
    /// naptime, max_wal_size accumulation) so their dynamics appear within
    /// the short virtual window. Documented in DESIGN.md.
    pub daemon_time_scale: f64,
    /// Hard cap on simulated transactions (guards pathological configs).
    pub max_txns: u64,
    /// RNG seed; runs are bit-reproducible given (config, spec, seed).
    pub seed: u64,
    /// Hardware profile.
    pub hardware: HardwareProfile,
    /// Divisor applied to the *memory hierarchy* (table sizes, buffer
    /// pool, OS cache) so that cache-capacity effects of a 20 GB database
    /// appear within the short simulated window. Knob values and the crash
    /// check are untouched; only their effective capacities shrink by the
    /// same factor, preserving every ratio. Documented in DESIGN.md.
    pub memory_scale: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            duration_s: 2.0,
            warmup_s: 0.4,
            clients: 40,
            arrival: Arrival::Closed,
            daemon_time_scale: 60.0,
            max_txns: 400_000,
            seed: 0,
            hardware: HardwareProfile::default(),
            memory_scale: 16.0,
        }
    }
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The configuration crashed the server (OOM / connection exhaustion).
    pub crashed: bool,
    /// Committed transactions per virtual second over the measured window.
    pub throughput_tps: f64,
    /// Median transaction latency, milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile transaction latency, milliseconds.
    pub p95_latency_ms: f64,
    /// 99th-percentile transaction latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Transactions committed in the measured window.
    pub committed: u64,
    /// Transactions aborted in the measured window.
    pub aborted: u64,
    /// The 27 internal metrics (see [`crate::metrics::METRIC_NAMES`]).
    pub metrics: Vec<f64>,
}

impl RunResult {
    fn crashed() -> Self {
        RunResult {
            crashed: true,
            throughput_tps: 0.0,
            p50_latency_ms: 1e9,
            p95_latency_ms: 1e9,
            p99_latency_ms: 1e9,
            committed: 0,
            aborted: 0,
            metrics: vec![0.0; crate::metrics::METRIC_NAMES.len()],
        }
    }
}

/// CPU microseconds charged per logical operation (executor dispatch).
const OP_CPU_US: f64 = 3.0;
/// CPU microseconds per tuple processed.
const TUPLE_CPU_US: f64 = 0.18;
/// CPU microseconds for a buffer-pool hit (pin + locate).
const HIT_CPU_US: f64 = 1.2;
/// CPU microseconds for upper B-tree levels (always cached).
const INDEX_UPPER_CPU_US: f64 = 1.6;
/// Maximum representative page touches per scan/join op; larger logical
/// work is scaled from this sample so op cost stays O(1).
const SCAN_SAMPLE: u32 = 16;
/// Lock wait after which a client gives up and aborts.
const ABORT_HORIZON_US: Micros = 4_000_000;

/// Offset added to table ids for their index page namespace.
const INDEX_TABLE_OFFSET: u32 = 1 << 16;

struct Dbms<'a> {
    knobs: DbmsKnobs,
    hw: HardwareProfile,
    spec: &'a WorkloadSpec,
    scale: f64,
    /// Effective rows per table after memory scaling.
    eff_rows: Vec<u64>,
    /// Dead-tuple debt multiplier (see `RunOptions::memory_scale`).
    debt_mult: u64,

    cpu: ResourceMeter,
    disk: ResourceMeter,
    bp: BufferPool,
    os: OsCache,
    wal: WalState,
    locks: LockTable,
    tables: Vec<TableVacState>,
    zipf: HashMap<(u64, u64), Zipfian>,
    rng: StdRng,

    // Daemon state.
    wal_writer_next: Micros,
    bgwriter_next: Micros,
    vacuum_next: Micros,
    ckpt_check_next: Micros,
    last_checkpoint: Micros,
    backend_dirty_counter: u64,

    // Counters.
    c: MetricCounters,
    clients_active: u32,
    total_db_pages: u64,
}

impl<'a> Dbms<'a> {
    fn new(knobs: DbmsKnobs, spec: &'a WorkloadSpec, opts: &RunOptions) -> Dbms<'a> {
        let hw = opts.hardware.clone();
        let ms = opts.memory_scale.max(1.0);
        let bp = BufferPool::new((knobs.shared_buffers_pages as f64 / ms) as usize);
        let db_bytes = (spec.total_bytes() as f64 / ms) as u64;
        let pg_bytes = knobs.memory_footprint_bytes(opts.clients);
        let os_free = hw.ram_bytes.saturating_sub(pg_bytes + hw.os_reserved_bytes).max(256 << 20);
        let os = OsCache::new((os_free as f64 / ms) as u64);
        let fsync_us = if knobs.fsync { hw.disk_fsync_us * knobs.wal_sync_cost_mult } else { 30.0 };
        let wal = WalState::new(
            knobs.wal_buffers_pages * 8 * 1024,
            knobs.full_page_writes,
            knobs.wal_compression,
            fsync_us,
        );
        let eff_rows: Vec<u64> =
            spec.tables.iter().map(|t| ((t.rows as f64 / ms) as u64).max(64)).collect();
        let tables = spec
            .tables
            .iter()
            .zip(&eff_rows)
            .map(|(t, &rows)| TableVacState::new(rows, rows.div_ceil(t.rows_per_page()).max(1)))
            .collect();
        let total_db_pages = (db_bytes / 8192).max(1);
        let scale = opts.daemon_time_scale.max(1.0);
        // Dead tuples accrue as if the run lasted the paper's 5 minutes on
        // the scaled-down tables.
        let debt_mult = ((300.0 / opts.duration_s.max(0.1)) / ms).round().max(1.0) as u64;
        let mut db = Dbms::default_parts(
            knobs,
            hw,
            spec,
            scale,
            eff_rows,
            debt_mult,
            bp,
            os,
            wal,
            tables,
            total_db_pages,
            opts,
        );
        db.prewarm_caches();
        db
    }

    #[allow(clippy::too_many_arguments)]
    fn default_parts(
        knobs: DbmsKnobs,
        hw: HardwareProfile,
        spec: &'a WorkloadSpec,
        scale: f64,
        eff_rows: Vec<u64>,
        debt_mult: u64,
        bp: BufferPool,
        os: OsCache,
        wal: WalState,
        tables: Vec<TableVacState>,
        total_db_pages: u64,
        opts: &RunOptions,
    ) -> Dbms<'a> {
        let mut zipf = HashMap::new();
        for t in &spec.txns {
            for op in &t.ops {
                if let Some((table, KeyDist::Zipfian(theta))) = op_dist(op) {
                    let rows = eff_rows[table];
                    zipf.entry((rows, theta.to_bits()))
                        .or_insert_with(|| Zipfian::new(rows, theta));
                }
            }
        }
        Dbms {
            knobs,
            hw,
            spec,
            scale,
            eff_rows,
            debt_mult,
            cpu: ResourceMeter::new(10.0, 10_000, 4.0),
            disk: ResourceMeter::new(2.0, 10_000, 2.0),
            bp,
            os,
            wal,
            locks: LockTable::new(),
            tables,
            zipf,
            rng: StdRng::seed_from_u64(opts.seed ^ 0x5EED_CAFE),
            wal_writer_next: 0,
            bgwriter_next: 0,
            vacuum_next: 0,
            ckpt_check_next: 0,
            last_checkpoint: 0,
            backend_dirty_counter: 0,
            c: MetricCounters::default(),
            clients_active: opts.clients,
            total_db_pages,
        }
    }

    /// Seeds the buffer pool and OS cache with the hottest pages, emulating
    /// the warm steady state a 5-minute run would reach: index leaves
    /// (hottest, aggregating many keys each) first, then heap pages in key
    /// popularity order. Without this, short windows overstate compulsory
    /// misses and understate the value of cache-sizing knobs.
    fn prewarm_caches(&mut self) {
        let n_tables = self.spec.tables.len();
        if n_tables == 0 {
            return;
        }
        // Index leaves for every table.
        'leaves: for (t, spec) in self.spec.tables.iter().enumerate() {
            let leaves = self.eff_rows[t] / (spec.rows_per_page() * 50).max(1) + 1;
            for leaf in 0..leaves {
                if self.bp.resident() >= self.bp.capacity() {
                    break 'leaves;
                }
                self.bp.access(page_id(t as u32 + INDEX_TABLE_OFFSET, leaf), false);
            }
        }
        // Heap pages in popularity order (scattered rank order for zipfian
        // tables, ascending order otherwise), round-robin across tables.
        let mut rank = 0u64;
        while self.bp.resident() < self.bp.capacity() && rank < 4_000_000 / n_tables as u64 {
            let mut progressed = false;
            for t in 0..n_tables {
                if rank >= self.eff_rows[t] {
                    continue;
                }
                progressed = true;
                let key = splitmix64(rank) % self.eff_rows[t];
                let rpp = self.spec.tables[t].rows_per_page();
                self.bp.access(page_id(t as u32, key / rpp), false);
                // The next popularity tier lands in the OS cache.
                let os_key = splitmix64(rank + self.bp.capacity() as u64) % self.eff_rows[t];
                self.os.access(page_id(t as u32, os_key / rpp));
                if self.bp.resident() >= self.bp.capacity() {
                    break;
                }
            }
            if !progressed {
                break;
            }
            rank += 1;
        }
        // Reset counters: prewarming is not part of the measured run.
        self.c = MetricCounters::default();
    }

    /// Samples a row key for `dist` over `table`.
    fn sample_key(&mut self, table: usize, dist: KeyDist) -> u64 {
        let rows = self.eff_rows[table];
        match dist {
            KeyDist::Uniform => self.rng.random_range(0..rows),
            KeyDist::HotRange(frac) => {
                let hot = ((rows as f64 * frac) as u64).max(1);
                self.rng.random_range(0..hot)
            }
            KeyDist::Zipfian(theta) => {
                let z = &self.zipf[&(rows, theta.to_bits())];
                let rank = z.sample(&mut self.rng);
                // Scatter hot ranks across the key space, YCSB-style.
                splitmix64(rank) % rows
            }
        }
    }

    fn heap_page(&self, table: usize, key: u64) -> u64 {
        let rpp = self.spec.tables[table].rows_per_page();
        let bloat = self.tables[table].bloat();
        // Bloat spreads the same rows over more pages.
        ((key / rpp) as f64 * bloat) as u64
    }

    /// Accesses one page through the cache hierarchy; returns foreground
    /// latency in microseconds.
    fn page_access(&mut self, now: Micros, table: u32, page_no: u64, write: bool) -> f64 {
        let pid = page_id(table, page_no);
        match self.bp.access(pid, write) {
            Access::Hit => {
                self.c.blks_hit += 1;
                let mut cost = HIT_CPU_US;
                if write {
                    cost += self.on_page_dirtied(now, pid);
                }
                cost
            }
            Access::Miss { dirty_eviction } => {
                let mut cost = if self.os.access(pid) {
                    self.c.os_cache_hits += 1;
                    self.hw.os_cache_read_us
                } else {
                    self.c.blks_read += 1;
                    let lat = self.disk.request(now, self.hw.disk_random_read_us);
                    self.c.read_latency_sum_us += lat;
                    self.c.read_latency_count += 1;
                    lat
                };
                if dirty_eviction {
                    // The faulting backend writes the victim out first.
                    self.c.dirty_evictions += 1;
                    cost += self.disk.request(now, self.hw.disk_write_us);
                }
                if write {
                    cost += self.on_page_dirtied(now, pid);
                }
                cost
            }
        }
    }

    /// Bookkeeping when a backend dirties a page: WAL append (with
    /// full-page-write amplification and buffer-full stalls) and
    /// `backend_flush_after` foreground writeback.
    fn on_page_dirtied(&mut self, now: Micros, pid: u64) -> f64 {
        let mut cost = 0.0;
        let append = self.wal.append(pid);
        self.c.wal_bytes += append.bytes;
        if append.full_page_image {
            self.c.fpw_pages += 1;
            cost += 1.5; // CPU to copy (and maybe compress) the image
            if self.knobs.wal_compression {
                cost += 7.0;
            }
        }
        if append.stalled {
            // Backend writes the WAL buffer out synchronously.
            self.c.wal_stalls += 1;
            let pages = (self.knobs.wal_buffers_pages).max(1) as f64;
            cost += self.disk.request(now, 60.0 + pages.min(64.0) * 4.0);
        }
        self.backend_dirty_counter += 1;
        match self.knobs.backend_flush_after_pages {
            Some(n) if self.backend_dirty_counter >= n => {
                self.backend_dirty_counter = 0;
                self.c.backend_flushes += 1;
                // sync_file_range on a small batch: fixed queue disruption
                // plus per-page cost; tiny batches are brutally inefficient.
                let batch = n.min(256) as f64;
                cost += self.disk.request(now, 380.0 + batch * 10.0);
                self.bp.clean_dirty(n as usize);
            }
            Some(_) => {}
            None => {
                // Special value 0: the OS absorbs writeback asynchronously,
                // coalescing neighbouring pages.
                self.disk.add_background(now, self.hw.disk_write_us * 0.35, 500_000);
            }
        }
        cost
    }

    /// Index probe: upper levels are cached (CPU only), leaf may fault.
    fn index_probe(&mut self, now: Micros, table: usize, key: u64) -> f64 {
        let t = &self.spec.tables[table];
        let leaf = key / (t.rows_per_page() * 50).max(1);
        INDEX_UPPER_CPU_US + self.page_access(now, table as u32 + INDEX_TABLE_OFFSET, leaf, false)
    }

    /// Executes one transaction starting at `start`; returns (commit time,
    /// committed?).
    fn execute_txn(&mut self, start: Micros, tmpl: &TxnTemplate) -> (Micros, bool) {
        // Phase 1: sample write keys and acquire locks in sorted order.
        let mut lock_keys: Vec<LockKey> = Vec::new();
        let mut sampled: Vec<Option<u64>> = Vec::with_capacity(tmpl.ops.len());
        for op in &tmpl.ops {
            if let OpTemplate::PointUpdate { table, dist } = op {
                let key = self.sample_key(*table, *dist);
                lock_keys.push((*table as u32, key));
                sampled.push(Some(key));
            } else {
                sampled.push(None);
            }
        }
        let mut now_f = start as f64;
        if !lock_keys.is_empty() {
            lock_keys.sort_unstable();
            lock_keys.dedup();
            let horizon = ABORT_HORIZON_US.max(self.knobs.deadlock_timeout_ms * 1_000 * 4);
            let grant = self.locks.acquire(start, &lock_keys, horizon);
            self.c.lock_waits += u64::from(grant.conflicts > 0);
            self.c.lock_wait_us += grant.wait_us;
            if grant.aborted {
                self.c.aborts += 1;
                return (start + grant.wait_us, false);
            }
            now_f += grant.wait_us as f64;
        }

        // Phase 2: base CPU (protocol, parse, plan).
        now_f += self.cpu.request(now_f as Micros, self.spec.base_cpu_us);

        // Phase 3: operations.
        for (op, key) in tmpl.ops.iter().zip(&sampled) {
            let now = now_f as Micros;
            now_f += self.cpu.request(now, OP_CPU_US);
            now_f += self.execute_op(now_f as Micros, op, *key);
        }

        // Phase 4: commit.
        let now = now_f as Micros;
        if tmpl.read_only {
            now_f += self.cpu.request(now, 2.0);
        } else {
            now_f += self.cpu.request(now, 6.0);
            match self.knobs.synchronous_commit {
                SyncCommit::Off => self.wal.commit_async(),
                SyncCommit::Durable => {
                    let siblings_met =
                        self.clients_active.saturating_sub(1) >= self.knobs.commit_siblings;
                    // Flushing also writes the buffered WAL bytes out.
                    let byte_cost =
                        self.wal.unflushed_bytes() as f64 * self.hw.disk_write_us_per_byte;
                    let out = self.wal.commit_durable(
                        now,
                        self.knobs.commit_delay_us,
                        siblings_met,
                        byte_cost,
                    );
                    if out.issued_flush {
                        // The flush occupies the device (latency is already
                        // serialized through the epoch chain).
                        let fsync = if self.knobs.fsync {
                            self.hw.disk_fsync_us * self.knobs.wal_sync_cost_mult
                        } else {
                            30.0
                        };
                        self.disk.add_background(now, fsync + byte_cost, 2_000);
                        self.c.wal_flushes += 1;
                    }
                    now_f += out.wait_us as f64;
                }
            }
        }
        let commit_time = now_f as Micros;
        if !lock_keys.is_empty() {
            self.locks.hold_until(&lock_keys, commit_time);
        }
        self.c.commits += 1;
        (commit_time, true)
    }

    /// Executes a single logical operation, returning its latency (µs).
    fn execute_op(&mut self, now: Micros, op: &OpTemplate, presampled: Option<u64>) -> f64 {
        match op {
            OpTemplate::PointRead { table, dist } => {
                let key = self.sample_key(*table, *dist);
                let mut cost = self.index_probe(now, *table, key);
                let page = self.heap_page(*table, key);
                cost += self.page_access(now, *table as u32, page, false);
                cost + TUPLE_CPU_US
            }
            OpTemplate::PointUpdate { table, dist } => {
                let key = presampled.unwrap_or_else(|| {
                    // Only reached when an update op appears without the
                    // lock phase having sampled it (not the normal path).
                    let d = *dist;
                    self.sample_key(*table, d)
                });
                let mut cost = self.index_probe(now, *table, key);
                let page = self.heap_page(*table, key);
                cost += self.page_access(now, *table as u32, page, true);
                // Dead-tuple debt accrues in *scaled* time so that vacuum
                // dynamics of a 5-minute run appear in the short window.
                for _ in 0..self.debt_mult {
                    self.tables[*table].on_update();
                }
                cost + TUPLE_CPU_US * 2.0
            }
            OpTemplate::Insert { table, rows } => {
                let rpp = self.spec.tables[*table].rows_per_page();
                let live = self.tables[*table].live_tuples;
                let base = self.tables[*table].base_pages.max(1);
                let pages = (u64::from(*rows).div_ceil(rpp)).max(1);
                let mut cost = 0.0;
                for p in 0..pages.min(8) {
                    let page_no = (live / rpp + p) % base.max(1);
                    cost += self.page_access(now, *table as u32, page_no, true);
                }
                if pages > 8 {
                    cost *= pages as f64 / 8.0;
                }
                self.tables[*table].on_insert(u64::from(*rows) * self.debt_mult);
                cost + f64::from(*rows) * TUPLE_CPU_US * 2.0
            }
            OpTemplate::RangeScan { table, dist, rows } => {
                self.execute_scan(now, *table, *dist, *rows)
            }
            OpTemplate::Join { tables, driving_rows, dist, table } => {
                self.execute_join(now, *tables, *driving_rows, *dist, *table)
            }
            OpTemplate::Compute { us } => self.cpu.request(now, f64::from(*us)),
        }
    }

    fn execute_scan(&mut self, now: Micros, table: usize, dist: KeyDist, rows: u32) -> f64 {
        let table_rows = self.eff_rows[table];
        let eff_pages = self.tables[table].effective_pages();
        let noise: f64 = self.rng.random();
        let est = (f64::from(rows)
            * planner::estimation_error(self.knobs.default_statistics_target, noise))
            as u64;
        let choice = planner::choose_scan(&self.knobs, eff_pages, table_rows, est.max(1));
        let rows_f = f64::from(rows);
        let mut cost = rows_f * TUPLE_CPU_US;
        match choice {
            planner::ScanChoice::Index | planner::ScanChoice::Bitmap => {
                let start_key = self.sample_key(table, dist);
                cost += self.index_probe(now, table, start_key);
                // Unclustered heap: ~one page per row, sampled.
                let touches = rows.min(SCAN_SAMPLE);
                let mut sampled_cost = 0.0;
                for i in 0..touches {
                    let key = (start_key + u64::from(i) * 131) % table_rows;
                    let page = self.heap_page(table, key);
                    sampled_cost += self.page_access(now, table as u32, page, false);
                }
                let mut scale = rows_f / f64::from(touches.max(1));
                if choice == planner::ScanChoice::Bitmap {
                    // Physical-order fetch coalesces neighbouring reads.
                    scale *= 0.6;
                }
                // Prefetch pipelines the random reads.
                if let Some(eic) = self.knobs.effective_io_concurrency {
                    scale /= 1.0 + (f64::from(eic.min(64))).ln();
                }
                cost += sampled_cost * scale;
            }
            planner::ScanChoice::Seq => {
                // Sequential read of the whole table; sample residency.
                let touches = (eff_pages.min(u64::from(SCAN_SAMPLE))) as u32;
                let mut miss = 0u32;
                for i in 0..touches {
                    let page =
                        (u64::from(i) * eff_pages / u64::from(touches.max(1))) % eff_pages.max(1);
                    let pid = page_id(table as u32, page);
                    match self.bp.access(pid, false) {
                        Access::Hit => self.c.blks_hit += 1,
                        Access::Miss { .. } => {
                            miss += 1;
                            self.os.access(pid);
                        }
                    }
                }
                let miss_frac = f64::from(miss) / f64::from(touches.max(1));
                let io_us = eff_pages as f64 * miss_frac * self.hw.disk_seq_read_us;
                cost += self.disk.request(now, io_us.min(200_000.0));
                cost += table_rows as f64 * TUPLE_CPU_US * 0.4; // tight loop
                                                                // Parallel scan (v13): workers split the row-processing CPU.
                let workers = self.knobs.max_parallel_workers_per_gather;
                if workers > 0 && eff_pages > 1024 {
                    let speedup = f64::from(workers.min(4) + 1);
                    cost = cost / speedup + 600.0; // worker startup
                }
            }
        }
        // JIT (v13): compile cost for expensive queries, cheaper execution.
        if let Some(jit_cost) = self.knobs.jit_above_cost {
            let est_cost = rows_f * 25.0 + eff_pages as f64;
            if est_cost > jit_cost as f64 {
                cost = cost * 0.8 + self.cpu.request(now, 1_800.0);
            }
        }
        cost
    }

    fn execute_join(
        &mut self,
        now: Micros,
        tables: u32,
        driving_rows: u32,
        dist: KeyDist,
        table: usize,
    ) -> f64 {
        let choice = planner::choose_join(&self.knobs, u64::from(driving_rows));
        let mut mult = planner::join_cost_multiplier(choice, u64::from(driving_rows));
        if tables > 2 {
            // Join-order quality: GEQO and the collapse limits.
            mult *= 2.0 - self.knobs.geqo_quality;
        }
        // Representative inner probes.
        let probes = driving_rows.min(SCAN_SAMPLE);
        let mut sampled = 0.0;
        for _ in 0..probes {
            let key = self.sample_key(table, dist);
            sampled += self.index_probe(now, table, key);
            let page = self.heap_page(table, key);
            sampled += self.page_access(now, table as u32, page, false);
        }
        let total_rows = f64::from(driving_rows) * f64::from(tables.max(1));
        let mut cost = sampled * (total_rows / f64::from(probes.max(1))).min(64.0) * mult
            + total_rows * TUPLE_CPU_US;
        // Hash joins spill when the build side exceeds work_mem.
        if choice == planner::JoinChoice::Hash {
            let build_bytes = u64::from(driving_rows) * 96;
            if build_bytes > self.knobs.work_mem_kb * 1024 {
                let spill_pages = (build_bytes / 8192).max(1) as f64;
                cost += self.disk.request(now, spill_pages * self.hw.disk_seq_read_us * 2.0);
            }
        }
        if let Some(jit_cost) = self.knobs.jit_above_cost {
            if total_rows * 40.0 > jit_cost as f64 {
                cost = cost * 0.8 + self.cpu.request(now, 1_800.0);
            }
        }
        cost
    }

    /// Runs every daemon whose wake time has passed.
    fn run_daemons(&mut self, until: Micros) {
        // WAL writer.
        while self.wal_writer_next <= until {
            let t = self.wal_writer_next;
            let threshold_hit = match self.knobs.wal_writer_flush_after_pages {
                Some(pages) => self.wal.unflushed_bytes() > pages * 8 * 1024,
                None => false,
            };
            let bytes = self.wal.background_flush();
            if bytes > 0 {
                let pages = (bytes / 8192 + 1) as f64;
                let fsync = if self.knobs.fsync { self.hw.disk_fsync_us * 0.8 } else { 20.0 };
                self.disk.add_background(t, pages * 6.0 + fsync, 5_000);
                self.c.wal_flushes += 1;
            }
            // The flush-after threshold makes the writer run hotter.
            let delay = if threshold_hit {
                self.knobs.wal_writer_delay_ms.max(1) * 250
            } else {
                self.knobs.wal_writer_delay_ms.max(1) * 1_000
            };
            self.wal_writer_next = t + delay;
        }
        // Background writer.
        while self.bgwriter_next <= until {
            let t = self.bgwriter_next;
            if let Some(maxpages) = self.knobs.bgwriter_lru_maxpages {
                let target =
                    ((maxpages as f64) * self.knobs.bgwriter_lru_multiplier.max(0.1)) as usize;
                let cleaned = self.bp.clean_dirty(target.max(1));
                if cleaned > 0 {
                    self.c.bgwriter_pages += cleaned as u64;
                    self.disk.add_background(
                        t,
                        cleaned as f64 * self.hw.disk_write_us * 0.7,
                        self.knobs.bgwriter_delay_ms * 1_000,
                    );
                }
            }
            self.bgwriter_next = t + self.knobs.bgwriter_delay_ms.max(10) * 1_000;
        }
        // Checkpointer (checked every 100 ms of virtual time).
        while self.ckpt_check_next <= until {
            let t = self.ckpt_check_next;
            let timeout_us = (self.knobs.checkpoint_timeout_s as f64 * 1e6 / self.scale) as Micros;
            let wal_trigger = self.wal.bytes_since_checkpoint() * self.scale as u64
                >= self.knobs.max_wal_size_bytes;
            if t.saturating_sub(self.last_checkpoint) >= timeout_us.max(200_000) || wal_trigger {
                self.perform_checkpoint(t, timeout_us);
            }
            self.ckpt_check_next = t + 100_000;
        }
        // Autovacuum.
        while self.vacuum_next <= until {
            let t = self.vacuum_next;
            if self.knobs.autovacuum {
                self.run_autovacuum(t);
            }
            let naptime_us = (self.knobs.autovacuum_naptime_s as f64 * 1e6 / self.scale) as Micros;
            self.vacuum_next = t + naptime_us.max(50_000);
        }
    }

    fn perform_checkpoint(&mut self, t: Micros, timeout_us: Micros) {
        let dirty = self.bp.dirty();
        if dirty > 0 {
            let spread = ((timeout_us as f64 * self.knobs.checkpoint_completion_target) as Micros)
                .max(100_000);
            // checkpoint_flush_after paces writeback; disabled (special 0)
            // lets the OS burst it out, briefly slamming the device.
            let (cost_mult, duration) = if self.knobs.backend_flush_after_pages.is_some()
                || self.knobs.checkpoint_completion_target > 0.0
            {
                (1.0, spread)
            } else {
                (1.15, spread / 3)
            };
            let written = self.bp.clean_dirty(dirty);
            self.c.checkpoint_pages += written as u64;
            self.disk.add_background(
                t,
                written as f64 * self.hw.disk_write_us * cost_mult,
                duration,
            );
        }
        self.c.checkpoints += 1;
        self.wal.on_checkpoint();
        self.last_checkpoint = t;
    }

    fn run_autovacuum(&mut self, t: Micros) {
        let pacing = VacuumPacing {
            cost_page_hit: self.knobs.vacuum_cost_page_hit,
            cost_page_miss: self.knobs.vacuum_cost_page_miss,
            cost_page_dirty: self.knobs.vacuum_cost_page_dirty,
            cost_limit: self.knobs.av_cost_limit,
            cost_delay_ms: self.knobs.av_cost_delay_ms,
        };
        let hit_rate = (self.bp.capacity() as f64 / self.total_db_pages as f64).min(0.95);
        let mut workers = self.knobs.autovacuum_max_workers;
        for i in 0..self.tables.len() {
            if workers == 0 {
                break;
            }
            let needs = self.tables[i].needs_vacuum(
                self.knobs.autovacuum_vacuum_threshold,
                self.knobs.autovacuum_vacuum_scale_factor,
            );
            if !needs {
                continue;
            }
            workers -= 1;
            // Larger memory lets vacuum finish in one pass.
            let mem_passes = if self.knobs.autovacuum_work_mem_kb < 32_768 { 1.4 } else { 1.0 };
            let work = pacing.plan(&self.tables[i], hit_rate, 9.0 * mem_passes);
            let io = work.pages_scanned as f64 * (1.0 - hit_rate) * self.hw.disk_seq_read_us
                + work.pages_dirtied as f64 * self.hw.disk_write_us * 0.8;
            // Vacuum I/O lands over the (possibly paced) pass duration.
            self.disk.add_background(t, io, work.duration_us.max(100_000));
            self.cpu.add_background(
                t,
                work.pages_scanned as f64 * 2.0,
                work.duration_us.max(100_000),
            );
            self.c.vacuum_runs += 1;
            self.c.vacuum_pages += work.pages_scanned;
            self.tables[i].on_vacuumed();
        }
    }

    fn finalize_metrics(&mut self, elapsed_s: f64, p50_us: f64) -> Vec<f64> {
        self.c.bp_dirty_fraction = self.bp.dirty() as f64 / self.bp.capacity() as f64;
        self.c.group_commit_batch_avg = self.wal.avg_batch_size();
        let (dead, live): (u64, u64) =
            self.tables.iter().fold((0, 0), |(d, l), t| (d + t.dead_tuples, l + t.live_tuples));
        self.c.dead_tuple_ratio = dead as f64 / live.max(1) as f64;
        self.c.avg_bloat_factor = self.tables.iter().map(TableVacState::bloat).sum::<f64>()
            / self.tables.len().max(1) as f64;
        self.c.cpu_utilization =
            self.cpu.total_busy_us() / (elapsed_s.max(1e-9) * 1e6 * f64::from(self.hw.cores));
        self.c.disk_utilization = self.disk.total_busy_us() / (elapsed_s.max(1e-9) * 1e6 * 2.0);
        self.c.txn_latency_p50_us = p50_us;
        self.c.active_clients = self.clients_active;
        self.c.to_vector(elapsed_s)
    }
}

fn op_dist(op: &OpTemplate) -> Option<(usize, KeyDist)> {
    match op {
        OpTemplate::PointRead { table, dist }
        | OpTemplate::PointUpdate { table, dist }
        | OpTemplate::RangeScan { table, dist, .. }
        | OpTemplate::Join { table, dist, .. } => Some((*table, *dist)),
        _ => None,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs `spec` against the simulated DBMS configured by `assignment`
/// (resolved against `catalog` for defaults).
pub fn run_workload(
    assignment: &KnobAssignment,
    catalog: &ConfigSpace,
    spec: &WorkloadSpec,
    opts: &RunOptions,
) -> RunResult {
    spec.validate().expect("invalid workload spec");
    let knobs = DbmsKnobs::resolve(assignment, catalog);
    if knobs.crashes(&opts.hardware, opts.clients) {
        return RunResult::crashed();
    }
    let mut db = Dbms::new(knobs, spec, opts);
    let mut mix_rng = StdRng::seed_from_u64(opts.seed ^ 0x00D1_CE00);

    let warmup_end = (opts.warmup_s * 1e6) as Micros;
    let end = warmup_end + (opts.duration_s * 1e6) as Micros;

    // Cumulative weights for sampling the mix.
    let total_w: f64 = spec.txns.iter().map(|t| t.weight).sum();
    let cumulative: Vec<f64> = spec
        .txns
        .iter()
        .scan(0.0, |acc, t| {
            *acc += t.weight / total_w;
            Some(*acc)
        })
        .collect();
    let sample_txn = |rng: &mut StdRng| -> usize {
        let u: f64 = rng.random();
        cumulative.iter().position(|&c| u <= c).unwrap_or(spec.txns.len() - 1)
    };

    let mut latencies = LatencyReservoir::new(32_768, opts.seed ^ 0xABCD);
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut total = 0u64;

    match opts.arrival {
        Arrival::Closed => {
            let mut heap: BinaryHeap<Reverse<(Micros, u32)>> = BinaryHeap::new();
            for cidx in 0..opts.clients {
                heap.push(Reverse((u64::from(cidx) * 37, cidx)));
            }
            while let Some(Reverse((t, cidx))) = heap.pop() {
                if t >= end || total >= opts.max_txns {
                    break;
                }
                db.run_daemons(t);
                let tmpl_idx = sample_txn(&mut mix_rng);
                let (done, ok) = db.execute_txn(t, &spec.txns[tmpl_idx]);
                total += 1;
                if done >= warmup_end && done < end {
                    if ok {
                        committed += 1;
                        latencies.record((done - t) as f64);
                    } else {
                        aborted += 1;
                    }
                }
                heap.push(Reverse((done + 5, cidx)));
            }
        }
        Arrival::Open { rate_tps } => {
            let inter = llamatune_math::Exponential::new(rate_tps.max(1.0) / 1e6);
            let mut arrivals = StdRng::seed_from_u64(opts.seed ^ 0xA221);
            let mut client_free: BinaryHeap<Reverse<Micros>> = BinaryHeap::new();
            for _ in 0..opts.clients {
                client_free.push(Reverse(0));
            }
            let mut t_arr = 0f64;
            while total < opts.max_txns {
                t_arr += inter.sample(&mut arrivals);
                let arrival = t_arr as Micros;
                if arrival >= end {
                    break;
                }
                let Reverse(free) = client_free.pop().expect("client pool");
                let start = arrival.max(free);
                db.run_daemons(start);
                let tmpl_idx = sample_txn(&mut mix_rng);
                let (done, ok) = db.execute_txn(start, &spec.txns[tmpl_idx]);
                total += 1;
                if done >= warmup_end && done < end {
                    if ok {
                        committed += 1;
                        // Latency from *arrival*: queueing included.
                        latencies.record((done - arrival) as f64);
                    } else {
                        aborted += 1;
                    }
                }
                client_free.push(Reverse(done));
            }
        }
    }

    let elapsed_s = (end - warmup_end) as f64 / 1e6;
    let p50 = latencies.percentile(50.0).unwrap_or(0.0);
    let p95 = latencies.percentile(95.0).unwrap_or(0.0);
    let p99 = latencies.percentile(99.0).unwrap_or(0.0);
    let metrics = db.finalize_metrics(elapsed_s, p50);
    RunResult {
        crashed: false,
        throughput_tps: committed as f64 / elapsed_s,
        p50_latency_ms: p50 / 1e3,
        p95_latency_ms: p95 / 1e3,
        p99_latency_ms: p99 / 1e3,
        committed,
        aborted,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload_spec::{TableSpec, TxnTemplate};
    use llamatune_space::catalog::postgres_v9_6;
    use llamatune_space::KnobValue;

    /// A small read/write workload for engine-level tests: 200k rows of
    /// 1 kB (≈200 MB), 50/50 zipfian reads and updates.
    fn test_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "engine-test",
            tables: vec![TableSpec { name: "t", rows: 200_000, row_bytes: 1_000, columns: 11 }],
            txns: vec![
                TxnTemplate {
                    name: "read",
                    weight: 0.5,
                    ops: vec![OpTemplate::PointRead { table: 0, dist: KeyDist::Zipfian(0.9) }],
                    read_only: true,
                },
                TxnTemplate {
                    name: "update",
                    weight: 0.5,
                    ops: vec![OpTemplate::PointUpdate { table: 0, dist: KeyDist::Zipfian(0.9) }],
                    read_only: false,
                },
            ],
            base_cpu_us: 60.0,
        }
    }

    fn quick_opts(seed: u64) -> RunOptions {
        RunOptions {
            duration_s: 0.4,
            warmup_s: 0.1,
            max_txns: 60_000,
            seed,
            ..RunOptions::default()
        }
    }

    fn run_with(overrides: &[(&str, KnobValue)], seed: u64) -> RunResult {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        for (name, v) in overrides {
            cfg.values_mut()[cat.index_of(name).unwrap()] = *v;
        }
        run_workload(&cat.assignment(&cfg), &cat, &test_spec(), &quick_opts(seed))
    }

    #[test]
    fn default_config_runs_and_commits() {
        let r = run_with(&[], 1);
        assert!(!r.crashed);
        assert!(r.throughput_tps > 100.0, "tput {}", r.throughput_tps);
        assert!(r.committed > 0);
        assert!(r.p95_latency_ms > r.p50_latency_ms * 0.99);
        assert_eq!(r.metrics.len(), 27);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_with(&[], 7);
        let b = run_with(&[], 7);
        assert_eq!(a.throughput_tps, b.throughput_tps);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.metrics, b.metrics);
        let c = run_with(&[], 8);
        assert_ne!(a.committed, c.committed, "different seeds should differ");
    }

    #[test]
    fn larger_buffer_pool_improves_io_bound_throughput() {
        let small = run_with(&[("shared_buffers", KnobValue::Int(2_048))], 3); // 16 MB
        let large = run_with(&[("shared_buffers", KnobValue::Int(131_072))], 3); // 1 GB
        assert!(
            large.throughput_tps > small.throughput_tps,
            "1GB pool {} <= 16MB pool {}",
            large.throughput_tps,
            small.throughput_tps
        );
    }

    #[test]
    fn async_commit_beats_durable_commit() {
        let durable = run_with(&[], 4);
        let async_ = run_with(&[("synchronous_commit", KnobValue::Cat(1))], 4);
        assert!(
            async_.throughput_tps > durable.throughput_tps,
            "async {} <= durable {}",
            async_.throughput_tps,
            durable.throughput_tps
        );
    }

    #[test]
    fn crashed_config_reports_crash() {
        let r = run_with(&[("shared_buffers", KnobValue::Int(2_097_152))], 5); // 16 GB
        assert!(r.crashed);
        assert_eq!(r.throughput_tps, 0.0);
    }

    #[test]
    fn backend_flush_small_values_hurt() {
        // Figure 4: special value 0 performs best; tiny thresholds are the
        // worst; large thresholds recover but stay below 0.
        let disabled = run_with(&[], 6); // default 0 = disabled
        let tiny = run_with(&[("backend_flush_after", KnobValue::Int(2))], 6);
        let large = run_with(&[("backend_flush_after", KnobValue::Int(256))], 6);
        assert!(
            disabled.throughput_tps > tiny.throughput_tps,
            "disabled {} <= tiny {}",
            disabled.throughput_tps,
            tiny.throughput_tps
        );
        assert!(
            large.throughput_tps > tiny.throughput_tps,
            "large {} <= tiny {}",
            large.throughput_tps,
            tiny.throughput_tps
        );
    }

    #[test]
    fn open_arrival_reports_queueing_latency() {
        let cat = postgres_v9_6();
        let cfg = cat.default_config();
        let mut opts = quick_opts(2);
        // First measure closed-loop capacity.
        let closed = run_workload(&cat.assignment(&cfg), &cat, &test_spec(), &opts);
        // An open-loop run at ~30% of capacity must keep latency modest and
        // match the offered rate.
        let rate = closed.throughput_tps * 0.3;
        opts.arrival = Arrival::Open { rate_tps: rate };
        let open = run_workload(&cat.assignment(&cfg), &cat, &test_spec(), &opts);
        assert!(!open.crashed);
        assert!(
            (open.throughput_tps - rate).abs() / rate < 0.25,
            "offered {rate}, carried {}",
            open.throughput_tps
        );
        assert!(open.p95_latency_ms.is_finite());
    }

    #[test]
    fn zipfian_contention_registers_lock_waits() {
        // Extreme skew on a small hot set must produce lock conflicts.
        let mut spec = test_spec();
        spec.txns[1].ops =
            vec![OpTemplate::PointUpdate { table: 0, dist: KeyDist::HotRange(0.0001) }];
        let cat = postgres_v9_6();
        let cfg = cat.default_config();
        let r = run_workload(&cat.assignment(&cfg), &cat, &spec, &quick_opts(9));
        let idx =
            crate::metrics::METRIC_NAMES.iter().position(|n| *n == "lock_waits_per_s").unwrap();
        assert!(r.metrics[idx] > 0.0, "hot updates should conflict");
    }

    #[test]
    fn metrics_vector_is_finite() {
        let r = run_with(&[], 11);
        assert!(r.metrics.iter().all(|m| m.is_finite()), "{:?}", r.metrics);
    }

    #[test]
    fn disabling_autovacuum_leaves_dead_tuples() {
        // Make vacuum eager enough to trigger within the short test window.
        let on = run_with(
            &[
                ("autovacuum_naptime", KnobValue::Int(1)),
                ("autovacuum_vacuum_threshold", KnobValue::Int(10)),
                ("autovacuum_vacuum_scale_factor", KnobValue::Float(0.0)),
            ],
            12,
        );
        let off = run_with(&[("autovacuum", KnobValue::Cat(0))], 12);
        let idx = crate::metrics::METRIC_NAMES.iter().position(|n| *n == "vacuum_runs").unwrap();
        assert_eq!(off.metrics[idx], 0.0);
        assert!(on.metrics[idx] >= 1.0, "naptime=1s (scaled) should vacuum");
    }
}

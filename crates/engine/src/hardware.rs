//! The simulated hardware: a CloudLab c220g5-like node (Section 6.1).
//!
//! 10-core Xeon Silver 4114, 16 GB RAM, 480 GB SATA SSD. The DBMS is pinned
//! to one socket; workload clients and the optimizer run elsewhere, so the
//! full CPU budget belongs to the server.

/// Static hardware parameters of the simulated node.
#[derive(Debug, Clone)]
pub struct HardwareProfile {
    /// CPU cores available to the DBMS.
    pub cores: u32,
    /// Physical memory in bytes.
    pub ram_bytes: u64,
    /// Memory reserved for OS + client tooling, unavailable to the DBMS.
    pub os_reserved_bytes: u64,
    /// Random 8 kB page read from the SSD, microseconds.
    pub disk_random_read_us: f64,
    /// Sequential 8 kB page read (readahead amortized), microseconds.
    pub disk_seq_read_us: f64,
    /// Buffered 8 kB page write, microseconds.
    pub disk_write_us: f64,
    /// Durable fsync of the WAL tail, microseconds (SATA SSD, no NVRAM).
    pub disk_fsync_us: f64,
    /// Microseconds per byte of WAL written during a flush (~330 MB/s).
    pub disk_write_us_per_byte: f64,
    /// Read of an 8 kB page that hits the OS page cache, microseconds.
    pub os_cache_read_us: f64,
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile {
            cores: 10,
            ram_bytes: 16 * GIB,
            os_reserved_bytes: GIB,
            disk_random_read_us: 90.0,
            disk_seq_read_us: 14.0,
            disk_write_us: 55.0,
            disk_fsync_us: 280.0,
            os_cache_read_us: 6.0,
            disk_write_us_per_byte: 0.003,
        }
    }
}

const GIB: u64 = 1024 * 1024 * 1024;

impl HardwareProfile {
    /// Memory the DBMS may use before the OOM killer strikes.
    pub fn usable_memory_bytes(&self) -> u64 {
        self.ram_bytes - self.os_reserved_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_c220g5() {
        let hw = HardwareProfile::default();
        assert_eq!(hw.cores, 10);
        assert_eq!(hw.ram_bytes, 16 * GIB);
        assert_eq!(hw.usable_memory_bytes(), 15 * GIB);
        assert!(hw.disk_seq_read_us < hw.disk_random_read_us);
        assert!(hw.os_cache_read_us < hw.disk_seq_read_us);
        assert!(hw.disk_fsync_us > hw.disk_write_us);
    }
}

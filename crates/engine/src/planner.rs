//! Two-path query planner: chooses between index and sequential access
//! using the cost knobs, with estimation noise controlled by
//! `default_statistics_target`.
//!
//! The planner's *estimates* use the `*_cost` knobs; the *execution* always
//! charges real simulated resources. Misconfigured cost knobs therefore make
//! the planner pick genuinely slower plans — the same indirection real
//! PostgreSQL has.

use crate::knobs::DbmsKnobs;

/// The access path chosen for a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanChoice {
    /// B-tree index range scan: one random heap page per qualifying row.
    Index,
    /// Full sequential scan of the table.
    Seq,
    /// Bitmap scan: index first, then heap pages in physical order
    /// (modelled as sorted random reads at a discount).
    Bitmap,
}

/// Join algorithm selected for a multi-table query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinChoice {
    Hash,
    Merge,
    NestLoop,
}

/// Plans a range scan returning `est_rows` of `table_rows` rows from a table
/// of `table_pages` pages.
pub fn choose_scan(
    knobs: &DbmsKnobs,
    table_pages: u64,
    table_rows: u64,
    est_rows: u64,
) -> ScanChoice {
    let est_rows = est_rows.max(1) as f64;
    let pages = table_pages.max(1) as f64;
    let rows = table_rows.max(1) as f64;

    let index_cost = est_rows * (knobs.random_page_cost + knobs.cpu_index_tuple_cost)
        + est_rows * knobs.cpu_tuple_cost;
    let seq_cost = pages * knobs.seq_page_cost + rows * knobs.cpu_tuple_cost;
    let bitmap_cost = est_rows * (0.6 * knobs.random_page_cost + knobs.cpu_index_tuple_cost)
        + est_rows * knobs.cpu_tuple_cost
        + 30.0; // bitmap build overhead

    // PostgreSQL models `enable_* = off` as adding a huge constant, so a
    // disabled path can still be chosen when nothing else is possible.
    const DISABLED: f64 = 1.0e10;
    let mut best = (ScanChoice::Seq, seq_cost + if knobs.enable_seqscan { 0.0 } else { DISABLED });
    let index =
        (ScanChoice::Index, index_cost + if knobs.enable_indexscan { 0.0 } else { DISABLED });
    if index.1 < best.1 {
        best = index;
    }
    let bitmap =
        (ScanChoice::Bitmap, bitmap_cost + if knobs.enable_bitmapscan { 0.0 } else { DISABLED });
    if bitmap.1 < best.1 {
        best = bitmap;
    }
    best.0
}

/// Chooses a join algorithm; preference order depends on which strategies
/// are enabled. `large` joins favour hashing, small lookups favour nested
/// loops.
pub fn choose_join(knobs: &DbmsKnobs, driving_rows: u64) -> JoinChoice {
    let large = driving_rows > 64;
    if large {
        if knobs.enable_hashjoin {
            JoinChoice::Hash
        } else if knobs.enable_mergejoin {
            JoinChoice::Merge
        } else {
            JoinChoice::NestLoop
        }
    } else if knobs.enable_nestloop {
        JoinChoice::NestLoop
    } else if knobs.enable_hashjoin {
        JoinChoice::Hash
    } else {
        JoinChoice::Merge
    }
}

/// Per-row execution multiplier of a join algorithm relative to the ideal
/// choice for the cardinality.
pub fn join_cost_multiplier(choice: JoinChoice, driving_rows: u64) -> f64 {
    let large = driving_rows > 64;
    match (choice, large) {
        (JoinChoice::Hash, true) => 1.0,
        (JoinChoice::Merge, true) => 1.35,
        (JoinChoice::NestLoop, true) => 2.6,
        (JoinChoice::NestLoop, false) => 1.0,
        (JoinChoice::Hash, false) => 1.4,
        (JoinChoice::Merge, false) => 1.7,
    }
}

/// Multiplicative row-estimation error for one query.
///
/// `default_statistics_target` controls estimate fidelity: at the default
/// (100) errors are within ~±35%; tiny targets produce order-of-magnitude
/// misestimates; large targets converge toward exact. `noise` must be a
/// uniform draw in `[0, 1)`.
pub fn estimation_error(stats_target: u64, noise: f64) -> f64 {
    let spread = 1.2 / (stats_target.max(1) as f64 / 100.0).sqrt();
    // Symmetric in log space: error in [exp(-spread/2), exp(+spread/2)].
    ((noise - 0.5) * spread).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamatune_space::catalog::postgres_v9_6;
    use llamatune_space::KnobValue;

    fn default_knobs() -> DbmsKnobs {
        let cat = postgres_v9_6();
        DbmsKnobs::resolve(&cat.assignment(&cat.default_config()), &cat)
    }

    fn knobs_with(name: &str, v: KnobValue) -> DbmsKnobs {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        cfg.values_mut()[cat.index_of(name).unwrap()] = v;
        DbmsKnobs::resolve(&cat.assignment(&cfg), &cat)
    }

    #[test]
    fn point_lookups_use_the_index() {
        let k = default_knobs();
        assert_eq!(choose_scan(&k, 100_000, 10_000_000, 1), ScanChoice::Index);
    }

    #[test]
    fn huge_selectivity_prefers_seqscan() {
        let k = default_knobs();
        // Fetching nearly all rows: sequential wins.
        assert_eq!(choose_scan(&k, 1_000, 100_000, 90_000), ScanChoice::Seq);
    }

    #[test]
    fn disabling_indexscan_falls_back() {
        let k = knobs_with("enable_indexscan", KnobValue::Cat(0));
        let choice = choose_scan(&k, 100_000, 10_000_000, 1);
        assert_ne!(choice, ScanChoice::Index);
    }

    #[test]
    fn all_paths_disabled_still_plans() {
        let cat = postgres_v9_6();
        let mut cfg = cat.default_config();
        for name in ["enable_indexscan", "enable_seqscan", "enable_bitmapscan"] {
            cfg.values_mut()[cat.index_of(name).unwrap()] = KnobValue::Cat(0);
        }
        let k = DbmsKnobs::resolve(&cat.assignment(&cfg), &cat);
        // Must still return something (PostgreSQL behaves the same way).
        let _ = choose_scan(&k, 1_000, 100_000, 10);
    }

    #[test]
    fn cheap_random_pages_shift_choices_toward_index() {
        // random_page_cost = seq_page_cost = 1 (SSD-appropriate): index
        // scans become attractive for larger row counts.
        let k = knobs_with("random_page_cost", KnobValue::Float(1.0));
        let d = default_knobs();
        let rows = 3_000;
        // Default (rpc=4) picks seq for this mid-selectivity scan...
        assert_eq!(choose_scan(&d, 3_000, 300_000, rows), ScanChoice::Seq);
        // ...while an SSD-tuned planner picks an index path.
        assert_ne!(choose_scan(&k, 3_000, 300_000, rows), ScanChoice::Seq);
    }

    #[test]
    fn join_choice_respects_enabled_algorithms() {
        let k = default_knobs();
        assert_eq!(choose_join(&k, 1_000), JoinChoice::Hash);
        assert_eq!(choose_join(&k, 4), JoinChoice::NestLoop);
        let no_hash = knobs_with("enable_hashjoin", KnobValue::Cat(0));
        assert_eq!(choose_join(&no_hash, 1_000), JoinChoice::Merge);
        let no_nest = knobs_with("enable_nestloop", KnobValue::Cat(0));
        assert_eq!(choose_join(&no_nest, 4), JoinChoice::Hash);
    }

    #[test]
    fn ideal_join_has_unit_cost() {
        assert_eq!(join_cost_multiplier(JoinChoice::Hash, 1_000), 1.0);
        assert_eq!(join_cost_multiplier(JoinChoice::NestLoop, 4), 1.0);
        assert!(join_cost_multiplier(JoinChoice::NestLoop, 1_000) > 2.0);
    }

    #[test]
    fn estimation_error_tightens_with_statistics() {
        // Worst-case draws at different targets.
        let coarse = estimation_error(1, 0.999);
        let default = estimation_error(100, 0.999);
        let fine = estimation_error(10_000, 0.999);
        assert!(coarse > default && default > fine);
        assert!(fine < 1.1, "10k target is nearly exact, got {fine}");
        // Median draw is unbiased.
        assert!((estimation_error(100, 0.5) - 1.0).abs() < 1e-12);
    }
}

//! Simulation primitives: the virtual clock, utilization-based resource
//! meters (CPU, disk), and a latency reservoir for percentile estimation.
//!
//! The engine simulates at transaction granularity: each transaction's
//! timeline is computed against shared [`ResourceMeter`]s. A meter tracks
//! busy-time in small time buckets; a request observes the trailing
//! utilization and pays a queueing delay that grows hyperbolically as the
//! resource saturates, which reproduces the first-order behaviour of an
//! M/M/c queue without simulating every I/O as a discrete event.

/// Virtual time in microseconds.
pub type Micros = u64;

/// One virtual second.
pub const SECOND: Micros = 1_000_000;

/// A multi-server resource (CPU cores, SSD channels) with utilization-based
/// queueing.
#[derive(Debug, Clone)]
pub struct ResourceMeter {
    /// Number of parallel servers.
    servers: f64,
    /// Bucket width in microseconds.
    bucket_us: Micros,
    /// Busy microseconds per bucket (may include reserved future load).
    /// Bucket `b` lives at slot `b % ring.len()`; slots are recycled as the
    /// clock advances.
    ring: Vec<f64>,
    /// Most recent bucket the meter has advanced to.
    current_bucket: u64,
    /// Exponent of the queueing-delay curve: higher values delay the onset
    /// of queueing (multi-server resources queue only near saturation).
    contention_exp: f64,
    /// Total busy microseconds ever added (for utilization metrics).
    total_busy: f64,
}

impl ResourceMeter {
    /// Creates a meter with the given parallelism. `contention_exp` should
    /// be ~2 for single-server devices and larger for multi-server pools.
    pub fn new(servers: f64, bucket_us: Micros, contention_exp: f64) -> Self {
        assert!(servers > 0.0);
        assert!(bucket_us > 0);
        ResourceMeter {
            servers,
            bucket_us,
            ring: vec![0.0; 16],
            current_bucket: 0,
            contention_exp,
            total_busy: 0.0,
        }
    }

    fn advance(&mut self, now: Micros) {
        let bucket = now / self.bucket_us;
        let len = self.ring.len();
        while self.current_bucket < bucket {
            self.current_bucket += 1;
            // The bucket that just became reachable as the farthest future
            // slot still holds data from one ring-length ago; clear it.
            // (Its previous occupant, bucket current-5, is already outside
            // the 4-bucket utilization window, so nothing live is lost.)
            let stale = (self.current_bucket as usize + len - 5) % len;
            self.ring[stale] = 0.0;
        }
    }

    fn slot_for(&self, bucket: u64) -> Option<usize> {
        if bucket <= self.current_bucket {
            let back = (self.current_bucket - bucket) as usize;
            if back > 3 {
                return None; // too old to matter
            }
        } else {
            let ahead = (bucket - self.current_bucket) as usize;
            if ahead >= self.ring.len() - 4 {
                return None; // beyond the reservation horizon
            }
        }
        Some(bucket as usize % self.ring.len())
    }

    /// Trailing utilization over the (up to) 4 most recent buckets.
    pub fn utilization(&self, now: Micros) -> f64 {
        let bucket = now / self.bucket_us;
        let mut busy = 0.0;
        let mut counted = 0u32;
        for b in bucket.saturating_sub(3)..=bucket {
            if let Some(slot) = self.slot_for(b) {
                busy += self.ring[slot];
                counted += 1;
            }
        }
        if counted == 0 {
            return 0.0;
        }
        busy / (f64::from(counted) * self.bucket_us as f64 * self.servers)
    }

    /// Executes a foreground request of `service_us` at `now`; returns the
    /// total latency (service + queueing delay).
    ///
    /// Transactions are simulated at transaction granularity, so a request
    /// may arrive slightly "in the past" of the meter's clock (an earlier-
    /// starting transaction already advanced it); such requests are charged
    /// to the oldest bucket still in the window.
    pub fn request(&mut self, now: Micros, service_us: f64) -> f64 {
        debug_assert!(service_us >= 0.0);
        self.advance(now);
        let rho = self.utilization(now).min(0.98);
        let queue_factor = rho.powf(self.contention_exp) / (1.0 - rho);
        let bucket = (now / self.bucket_us).max(self.current_bucket.saturating_sub(3));
        let slot = self.slot_for(bucket).expect("clamped bucket is always in the window");
        self.ring[slot] += service_us;
        self.total_busy += service_us;
        service_us * (1.0 + queue_factor.min(40.0))
    }

    /// Reserves background load (daemon work) spread uniformly over
    /// `[start, start + duration_us)`. Background load raises utilization
    /// seen by foreground requests but has no latency of its own.
    pub fn add_background(&mut self, start: Micros, total_service_us: f64, duration_us: Micros) {
        self.advance(start);
        let duration = duration_us.max(self.bucket_us);
        let first = start / self.bucket_us;
        let last = (start + duration) / self.bucket_us;
        let n = (last - first + 1) as f64;
        let per_bucket = total_service_us / n;
        for b in first..=last {
            if let Some(slot) = self.slot_for(b) {
                self.ring[slot] += per_bucket;
            }
        }
        self.total_busy += total_service_us;
    }

    /// Total busy microseconds accumulated since construction.
    pub fn total_busy_us(&self) -> f64 {
        self.total_busy
    }
}

/// Fixed-capacity reservoir of latency samples for percentile estimation.
#[derive(Debug, Clone)]
pub struct LatencyReservoir {
    samples: Vec<f64>,
    seen: u64,
    cap: usize,
    state: u64,
}

impl LatencyReservoir {
    /// Creates a reservoir holding at most `cap` samples.
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0);
        LatencyReservoir {
            samples: Vec::with_capacity(cap.min(4096)),
            seen: 0,
            cap,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Records one latency observation (Vitter's Algorithm R).
    pub fn record(&mut self, latency_us: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(latency_us);
        } else {
            let idx = (self.next_u64() % self.seen) as usize;
            if idx < self.cap {
                self.samples[idx] = latency_us;
            }
        }
    }

    /// Number of observations recorded (not retained).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Percentile estimate (q in `[0, 100]`); `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(llamatune_math::percentile(&self.samples, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_has_no_queueing() {
        let mut m = ResourceMeter::new(1.0, 10_000, 2.0);
        let lat = m.request(0, 100.0);
        assert!((lat - 100.0).abs() < 1e-9, "idle latency {lat}");
    }

    #[test]
    fn saturation_inflates_latency() {
        let mut m = ResourceMeter::new(1.0, 10_000, 2.0);
        // Saturate the current window.
        for t in 0..40 {
            m.request(t * 1_000, 900.0);
        }
        let busy_lat = m.request(40_000, 100.0);
        assert!(busy_lat > 150.0, "expected queueing, got {busy_lat}");

        // After a long idle gap the meter decays back to idle.
        let idle_lat = m.request(2_000_000, 100.0);
        assert!((idle_lat - 100.0).abs() < 1.0, "idle latency {idle_lat}");
    }

    #[test]
    fn multi_server_queues_later_than_single() {
        let mut single = ResourceMeter::new(1.0, 10_000, 2.0);
        let mut multi = ResourceMeter::new(10.0, 10_000, 4.0);
        for t in 0..40 {
            single.request(t * 1_000, 900.0);
            multi.request(t * 1_000, 900.0);
        }
        let s = single.request(40_000, 100.0);
        let m = multi.request(40_000, 100.0);
        assert!(m < s, "10-way resource should queue less: single={s} multi={m}");
    }

    #[test]
    fn background_load_raises_utilization() {
        let mut m = ResourceMeter::new(1.0, 10_000, 2.0);
        assert!(m.utilization(5_000) < 0.01);
        m.add_background(0, 30_000.0, 40_000);
        assert!(m.utilization(5_000) > 0.5);
        // Foreground requests see the background pressure.
        let lat = m.request(5_000, 100.0);
        assert!(lat > 150.0);
    }

    #[test]
    fn utilization_window_rolls_forward() {
        let mut m = ResourceMeter::new(1.0, 10_000, 2.0);
        m.request(0, 10_000.0);
        assert!(m.utilization(1_000) > 0.2);
        // 10 buckets later the old busy time is out of the window.
        m.advance(100_000);
        assert!(m.utilization(100_000) < 0.01);
    }

    #[test]
    fn total_busy_accumulates() {
        let mut m = ResourceMeter::new(2.0, 10_000, 3.0);
        m.request(0, 50.0);
        m.add_background(0, 150.0, 20_000);
        assert!((m.total_busy_us() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn reservoir_exact_percentiles_under_capacity() {
        let mut r = LatencyReservoir::new(1000, 42);
        for i in 1..=100 {
            r.record(i as f64);
        }
        assert_eq!(r.count(), 100);
        let p50 = r.percentile(50.0).unwrap();
        assert!((p50 - 50.5).abs() < 1.0, "p50 {p50}");
        let p95 = r.percentile(95.0).unwrap();
        assert!((p95 - 95.0).abs() < 1.5, "p95 {p95}");
    }

    #[test]
    fn reservoir_approximates_after_overflow() {
        let mut r = LatencyReservoir::new(512, 7);
        for i in 0..50_000 {
            r.record((i % 1000) as f64);
        }
        assert_eq!(r.count(), 50_000);
        let p50 = r.percentile(50.0).unwrap();
        assert!((p50 - 500.0).abs() < 80.0, "p50 {p50}");
    }

    #[test]
    fn empty_reservoir_has_no_percentile() {
        let r = LatencyReservoir::new(8, 1);
        assert!(r.percentile(95.0).is_none());
    }
}

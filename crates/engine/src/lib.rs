//! Discrete-event simulation of an OLTP DBMS for the LlamaTune reproduction.
//!
//! The paper evaluates LlamaTune against PostgreSQL running on a CloudLab
//! c220g5 node. This crate substitutes that testbed with a mechanistic
//! simulator whose observable behaviour — throughput, tail latency, and 27
//! internal metrics, as a function of the knob configuration — has the same
//! *structure* the paper's techniques exploit:
//!
//! * a **buffer pool** with clock eviction backed by an OS page cache and a
//!   simulated SSD (so `shared_buffers` and friends dominate performance);
//! * a **WAL** with group commit, a WAL-writer daemon, full-page writes and
//!   buffer-full stalls (`commit_delay`, `wal_buffers`, `synchronous_commit`,
//!   `max_wal_size`, ...);
//! * a **checkpointer** and **background writer** spreading dirty-page
//!   writebacks, plus foreground writeback when `backend_flush_after > 0` —
//!   reproducing the Figure 4 discontinuity at the special value 0;
//! * **autovacuum** with dead-tuple accounting and bloat, paced by the
//!   vacuum cost knobs;
//! * a **row lock manager** (2PL, sorted acquisition) so skewed workloads
//!   contend;
//! * a two-path **planner** whose choices depend on the cost knobs.
//!
//! Transactions are simulated at transaction granularity on a virtual clock:
//! clients are popped from a time-ordered heap, each transaction's timeline
//! is computed against shared resource meters (CPU, disk) that model
//! queueing by utilization, and daemons (checkpointer, vacuum, WAL writer,
//! background writer) run as periodic actors on the same clock. Background
//! daemon periods are divided by `RunOptions::daemon_time_scale` so that
//! slow dynamics (5-minute checkpoints) appear within the short virtual
//! window that substitutes for the paper's 5-minute wall-clock runs.
//!
//! Configurations that overcommit the 16 GB box crash, mirroring the paper's
//! crashed-configuration handling.

pub mod bufferpool;
pub mod db;
pub mod hardware;
pub mod knobs;
pub mod locks;
pub mod metrics;
pub mod planner;
pub mod sim;
pub mod vacuum;
pub mod wal;
pub mod workload_spec;

pub use db::{run_workload, RunOptions, RunResult};
pub use hardware::HardwareProfile;
pub use knobs::DbmsKnobs;
pub use metrics::{fingerprint_features, METRIC_NAMES};
pub use workload_spec::{Arrival, KeyDist, OpTemplate, TableSpec, TxnTemplate, WorkloadSpec};

//! Shared-buffer pool with clock (second-chance) eviction, and the OS page
//! cache that sits beneath it.
//!
//! `shared_buffers` sets the pool's frame count; pages missing from the pool
//! may still hit the OS cache (tracked at 128 kB chunk granularity — the OS
//! reads ahead, so chunk-level residency is the honest model) before paying
//! for a disk read. Dirty frames evicted by a backend incur a foreground
//! write, which is what the background writer exists to prevent.

use std::collections::HashMap;

/// Identifies an 8 kB page: table id in the high bits, page number below.
pub type PageId = u64;

/// Builds a [`PageId`] from a table id and page number.
pub fn page_id(table: u32, page_no: u64) -> PageId {
    ((table as u64) << 40) | (page_no & 0xFF_FFFF_FFFF)
}

/// Result of a buffer-pool page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Found in shared buffers.
    Hit,
    /// Missed shared buffers; a clean frame was (or could be) reclaimed.
    Miss {
        /// The eviction displaced a dirty page, forcing a foreground write.
        dirty_eviction: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: PageId,
    referenced: bool,
    dirty: bool,
}

/// Clock buffer pool over 8 kB frames.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<PageId, u32>,
    capacity: usize,
    hand: usize,
    dirty_count: usize,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames (>= 16, like PostgreSQL).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        BufferPool {
            // Grow lazily: most runs touch far fewer pages than the
            // configured capacity, and evaluations are frequent.
            frames: Vec::with_capacity(capacity.min(4_096)),
            map: HashMap::with_capacity(capacity.min(4_096)),
            capacity,
            hand: 0,
            dirty_count: 0,
        }
    }

    /// Number of frames currently holding pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of dirty frames.
    pub fn dirty(&self) -> usize {
        self.dirty_count
    }

    /// Accesses `page`, faulting it in on a miss; `write` marks it dirty.
    pub fn access(&mut self, page: PageId, write: bool) -> Access {
        if let Some(&slot) = self.map.get(&page) {
            let f = &mut self.frames[slot as usize];
            f.referenced = true;
            if write && !f.dirty {
                f.dirty = true;
                self.dirty_count += 1;
            }
            return Access::Hit;
        }
        let mut dirty_eviction = false;
        let slot = if self.frames.len() < self.capacity {
            self.frames.push(Frame { page, referenced: true, dirty: write });
            self.frames.len() - 1
        } else {
            let victim = self.run_clock();
            let old = self.frames[victim];
            self.map.remove(&old.page);
            if old.dirty {
                dirty_eviction = true;
                self.dirty_count -= 1;
            }
            self.frames[victim] = Frame { page, referenced: true, dirty: write };
            victim
        };
        if write {
            self.dirty_count += 1;
        }
        self.map.insert(page, slot as u32);
        Access::Miss { dirty_eviction }
    }

    /// Second-chance sweep returning the victim slot.
    fn run_clock(&mut self) -> usize {
        loop {
            let f = &mut self.frames[self.hand];
            if f.referenced {
                f.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                let victim = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                return victim;
            }
        }
    }

    /// Cleans up to `max_pages` dirty frames (background writer / checkpoint
    /// work), returning how many were written.
    pub fn clean_dirty(&mut self, max_pages: usize) -> usize {
        if self.dirty_count == 0 || max_pages == 0 {
            return 0;
        }
        let mut written = 0;
        // Sweep from the clock hand — the same order eviction would find
        // them, which is exactly the LRU-ish set the bgwriter targets.
        let n = self.frames.len();
        for i in 0..n {
            if written >= max_pages {
                break;
            }
            let idx = (self.hand + i) % n;
            let f = &mut self.frames[idx];
            if f.dirty {
                f.dirty = false;
                written += 1;
            }
        }
        self.dirty_count -= written;
        written
    }
}

/// OS page cache tracked at 32 kB (4-page) chunk granularity with clock
/// eviction. Capacity is a fraction of whatever RAM the DBMS and other
/// processes leave free: random-access traffic wastes most of each
/// readahead chunk and competes with writeback and double buffering, so
/// only [`OS_CACHE_EFFECTIVE_FRAC`] of free memory acts as an effective
/// cache for the DBMS's random reads.
#[derive(Debug)]
pub struct OsCache {
    pool: BufferPool,
}

/// Pages per OS-cache chunk (32 kB / 8 kB).
pub const CHUNK_PAGES: u64 = 4;

/// Effective fraction of free RAM acting as page cache for random reads.
pub const OS_CACHE_EFFECTIVE_FRAC: f64 = 0.45;

impl OsCache {
    /// Creates a cache over `bytes` of free memory.
    pub fn new(bytes: u64) -> Self {
        let effective = (bytes as f64 * OS_CACHE_EFFECTIVE_FRAC) as u64;
        let chunks = (effective / (CHUNK_PAGES * 8 * 1024)).max(16);
        OsCache { pool: BufferPool::new(chunks as usize) }
    }

    /// Whether the chunk containing `page` is resident; touches it in
    /// either case (misses fault the chunk in).
    pub fn access(&mut self, page: PageId) -> bool {
        let chunk = page / CHUNK_PAGES;
        matches!(self.pool.access(chunk, false), Access::Hit)
    }

    /// Chunk capacity.
    pub fn capacity_chunks(&self) -> usize {
        self.pool.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hits_after_fault() {
        let mut bp = BufferPool::new(64);
        assert_eq!(bp.access(page_id(1, 0), false), Access::Miss { dirty_eviction: false });
        assert_eq!(bp.access(page_id(1, 0), false), Access::Hit);
        assert_eq!(bp.resident(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut bp = BufferPool::new(16);
        for i in 0..100 {
            bp.access(page_id(0, i), false);
        }
        assert_eq!(bp.resident(), 16);
    }

    #[test]
    fn minimum_capacity_clamped() {
        let bp = BufferPool::new(1);
        assert_eq!(bp.capacity(), 16);
    }

    #[test]
    fn clock_keeps_hot_pages() {
        let mut bp = BufferPool::new(16);
        // Fill the pool, keep page 0 hot.
        for i in 0..16 {
            bp.access(page_id(0, i), false);
        }
        for round in 0..50u64 {
            bp.access(page_id(0, 0), false); // hot page
            bp.access(page_id(0, 100 + round), false); // cold stream
        }
        // The hot page must still be resident.
        assert_eq!(bp.access(page_id(0, 0), false), Access::Hit);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut bp = BufferPool::new(16);
        for i in 0..16 {
            bp.access(page_id(0, i), true); // all dirty
        }
        assert_eq!(bp.dirty(), 16);
        // Next miss must evict a dirty page.
        match bp.access(page_id(0, 999), false) {
            Access::Miss { dirty_eviction } => assert!(dirty_eviction),
            Access::Hit => panic!("expected miss"),
        }
        assert_eq!(bp.dirty(), 15);
    }

    #[test]
    fn rewriting_dirty_page_counts_once() {
        let mut bp = BufferPool::new(16);
        bp.access(page_id(0, 1), true);
        bp.access(page_id(0, 1), true);
        assert_eq!(bp.dirty(), 1);
    }

    #[test]
    fn clean_dirty_reduces_dirty_count() {
        let mut bp = BufferPool::new(32);
        for i in 0..20 {
            bp.access(page_id(0, i), true);
        }
        let written = bp.clean_dirty(8);
        assert_eq!(written, 8);
        assert_eq!(bp.dirty(), 12);
        let written = bp.clean_dirty(100);
        assert_eq!(written, 12);
        assert_eq!(bp.dirty(), 0);
        assert_eq!(bp.clean_dirty(100), 0);
    }

    #[test]
    fn os_cache_chunk_locality() {
        let mut os = OsCache::new(1024 * 1024 * 1024);
        assert!(!os.access(page_id(0, 0)));
        // Neighbouring page in the same 4-page chunk now hits.
        assert!(os.access(page_id(0, 1)));
        // A page in a different chunk misses.
        assert!(!os.access(page_id(0, 64)));
    }

    #[test]
    fn os_cache_capacity_reflects_effective_fraction() {
        let os = OsCache::new(1 << 30);
        let expected =
            ((1u64 << 30) as f64 * OS_CACHE_EFFECTIVE_FRAC) as u64 / (CHUNK_PAGES * 8 * 1024);
        assert_eq!(os.capacity_chunks() as u64, expected);
    }

    #[test]
    fn page_id_separates_tables() {
        assert_ne!(page_id(1, 7), page_id(2, 7));
        assert_ne!(page_id(1, 7), page_id(1, 8));
    }

    proptest! {
        /// Invariants: resident <= capacity, dirty <= resident, and a page
        /// just accessed is always a hit on re-access.
        #[test]
        fn pool_invariants(ops in proptest::collection::vec((0u64..200, any::<bool>()), 1..300)) {
            let mut bp = BufferPool::new(32);
            for (page, write) in ops {
                bp.access(page_id(0, page), write);
                prop_assert!(bp.resident() <= bp.capacity());
                prop_assert!(bp.dirty() <= bp.resident());
                prop_assert_eq!(bp.access(page_id(0, page), false), Access::Hit);
            }
        }
    }
}

//! Numerical substrate for the LlamaTune reproduction.
//!
//! This crate deliberately implements everything the upper layers need from
//! first principles — dense matrices with Cholesky factorization (for the
//! Gaussian-process surrogate), robust summary statistics with percentile
//! confidence intervals (for the paper's `[5%, 95%]` CI tables), sampling
//! distributions (normal, Zipfian, exponential) and Latin hypercube designs
//! (the space-filling initializer used by every tuning session) — so that the
//! workspace has no dependency on external linear-algebra or statistics
//! crates.

pub mod block;
pub mod dist;
pub mod lhs;
pub mod matrix;
pub mod stats;

pub use block::{set_worker_budget, worker_budget, BlockSchedule};
pub use dist::{Exponential, Normal, Zipfian};
pub use lhs::latin_hypercube;
pub use matrix::{CholeskyError, Matrix};
pub use stats::{bootstrap_ci_mean, mean, percentile, std_dev, RunningStats, Summary};

//! Latin Hypercube Sampling (McKay, Beckman & Conover 1979).
//!
//! Every tuning session in the paper bootstraps its optimizer with 10
//! LHS-generated configurations, and the important-knob ranking experiments
//! (Table 1) evaluate 2,500 LHS samples. The design guarantees one sample in
//! each of `n` equal-width strata per dimension.

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Generates `n` points in the unit hypercube `[0, 1)^dims` with the Latin
/// hypercube property: projected onto any dimension, exactly one point falls
/// into each of the `n` strata `[i/n, (i+1)/n)`.
///
/// Returns an empty vector when `n == 0`.
pub fn latin_hypercube<R: Rng + ?Sized>(n: usize, dims: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if n == 0 {
        return Vec::new();
    }
    let mut points = vec![vec![0.0; dims]; n];
    let mut perm: Vec<usize> = (0..n).collect();
    for d in 0..dims {
        perm.shuffle(rng);
        for (i, point) in points.iter_mut().enumerate() {
            let stratum = perm[i] as f64;
            point[d] = (stratum + rng.random::<f64>()) / n as f64;
        }
    }
    points
}

/// Generates `candidates` LHS designs and keeps the one maximizing the
/// minimum pairwise distance (a cheap "maximin" improvement that spreads the
/// initial configurations further apart).
pub fn maximin_latin_hypercube<R: Rng + ?Sized>(
    n: usize,
    dims: usize,
    candidates: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!(candidates > 0, "need at least one candidate design");
    let mut best: Option<(f64, Vec<Vec<f64>>)> = None;
    for _ in 0..candidates {
        let design = latin_hypercube(n, dims, rng);
        let score = min_pairwise_distance(&design);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, design));
        }
    }
    best.expect("candidates > 0").1
}

fn min_pairwise_distance(points: &[Vec<f64>]) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d: f64 = points[i].iter().zip(&points[j]).map(|(a, b)| (a - b) * (a - b)).sum();
            min = min.min(d);
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn has_lhs_property(points: &[Vec<f64>], dims: usize) -> bool {
        let n = points.len();
        for d in 0..dims {
            let mut seen = vec![false; n];
            for p in points {
                let stratum = (p[d] * n as f64).floor() as usize;
                if stratum >= n || seen[stratum] {
                    return false;
                }
                seen[stratum] = true;
            }
        }
        true
    }

    #[test]
    fn lhs_covers_every_stratum() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = latin_hypercube(10, 5, &mut rng);
        assert_eq!(pts.len(), 10);
        assert!(has_lhs_property(&pts, 5));
    }

    #[test]
    fn lhs_zero_points() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(latin_hypercube(0, 3, &mut rng).is_empty());
    }

    #[test]
    fn lhs_single_point_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = latin_hypercube(1, 4, &mut rng);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn maximin_beats_or_ties_average_design() {
        let mut rng = StdRng::seed_from_u64(42);
        let plain = latin_hypercube(16, 3, &mut rng);
        let maximin = maximin_latin_hypercube(16, 3, 20, &mut rng);
        assert!(has_lhs_property(&maximin, 3));
        // Not a strict guarantee, but with 20 candidates the maximin design
        // should not be *worse* than one arbitrary draw in min-distance.
        assert!(min_pairwise_distance(&maximin) + 1e-12 >= min_pairwise_distance(&plain) * 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = latin_hypercube(8, 4, &mut StdRng::seed_from_u64(7));
        let b = latin_hypercube(8, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn lhs_property_holds(n in 1usize..30, dims in 1usize..8, seed in 0u64..500) {
            let pts = latin_hypercube(n, dims, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(pts.len(), n);
            prop_assert!(has_lhs_property(&pts, dims));
            for p in &pts {
                for &x in p {
                    prop_assert!((0.0..1.0).contains(&x));
                }
            }
        }
    }
}

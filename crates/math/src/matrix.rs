//! Minimal dense linear algebra: row-major matrices, Cholesky factorization
//! and triangular solves.
//!
//! This is everything the Gaussian-process surrogate in `llamatune-optim`
//! needs: building a kernel matrix, factoring it, solving against it, and
//! computing its log-determinant for the marginal likelihood.

use std::fmt;

/// Error returned when a Cholesky factorization fails because the input is
/// not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyError {
    /// Index of the pivot that was non-positive.
    pub pivot: usize,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for CholeskyError {}

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows * cols");
        Matrix { rows, cols, data }
    }

    /// Builds an `n x n` symmetric matrix by evaluating `f(i, j)` for the
    /// lower triangle and mirroring it.
    pub fn from_symmetric_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = f(i, j);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Splits the backing row-major storage at flat index `mid` — the
    /// aliasing seam the blocked kernels in [`crate::block`] use to
    /// hand finalized rows to reader threads while writer threads own
    /// the rows below.
    pub(crate) fn data_split_at_mut(&mut self, mid: usize) -> (&mut [f64], &mut [f64]) {
        self.data.split_at_mut(mid)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Cholesky factorization: returns lower-triangular `L` with
    /// `self = L * L^T`. The input must be symmetric positive definite; a
    /// small `jitter` is added to the diagonal to absorb round-off.
    pub fn cholesky(&self, jitter: f64) -> Result<Matrix, CholeskyError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(CholeskyError { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Extends a Cholesky factor by one row in O(n²): given `self` = the
    /// lower-triangular factor `L` of an `n x n` SPD matrix `A`, and the
    /// new bordering row `row = [A[n,0], .., A[n,n-1], A[n,n]]` (its last
    /// entry is the new diagonal element), returns the `(n+1) x (n+1)`
    /// factor of the bordered matrix. `jitter` is added to the new
    /// diagonal entry exactly as [`Matrix::cholesky`] would.
    ///
    /// The new row is computed with the same recurrences (and the same
    /// floating-point operation order) as a full refactorization, so the
    /// result is bit-identical to `bordered_A.cholesky(jitter)` — which
    /// is what lets the GP surrogate append observations incrementally
    /// without perturbing any recorded history.
    ///
    /// # Panics
    /// Panics if `self` is not square or `row.len() != self.rows() + 1`.
    pub fn cholesky_append_row(&self, row: &[f64], jitter: f64) -> Result<Matrix, CholeskyError> {
        assert_eq!(self.rows, self.cols, "cholesky_append_row requires a square factor");
        let n = self.rows;
        assert_eq!(row.len(), n + 1, "bordering row must have n + 1 entries");
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (dst, src) = (&mut l.data[i * (n + 1)..i * (n + 1) + n], self.row(i));
            dst.copy_from_slice(src);
        }
        // New off-diagonal entries: the forward-substitution recurrence
        // w[j] = (A[n,j] - Σ_{k<j} L[j,k] w[k]) / L[j,j] is exactly the
        // full factorization's formula for row n.
        for j in 0..n {
            let mut sum = row[j];
            for k in 0..j {
                sum -= l[(n, k)] * l[(j, k)];
            }
            l[(n, j)] = sum / l[(j, j)];
        }
        let mut diag = row[n] + jitter;
        for k in 0..n {
            diag -= l[(n, k)] * l[(n, k)];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(CholeskyError { pivot: n });
        }
        l[(n, n)] = diag.sqrt();
        Ok(l)
    }

    /// Solves `L * x = b` where `self` is lower triangular (forward
    /// substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self[(i, j)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `L * X = B` for many right-hand sides at once, where `self`
    /// is lower triangular and `B` is `n x m` (one RHS per column).
    /// Returns `X` with the same shape.
    ///
    /// The substitution runs row-outer / column-inner, so every `L` row
    /// is streamed through the cache once per *batch* rather than once
    /// per RHS — the blocked layout that makes scoring thousands of EI
    /// candidates against one factor cheap. Each column's arithmetic is
    /// performed in the same order as [`Matrix::solve_lower`], so results
    /// are bit-identical to m independent solves.
    ///
    /// # Panics
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn solve_lower_batch(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.rows, self.rows, "RHS row count must match the factor dimension");
        let (n, m) = (self.rows, b.cols);
        let mut x = b.clone();
        for i in 0..n {
            let (solved, rest) = x.data.split_at_mut(i * m);
            let xi = &mut rest[..m];
            let li = self.row(i);
            for (j, &lij) in li[..i].iter().enumerate() {
                let xj = &solved[j * m..(j + 1) * m];
                for (acc, &v) in xi.iter_mut().zip(xj) {
                    *acc -= lij * v;
                }
            }
            let d = li[i];
            for acc in xi.iter_mut() {
                *acc /= d;
            }
        }
        x
    }

    /// Solves `L^T * x = b` where `self` is lower triangular (backward
    /// substitution against the transpose).
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in (i + 1)..n {
                sum -= self[(j, i)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Given the Cholesky factor `L` of `A`, solves `A * x = b`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_lower_transpose(&y)
    }

    /// Sum of `ln` of the diagonal entries; for a Cholesky factor `L` of `A`,
    /// `2 * L.log_diag_sum()` is `ln det A`.
    pub fn log_diag_sum(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)].ln()).sum()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky(0.0).unwrap();
        assert!(approx_eq(l[(0, 0)], 2.0, 1e-12));
        assert!(approx_eq(l[(1, 0)], 1.0, 1e-12));
        assert!(approx_eq(l[(1, 1)], 2.0_f64.sqrt(), 1e-12));
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(a.cholesky(0.0).is_err());
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let l = a.cholesky(0.0).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = l.cholesky_solve(&b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!(approx_eq(*u, *v, 1e-10), "{u} vs {v}");
        }
    }

    #[test]
    fn log_det_matches_known() {
        // det([[4,2],[2,3]]) = 8 -> ln det = ln 8.
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky(0.0).unwrap();
        assert!(approx_eq(2.0 * l.log_diag_sum(), 8.0_f64.ln(), 1e-12));
    }

    #[test]
    fn from_symmetric_fn_evaluates_each_pair_once() {
        // The kernel is the hot callback: symmetric fill must evaluate
        // it once per unordered (i, j) pair, not once per cell.
        let mut calls = 0usize;
        let m = Matrix::from_symmetric_fn(5, |i, j| {
            calls += 1;
            (i + j) as f64
        });
        assert_eq!(calls, 5 * 6 / 2, "n(n+1)/2 evaluations for n = 5");
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m[(i, j)], (i + j) as f64);
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    /// Builds a random SPD matrix of size n (B*Bᵀ + n*I).
    fn random_spd(n: usize, seed: u64) -> Matrix {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.random_range(-2.0..2.0)).collect());
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        a
    }

    #[test]
    fn cholesky_append_row_matches_full_rebuild_bitwise() {
        // Grow a factor one bordered row at a time and compare against
        // refactorizing from scratch at every size: the incremental
        // update must agree not merely to 1e-9 but to the last bit,
        // because the GP's recorded histories are compared bitwise.
        for seed in 0..5u64 {
            let a = random_spd(12, seed);
            let jitter = 1e-8;
            let l = a.cholesky(jitter).unwrap();
            // Start from the 1x1 factor and regrow one border at a time.
            let mut small = Matrix::from_vec(1, 1, vec![(a[(0, 0)] + jitter).sqrt()]);
            for n in 1..12 {
                let row: Vec<f64> = (0..=n).map(|j| a[(n, j)]).collect();
                small = small.cholesky_append_row(&row, jitter).unwrap();
            }
            for i in 0..12 {
                for j in 0..12 {
                    assert_eq!(
                        small[(i, j)].to_bits(),
                        l[(i, j)].to_bits(),
                        "entry ({i}, {j}) diverged at seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn cholesky_append_row_rejects_non_spd_borders() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky(0.0).unwrap();
        // A bordering row that makes the matrix singular: the new row
        // equals the first row, so the Schur complement is <= 0.
        let err = l.cholesky_append_row(&[4.0, 2.0, 4.0], 0.0).unwrap_err();
        assert_eq!(err.pivot, 2);
    }

    #[test]
    fn solve_lower_batch_matches_columnwise_solves_bitwise() {
        let a = random_spd(9, 3);
        let l = a.cholesky(0.0).unwrap();
        let m = 7;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let b = Matrix::from_vec(9, m, (0..9 * m).map(|_| rng.random_range(-5.0..5.0)).collect());
        let x = l.solve_lower_batch(&b);
        for j in 0..m {
            let col: Vec<f64> = (0..9).map(|i| b[(i, j)]).collect();
            let single = l.solve_lower(&col);
            for i in 0..9 {
                assert_eq!(x[(i, j)].to_bits(), single[i].to_bits(), "column {j} row {i}");
            }
        }
    }

    proptest! {
        /// Any matrix of the form B*B^T + eps*I is SPD, so Cholesky must
        /// succeed and reconstruct the input.
        #[test]
        fn cholesky_reconstructs_spd(vals in proptest::collection::vec(-3.0f64..3.0, 16)) {
            let b = Matrix::from_vec(4, 4, vals);
            // a = b * b^T + I
            let mut a = Matrix::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    let mut s = 0.0;
                    for k in 0..4 {
                        s += b[(i, k)] * b[(j, k)];
                    }
                    a[(i, j)] = s + if i == j { 1.0 } else { 0.0 };
                }
            }
            let l = a.cholesky(0.0).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    let mut s = 0.0;
                    for k in 0..4 {
                        s += l[(i, k)] * l[(j, k)];
                    }
                    prop_assert!(approx_eq(s, a[(i, j)], 1e-9));
                }
            }
        }

        /// solve_lower / solve_lower_transpose invert the corresponding
        /// triangular products.
        #[test]
        fn triangular_solves_invert(vals in proptest::collection::vec(0.5f64..2.0, 10),
                                    b in proptest::collection::vec(-5.0f64..5.0, 4)) {
            // Build a well-conditioned lower-triangular matrix.
            let mut l = Matrix::zeros(4, 4);
            let mut it = vals.into_iter();
            for i in 0..4 {
                for j in 0..=i {
                    let v = it.next().unwrap();
                    l[(i, j)] = if i == j { v + 1.0 } else { v - 1.25 };
                }
            }
            let x = l.solve_lower(&b);
            // L * x should equal b.
            for i in 0..4 {
                let mut s = 0.0;
                for j in 0..=i {
                    s += l[(i, j)] * x[j];
                }
                prop_assert!(approx_eq(s, b[i], 1e-9));
            }
        }
    }
}

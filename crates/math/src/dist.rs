//! Sampling distributions implemented from scratch: standard/scaled normal
//! (Box–Muller, plus pdf/cdf needed by the Expected-Improvement acquisition
//! function), YCSB-style Zipfian over item ranks (for skewed key access), and
//! exponential inter-arrival times (for the fixed-rate tail-latency runner).

use parking_lot::Mutex;
use rand::{Rng, RngExt};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Normal distribution `N(mean, std^2)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "invalid std: {std}");
        Normal { mean, std }
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function via a high-accuracy `erf`
    /// approximation (Abramowitz & Stegun 7.1.26, |error| < 1.5e-7).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Exponential distribution with the given rate (events per unit time).
/// Used for Poisson arrivals in the open-loop workload runner.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate: {rate}");
        Exponential { rate }
    }

    /// Draws one inter-arrival interval.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }
}

/// Cache of `zeta(n, theta)` values: computing the generalized harmonic
/// number is O(n) for tens of millions of items, so it is shared across all
/// evaluations of the same workload in a process.
static ZETA_CACHE: OnceLock<Mutex<HashMap<(u64, u64), f64>>> = OnceLock::new();

fn zeta(n: u64, theta: f64) -> f64 {
    let key = (n, theta.to_bits());
    let cache = ZETA_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&v) = cache.lock().get(&key) {
        return v;
    }
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    cache.lock().insert(key, sum);
    sum
}

/// Zipfian distribution over ranks `0..n`, following the YCSB generator
/// (Gray et al.'s method): rank 0 is the most popular item.
///
/// A caller that needs scattered hot keys (as YCSB does) should additionally
/// hash the returned rank.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `n` items with skew `theta`
    /// (YCSB uses `theta = 0.99`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over zero items");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1): {theta}");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n`, rank 0 being the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sample_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let m = crate::stats::mean(&samples);
        let s = crate::stats::std_dev(&samples);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((s - 2.0).abs() < 0.05, "std {s}");
    }

    #[test]
    fn normal_cdf_pdf_known_values() {
        let std_norm = Normal::new(0.0, 1.0);
        assert!((std_norm.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_norm.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_norm.pdf(0.0) - 0.398_942_28).abs() < 1e-6);
        // Symmetry.
        assert!((std_norm.cdf(-1.0) + std_norm.cdf(1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn erf_known_values() {
        // A&S 7.1.26 has |error| < 1.5e-7 everywhere (including a ~1e-9
        // residual at exactly 0 because the coefficients don't sum to 1).
        assert!(erf(0.0).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Exponential::new(4.0);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!((crate::stats::mean(&samples) - 0.25).abs() < 0.01);
    }

    #[test]
    fn zipfian_rank_zero_is_hottest() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipfian::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should dominate and the tail should decay.
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999]);
        let head: u64 = counts[..10].iter().sum();
        // With theta=0.99, the top-10 of 1000 items take a large share.
        assert!(head as f64 / 50_000.0 > 0.3, "head share {}", head as f64 / 50_000.0);
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let z = Zipfian::new(37, 0.5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 37);
        }
    }

    #[test]
    fn zeta_cache_consistent() {
        let a = zeta(1000, 0.99);
        let b = zeta(1000, 0.99);
        assert_eq!(a, b);
        assert!(a > 0.0);
        // zeta(2, 1/2) = 1 + 1/sqrt(2)
        assert!((zeta(2, 0.5) - (1.0 + 1.0 / 2.0_f64.sqrt())).abs() < 1e-12);
    }
}

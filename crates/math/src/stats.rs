//! Summary statistics used by the engine (latency percentiles) and the
//! experiment harness (mean improvements with `[5%, 95%]` confidence
//! intervals across seeds, matching the paper's tables).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); `0.0` for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentile with linear interpolation between closest ranks (the same
/// definition NumPy uses by default). `q` is in `[0, 100]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// Percentile over an already-sorted slice; see [`percentile`].
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Percentile-bootstrap confidence interval for the mean of `xs`.
///
/// Returns `(lo, hi)` bounds at levels `q_lo` / `q_hi` (in percent, e.g.
/// `5.0` and `95.0` for the paper's `[5%, 95%]` intervals). Resampling is
/// driven by a simple deterministic LCG seeded with `seed` so results are
/// reproducible without threading a full RNG through the harness.
pub fn bootstrap_ci_mean(xs: &[f64], q_lo: f64, q_hi: f64, seed: u64) -> (f64, f64) {
    assert!(!xs.is_empty());
    if xs.len() == 1 {
        return (xs[0], xs[0]);
    }
    const RESAMPLES: usize = 2000;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let n = xs.len();
    let mut means = Vec::with_capacity(RESAMPLES);
    for _ in 0..RESAMPLES {
        let mut acc = 0.0;
        for _ in 0..n {
            let idx = (next() % n as u64) as usize;
            acc += xs[idx];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (percentile_sorted(&means, q_lo), percentile_sorted(&means, q_hi))
}

/// Streaming mean / variance accumulator (Welford's algorithm). Used for the
/// DDPG state normalizer and engine-side running metrics.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`0.0` if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A five-number-ish summary used throughout the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub ci_lo: f64,
    pub ci_hi: f64,
}

impl Summary {
    /// Mean with a percentile-bootstrap `[5%, 95%]` CI, like the paper's
    /// tables.
    pub fn from_samples(xs: &[f64]) -> Self {
        let (ci_lo, ci_hi) = bootstrap_ci_mean(xs, 5.0, 95.0, 0xC0FFEE);
        Summary { mean: mean(xs), ci_lo, ci_hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic data set is sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // p95 of 1..=4 with linear interpolation: rank 2.85 -> 3.85.
        assert!((percentile(&xs, 95.0) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 95.0), 42.0);
    }

    #[test]
    fn bootstrap_ci_brackets_mean_and_is_deterministic() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5];
        let (lo1, hi1) = bootstrap_ci_mean(&xs, 5.0, 95.0, 7);
        let (lo2, hi2) = bootstrap_ci_mean(&xs, 5.0, 95.0, 7);
        assert_eq!((lo1, hi1), (lo2, hi2));
        assert!(lo1 <= mean(&xs));
        assert!(hi1 >= mean(&xs));
        assert!(lo1 >= 9.0 && hi1 <= 11.0);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [1.0, 2.0, 3.5, -1.0, 0.25];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 5);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone_in_q(mut xs in proptest::collection::vec(-100.0f64..100.0, 1..40),
                                       q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(percentile_sorted(&xs, qa) <= percentile_sorted(&xs, qb) + 1e-12);
        }

        #[test]
        fn percentile_within_range(xs in proptest::collection::vec(-100.0f64..100.0, 1..40),
                                   q in 0.0f64..100.0) {
            let p = percentile(&xs, q);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= lo - 1e-12 && p <= hi + 1e-12);
        }

        #[test]
        fn bootstrap_ci_contains_only_plausible_values(
            xs in proptest::collection::vec(0.0f64..10.0, 2..20), seed in 0u64..1000) {
            let (lo, hi) = bootstrap_ci_mean(&xs, 5.0, 95.0, seed);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
            prop_assert!(lo <= hi);
        }
    }
}

//! Blocked and parallel dense linear algebra for large surrogate models.
//!
//! [`Matrix::cholesky`] is a textbook scalar three-loop factorization —
//! perfect at the n ≤ 200 histories of a paper-scale tuning session,
//! hopeless at the n = 10k histories a long-lived tuning service
//! replays. This module adds a right-looking *blocked* factorization
//! ([`Matrix::cholesky_blocked`]) whose panel and trailing-update
//! steps stream cache-sized tiles and optionally fan out across scoped
//! worker threads, plus a column-parallel multi-RHS triangular solve
//! ([`Matrix::solve_lower_batch_par`]).
//!
//! # The determinism contract
//!
//! Every routine here is **bit-identical** to its scalar counterpart,
//! at every block size and every worker count. That is not an accident
//! of f64 but a design rule the implementations follow:
//!
//! * each output element's floating-point reduction chain visits terms
//!   in exactly the order the scalar loop does (`k` ascending, one
//!   accumulator, jitter folded in first), and intermediate stores to
//!   memory are lossless for `f64`;
//! * parallelism only ever partitions *independent* chains (rows of a
//!   panel or trailing update, columns of a multi-RHS solve) across
//!   threads — it never splits a single chain into per-thread partial
//!   sums.
//!
//! The GP surrogate's recorded suggestion streams are compared
//! bitwise across worker counts and across checkpoint/resume, so this
//! contract is load-bearing and pinned by tests below.

use crate::matrix::{CholeskyError, Matrix};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global default worker count for blocked kernels, installed
/// by whoever owns the thread budget (the runtime's campaign driver
/// sets it to its trial-worker count). Purely a performance hint:
/// results are bit-identical at any value.
static WORKER_BUDGET: AtomicUsize = AtomicUsize::new(1);

/// Installs the process-global worker budget for blocked kernels
/// (clamped to at least 1).
pub fn set_worker_budget(workers: usize) {
    WORKER_BUDGET.store(workers.max(1), Ordering::Relaxed);
}

/// The process-global worker budget for blocked kernels.
pub fn worker_budget() -> usize {
    WORKER_BUDGET.load(Ordering::Relaxed)
}

/// Shape of a blocked factorization: tile width and worker fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSchedule {
    /// Panel/tile width in columns. 64 keeps a tile pair comfortably
    /// in L1/L2 for f64.
    pub block: usize,
    /// Scoped worker threads for the panel and trailing updates. 1
    /// means fully sequential; any value yields identical bits.
    pub workers: usize,
}

impl Default for BlockSchedule {
    fn default() -> Self {
        BlockSchedule { block: 64, workers: 1 }
    }
}

impl BlockSchedule {
    /// A schedule that spends the process-global [`worker_budget`].
    pub fn auto() -> Self {
        BlockSchedule { block: 64, workers: worker_budget() }
    }
}

/// Applies `f(global_row_index, row)` to each row of `tail` (whose
/// first row has global index `row0`), contiguously chunked across up
/// to `workers` scoped threads. Each row is an independent reduction
/// chain, so the partitioning cannot affect results.
fn for_rows_parallel<F>(tail: &mut [f64], cols: usize, row0: usize, workers: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let rows = tail.len() / cols;
    let workers = workers.clamp(1, rows.max(1));
    if workers <= 1 {
        for (r, row) in tail.chunks_mut(cols).enumerate() {
            f(row0 + r, row);
        }
        return;
    }
    let per = rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, chunk) in tail.chunks_mut(per * cols).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (r, row) in chunk.chunks_mut(cols).enumerate() {
                    f(row0 + w * per + r, row);
                }
            });
        }
    });
}

impl Matrix {
    /// Blocked (and optionally parallel) Cholesky factorization:
    /// returns lower-triangular `L` with `self + jitter·I = L·Lᵀ`,
    /// **bit-identical** to [`Matrix::cholesky`] for every block size
    /// and worker count (see the module docs for why, and the tests
    /// for the pin).
    ///
    /// Per block column `[c0, c1)` the factorization runs three steps:
    /// factor the diagonal tile (scalar, tiny), forward-substitute the
    /// panel below it (row-parallel), then subtract the panel's outer
    /// product from the trailing submatrix (row-parallel, the O(n³)
    /// bulk). The panel is staged into a contiguous side buffer before
    /// the trailing update so worker threads only ever read shared
    /// finalized data while writing their own rows.
    ///
    /// # Errors
    /// [`CholeskyError`] with the same pivot index the scalar
    /// factorization would report, if the input is not (numerically)
    /// positive definite.
    ///
    /// # Panics
    /// Panics if `self` is not square.
    pub fn cholesky_blocked(
        &self,
        jitter: f64,
        sched: BlockSchedule,
    ) -> Result<Matrix, CholeskyError> {
        assert_eq!(self.rows(), self.cols(), "cholesky requires a square matrix");
        let n = self.rows();
        let block = sched.block.max(1);
        let workers = sched.workers.max(1);
        let mut l = Matrix::zeros(n, n);
        // Working copy: lower triangle only, jitter folded into the
        // diagonal up front — the scalar loop's accumulator also
        // starts from `A[i][i] + jitter` before any subtraction.
        for i in 0..n {
            let (dst, src) = (l.row_mut(i), self.row(i));
            dst[..=i].copy_from_slice(&src[..=i]);
            dst[i] += jitter;
        }
        let mut panel = Vec::new();
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + block).min(n);
            let bw = c1 - c0;
            // 1. Diagonal tile, scalar: earlier blocks already
            // subtracted their terms via trailing updates, so only
            // k ∈ [c0, j) remains of each entry's chain.
            for i in c0..c1 {
                for j in c0..=i {
                    let mut sum = l[(i, j)];
                    for k in c0..j {
                        sum -= l[(i, k)] * l[(j, k)];
                    }
                    if i == j {
                        if sum <= 0.0 || !sum.is_finite() {
                            return Err(CholeskyError { pivot: i });
                        }
                        l[(i, j)] = sum.sqrt();
                    } else {
                        l[(i, j)] = sum / l[(j, j)];
                    }
                }
            }
            if c1 == n {
                break;
            }
            // 2. Panel: rows below the tile, columns of the tile.
            // Workers write their own rows and read the finalized tile
            // rows through a shared borrow.
            let (head, tail) = l.data_split_at_mut(c1 * n);
            let head: &[f64] = head;
            for_rows_parallel(tail, n, c1, workers, |_, row| {
                for j in c0..c1 {
                    let lj = &head[j * n..j * n + j + 1];
                    let mut sum = row[j];
                    for k in c0..j {
                        sum -= row[k] * lj[k];
                    }
                    row[j] = sum / lj[j];
                }
            });
            // 3. Stage the finished panel contiguously, then subtract
            // its outer product from the trailing rows. Each trailing
            // entry subtracts its `bw` terms k-ascending into a single
            // accumulator — the same chain order as the scalar loop.
            let rows_below = n - c1;
            panel.clear();
            panel.reserve(rows_below * bw);
            {
                let (_, tail) = l.data_split_at_mut(c1 * n);
                for r in 0..rows_below {
                    panel.extend_from_slice(&tail[r * n + c0..r * n + c1]);
                }
            }
            let panel_ref: &[f64] = &panel;
            let (_, tail) = l.data_split_at_mut(c1 * n);
            for_rows_parallel(tail, n, c1, workers, |i, row| {
                let pi = &panel_ref[(i - c1) * bw..(i - c1) * bw + bw];
                for j in c1..=i {
                    let pj = &panel_ref[(j - c1) * bw..(j - c1) * bw + bw];
                    let mut sum = row[j];
                    for (a, b) in pi.iter().zip(pj) {
                        sum -= a * b;
                    }
                    row[j] = sum;
                }
            });
            c0 = c1;
        }
        Ok(l)
    }

    /// Column-parallel variant of [`Matrix::solve_lower_batch`]:
    /// solves `L · X = B` for many right-hand sides, contiguous column
    /// chunks fanned out across up to `workers` scoped threads. Every
    /// column is an independent forward substitution with the exact
    /// arithmetic order of [`Matrix::solve_lower`], so the result is
    /// bit-identical to the sequential batch solve at any worker
    /// count.
    ///
    /// # Panics
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn solve_lower_batch_par(&self, b: &Matrix, workers: usize) -> Matrix {
        let (n, m) = (self.rows(), b.cols());
        assert_eq!(self.rows(), self.cols());
        assert_eq!(b.rows(), n, "RHS row count must match the factor dimension");
        let workers = workers.clamp(1, m.max(1));
        if workers <= 1 || m <= 1 {
            return self.solve_lower_batch(b);
        }
        let per = m.div_ceil(workers);
        let chunks: Vec<Matrix> = {
            let starts: Vec<usize> = (0..workers).map(|w| w * per).filter(|&s| s < m).collect();
            let solve_chunk = |a: usize| {
                let w = (a + per).min(m) - a;
                let mut sub = Matrix::zeros(n, w);
                for i in 0..n {
                    let (dst, src) = (sub.row_mut(i), &b.row(i)[a..a + w]);
                    dst.copy_from_slice(src);
                }
                self.solve_lower_batch(&sub)
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> =
                    starts.iter().map(|&a| scope.spawn(move || solve_chunk(a))).collect();
                handles.into_iter().map(|h| h.join().expect("solver thread panicked")).collect()
            })
        };
        let mut x = Matrix::zeros(n, m);
        for (w, sub) in chunks.iter().enumerate() {
            let a = w * per;
            for i in 0..n {
                x.row_mut(i)[a..a + sub.cols()].copy_from_slice(sub.row(i));
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Random SPD matrix (B·Bᵀ + n·I) of size n.
    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.random_range(-2.0..2.0)).collect());
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        a
    }

    #[test]
    fn blocked_matches_scalar_bitwise_across_blocks_and_workers() {
        // The whole point of the module: every (size, block, workers)
        // combination reproduces the scalar factor to the last bit.
        for (n, seed) in [(1usize, 0u64), (5, 1), (12, 2), (33, 3), (64, 4), (97, 5)] {
            let a = random_spd(n, seed);
            let reference = a.cholesky(1e-8).unwrap();
            for block in [1usize, 7, 16, 64, 128] {
                for workers in [1usize, 2, 4] {
                    let l = a.cholesky_blocked(1e-8, BlockSchedule { block, workers }).unwrap();
                    for i in 0..n {
                        for j in 0..n {
                            assert_eq!(
                                l[(i, j)].to_bits(),
                                reference[(i, j)].to_bits(),
                                "entry ({i},{j}) diverged at n={n} block={block} \
                                 workers={workers}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_reports_the_same_failure_pivot_as_scalar() {
        // Indefinite input: both paths must reject at the same pivot.
        let mut a = random_spd(20, 9);
        a[(13, 13)] = -50.0; // poison one diagonal entry
        let scalar = a.cholesky(0.0).unwrap_err();
        for block in [4usize, 8, 64] {
            for workers in [1usize, 3] {
                let blocked =
                    a.cholesky_blocked(0.0, BlockSchedule { block, workers }).unwrap_err();
                assert_eq!(blocked.pivot, scalar.pivot, "block={block} workers={workers}");
            }
        }
    }

    #[test]
    fn batch_solve_par_matches_sequential_bitwise() {
        let a = random_spd(31, 7);
        let l = a.cholesky(1e-8).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let m = 13;
        let b = Matrix::from_vec(31, m, (0..31 * m).map(|_| rng.random_range(-5.0..5.0)).collect());
        let reference = l.solve_lower_batch(&b);
        for workers in [1usize, 2, 4, 16] {
            let x = l.solve_lower_batch_par(&b, workers);
            for i in 0..31 {
                for j in 0..m {
                    assert_eq!(
                        x[(i, j)].to_bits(),
                        reference[(i, j)].to_bits(),
                        "entry ({i},{j}) diverged at workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn worker_budget_roundtrips_and_clamps() {
        let before = worker_budget();
        set_worker_budget(6);
        assert_eq!(worker_budget(), 6);
        assert_eq!(BlockSchedule::auto().workers, 6);
        set_worker_budget(0);
        assert_eq!(worker_budget(), 1, "budget clamps to at least one worker");
        set_worker_budget(before);
    }
}

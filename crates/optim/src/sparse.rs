//! The scalable GP surrogate: a subset-of-regressors / DTC
//! inducing-point approximation plus the history-subsampling policy
//! that bounds hyperparameter-refit cost.
//!
//! The exact GP in [`crate::gp`] costs O(n²) per incremental observe
//! and O(n³) per MLE refit — fine for the paper's 100-trial sessions,
//! fatal for a long-lived tuning service replaying fleet histories
//! with n in the thousands. This module trades a controlled amount of
//! posterior fidelity for cost that is bounded in `n`:
//!
//! * **Inducing points.** m ≪ n observations (farthest-point selected,
//!   seeded at the incumbent) act as regressors Z. With
//!   `G = σ²·K_mm + K_mn·K_nm`, the subset-of-regressors posterior
//!   mean is `k_*mᵀ G⁻¹ K_mn y` and the DTC variance
//!   `k_** − k_*mᵀ K_mm⁻¹ k_*m + σ²·k_*mᵀ G⁻¹ k_*m` (Quiñonero-
//!   Candela & Rasmussen 2005). Everything the model needs between
//!   refits — `A = K_mn·K_nm`, `b = K_mn y`, `s = K_mn 1` — updates
//!   rank-1 per observation in O(m·d + m²), so observe cost no longer
//!   grows with n at all. Target standardization folds in analytically
//!   (`K_mn y_std = (b − μ·s)/σ_y`), so re-standardizing is O(m).
//! * **Refit subsampling.** Hyperparameter MLE runs on a bounded
//!   subsample of the history — incumbents (the model must stay sharp
//!   near the optimum), a recency tail (the region the optimizer is
//!   currently probing), and a strided diversity fill — so each refit
//!   is O(cap³) instead of O(n³).
//!
//! When n ≤ m every observation is an inducing point and subset-of-
//! regressors degenerates to the exact GP posterior mean, which is
//! what keeps the sparse path regret-competitive on paper-scale
//! sessions (pinned by the parity test and the
//! `optimizer_hot_path` bench).
//!
//! Determinism: selection, subsampling, and the chunked parallel build
//! below are pure functions of the history (fixed chunk width, ordered
//! reduction), so suggestion streams are bit-identical across worker
//! counts and across checkpoint/resume replay.

use llamatune_math::Matrix;

/// Configuration of the sparse surrogate path
/// ([`crate::GpConfig::sparse`]).
#[derive(Debug, Clone)]
pub struct SparseGpConfig {
    /// Maximum number of inducing points m. Observe cost is
    /// O(m·d + m²) and suggest cost O(m²·candidates); 64 keeps both
    /// comfortably under the service budget while matching the exact
    /// GP on paper-scale histories.
    pub max_inducing: usize,
    /// History cap for each MLE hyperparameter refit (incumbents +
    /// recency + diversity, see [`subsample_indices`]).
    pub refit_subsample: usize,
    /// Refit when the history has grown by this factor since the last
    /// refit (geometric schedule; the gap never shrinks below the
    /// exact path's `refit_every`). Bounds total refit work over a
    /// whole campaign to O(log n) refits.
    pub refit_growth: f64,
    /// Best-scoring observations always kept in the refit subsample.
    pub retain_incumbents: usize,
    /// Newest observations always kept in the refit subsample.
    pub retain_recent: usize,
}

impl Default for SparseGpConfig {
    fn default() -> Self {
        SparseGpConfig {
            max_inducing: 64,
            refit_subsample: 128,
            refit_growth: 1.25,
            retain_incumbents: 8,
            retain_recent: 32,
        }
    }
}

/// The refit-subsampling policy: which observation indices participate
/// in an MLE hyperparameter search capped at `cap` points.
///
/// Deterministic composition (duplicates collapse, output sorted):
/// the `retain_incumbents` best scores (ties broken by lower index),
/// the `retain_recent` newest observations, and an evenly strided
/// diversity sample over the rest until `cap` is reached. Returns all
/// indices when the history fits the cap.
pub fn subsample_indices(
    ys: &[f64],
    cap: usize,
    retain_incumbents: usize,
    retain_recent: usize,
) -> Vec<usize> {
    let n = ys.len();
    let cap = cap.max(2);
    if n <= cap {
        return (0..n).collect();
    }
    let mut picked = vec![false; n];
    let mut remaining = cap;
    // Incumbents: stable sort by (-y, index) keeps ties deterministic.
    let mut by_score: Vec<usize> = (0..n).collect();
    by_score.sort_by(|&a, &b| ys[b].partial_cmp(&ys[a]).unwrap_or(std::cmp::Ordering::Equal));
    for &i in by_score.iter().take(retain_incumbents.min(remaining)) {
        picked[i] = true;
    }
    remaining = cap - picked.iter().filter(|&&p| p).count();
    // Recency tail.
    for i in (0..n).rev().take(retain_recent) {
        if remaining == 0 {
            break;
        }
        if !picked[i] {
            picked[i] = true;
            remaining -= 1;
        }
    }
    // Diversity: evenly strided over the still-unpicked indices.
    if remaining > 0 {
        let pool: Vec<usize> = (0..n).filter(|&i| !picked[i]).collect();
        let take = remaining.min(pool.len());
        for t in 0..take {
            // Even stride over the pool, first and last included.
            let pos = if take == 1 { 0 } else { t * (pool.len() - 1) / (take - 1) };
            picked[pool[pos]] = true;
        }
    }
    (0..n).filter(|&i| picked[i]).collect()
}

/// Farthest-point inducing selection: the incumbent first, then
/// greedily the observation farthest (unit-space Euclidean) from the
/// chosen set, ties broken by lower index. Returns at most `m` sorted
/// indices. O(n·m·d), run only at refit boundaries.
pub fn select_inducing(xs: &[Vec<f64>], ys: &[f64], m: usize) -> Vec<usize> {
    let n = xs.len();
    let m = m.min(n);
    if m == 0 {
        return Vec::new();
    }
    let mut best = 0usize;
    for (i, y) in ys.iter().enumerate() {
        if *y > ys[best] {
            best = i;
        }
    }
    let dist2 = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum::<f64>()
    };
    let mut chosen = Vec::with_capacity(m);
    chosen.push(best);
    // min squared distance of every point to the chosen set.
    let mut min_d2: Vec<f64> = xs.iter().map(|x| dist2(x, &xs[best])).collect();
    while chosen.len() < m {
        let mut far = 0usize;
        for (i, d) in min_d2.iter().enumerate() {
            if *d > min_d2[far] {
                far = i;
            }
        }
        chosen.push(far);
        for (i, d) in min_d2.iter_mut().enumerate() {
            let nd = dist2(&xs[i], &xs[far]);
            if nd < *d {
                *d = nd;
            }
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

/// The sparse surrogate's mutable state between hyperparameter refits:
/// the inducing set and factors that are fixed until the next refit,
/// and the rank-1-updatable data accumulators.
#[derive(Clone)]
pub(crate) struct SparseModel {
    /// Inducing inputs Z (copies; m is small).
    pub z: Vec<Vec<f64>>,
    /// K_mm (with the factorization jitter on its diagonal).
    kmm: Matrix,
    /// chol(K_mm), for the DTC variance term.
    lk: Matrix,
    /// Data term A = K_mn·K_nm, rank-1 updated per observation.
    a: Matrix,
    /// b = K_mn·y (raw targets).
    b_raw: Vec<f64>,
    /// s = K_mn·1 (per-inducing kernel row sums over observations).
    s: Vec<f64>,
    /// chol(σ²·K_mm + A); rebuilt by [`SparseModel::refresh`].
    lg: Matrix,
    /// G⁻¹·K_mn·y_std, the posterior-mean weights.
    alpha: Vec<f64>,
    /// Accumulators have advanced past the factor; `refresh` before
    /// predicting. Purely lazy — the refreshed values are a function
    /// of the accumulators alone, so timing cannot affect results.
    stale: bool,
    /// History length at the last refit (drives the growth schedule).
    pub last_refit_n: usize,
}

/// Rows per parallel build chunk. Fixed (never derived from the worker
/// count) so the ordered partial-sum reduction is bit-identical at any
/// parallelism.
const BUILD_CHUNK: usize = 512;

/// Jitter ladder for the G factorization: ill-conditioned data terms
/// get progressively heavier regularization instead of an abort.
const G_JITTERS: [f64; 4] = [1e-8, 1e-6, 1e-4, 1e-2];

impl SparseModel {
    /// Builds the model from scratch over the full history: selects
    /// nothing (the caller chose `z`), computes K_mm and streams the
    /// O(n·m²) data term in fixed-width chunks fanned out across
    /// `workers` threads, partial sums reduced in chunk order.
    /// Returns `None` if K_mm cannot be factored even with the jitter
    /// ladder.
    pub fn build(
        kernel: &(dyn Fn(&[f64], &[f64]) -> f64 + Sync),
        xs: &[Vec<f64>],
        ys: &[f64],
        z_idx: &[usize],
        workers: usize,
    ) -> Option<SparseModel> {
        let m = z_idx.len();
        let z: Vec<Vec<f64>> = z_idx.iter().map(|&i| xs[i].clone()).collect();
        let kmm = Matrix::from_symmetric_fn(m, |i, j| kernel(&z[i], &z[j]));
        let lk = G_JITTERS.iter().find_map(|&j| kmm.cholesky(j).ok())?;

        // One (A, b, s) partial per fixed-width chunk of observations.
        struct Partial {
            a: Matrix,
            b: Vec<f64>,
            s: Vec<f64>,
        }
        let chunk_of = |range: std::ops::Range<usize>| -> Partial {
            let mut p = Partial { a: Matrix::zeros(m, m), b: vec![0.0; m], s: vec![0.0; m] };
            let mut k = vec![0.0; m];
            for i in range {
                for (kj, zj) in k.iter_mut().zip(&z) {
                    *kj = kernel(&xs[i], zj);
                }
                for r in 0..m {
                    let kr = k[r];
                    let row = p.a.row_mut(r);
                    for (dst, kc) in row[..=r].iter_mut().zip(&k) {
                        *dst += kr * kc;
                    }
                }
                for ((b, s), kv) in p.b.iter_mut().zip(p.s.iter_mut()).zip(&k) {
                    *b += kv * ys[i];
                    *s += kv;
                }
            }
            p
        };
        let n = xs.len();
        let ranges: Vec<std::ops::Range<usize>> =
            (0..n).step_by(BUILD_CHUNK).map(|a| a..(a + BUILD_CHUNK).min(n)).collect();
        let workers = workers.clamp(1, ranges.len().max(1));
        let partials: Vec<Partial> = if workers <= 1 {
            ranges.into_iter().map(chunk_of).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        let chunk_of = &chunk_of;
                        scope.spawn(move || chunk_of(r))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("build chunk panicked")).collect()
            })
        };
        // Ordered reduction: chunk 0, then 1, ... — identical chains
        // for every worker count.
        let mut a = Matrix::zeros(m, m);
        let mut b_raw = vec![0.0; m];
        let mut s = vec![0.0; m];
        for p in &partials {
            for r in 0..m {
                let (dst, src) = (a.row_mut(r), p.a.row(r));
                for (d, v) in dst[..=r].iter_mut().zip(&src[..=r]) {
                    *d += v;
                }
            }
            for ((db, ds), (sb, ss)) in b_raw.iter_mut().zip(s.iter_mut()).zip(p.b.iter().zip(&p.s))
            {
                *db += sb;
                *ds += ss;
            }
        }
        // Mirror the lower triangle.
        for r in 0..m {
            for c in 0..r {
                a[(c, r)] = a[(r, c)];
            }
        }
        Some(SparseModel {
            z,
            kmm,
            lk,
            a,
            b_raw,
            s,
            lg: Matrix::zeros(0, 0),
            alpha: Vec::new(),
            stale: true,
            last_refit_n: n,
        })
    }

    /// Number of inducing points.
    pub fn inducing(&self) -> usize {
        self.z.len()
    }

    /// Whether the model has ever produced a usable posterior (a
    /// successful [`SparseModel::refresh`]). When `false` the caller
    /// serves the prior instead.
    pub fn ready(&self) -> bool {
        !self.alpha.is_empty()
    }

    /// Folds one new observation into the data accumulators:
    /// O(m·d + m²). The factor goes stale; it is rebuilt lazily by
    /// [`SparseModel::refresh`] before the next prediction.
    pub fn append(&mut self, kernel: &(dyn Fn(&[f64], &[f64]) -> f64 + Sync), x: &[f64], y: f64) {
        let m = self.z.len();
        let k: Vec<f64> = self.z.iter().map(|zj| kernel(x, zj)).collect();
        for r in 0..m {
            let kr = k[r];
            let row = self.a.row_mut(r);
            for (dst, kc) in row.iter_mut().zip(&k) {
                *dst += kr * kc;
            }
        }
        for ((b, s), kv) in self.b_raw.iter_mut().zip(self.s.iter_mut()).zip(&k) {
            *b += kv * y;
            *s += kv;
        }
        self.stale = true;
    }

    /// Rebuilds the G factor and posterior weights from the current
    /// accumulators and target standardization: O(m³). Returns `false`
    /// (leaving the previous factor in place) if G resists the whole
    /// jitter ladder; the caller counts that and keeps serving the
    /// stale-but-valid posterior.
    pub fn refresh(&mut self, noise_var: f64, y_mean: f64, y_std: f64) -> bool {
        if !self.stale && !self.alpha.is_empty() {
            return true;
        }
        let m = self.z.len();
        let mut g = Matrix::zeros(m, m);
        for r in 0..m {
            let (dst, (ar, kr)) = (g.row_mut(r), (self.a.row(r), self.kmm.row(r)));
            for ((d, a), k) in dst.iter_mut().zip(ar).zip(kr) {
                *d = noise_var * k + a;
            }
        }
        let Some(lg) = G_JITTERS.iter().find_map(|&j| g.cholesky(j).ok()) else {
            return false;
        };
        let b_std: Vec<f64> =
            self.b_raw.iter().zip(&self.s).map(|(b, s)| (b - y_mean * s) / y_std).collect();
        self.alpha = lg.cholesky_solve(&b_std);
        self.lg = lg;
        self.stale = false;
        true
    }

    /// Posterior mean and variance (standardized units) for a batch of
    /// candidates, via two column-blocked triangular solves against the
    /// m×m factors. `kss` is the prior variance at a point (signal +
    /// noise, matching the exact path) and `noise_var` scales the DTC
    /// G-term. Requires a fresh factor ([`SparseModel::refresh`]).
    pub fn predict_batch(
        &self,
        kernel: &(dyn Fn(&[f64], &[f64]) -> f64 + Sync),
        candidates: &[Vec<f64>],
        kss: f64,
        noise_var: f64,
        workers: usize,
    ) -> Vec<(f64, f64)> {
        debug_assert!(!self.alpha.is_empty(), "predict_batch requires a refreshed factor");
        let (m, q) = (self.z.len(), candidates.len());
        let mut kzc = Matrix::zeros(m, q);
        for (j, x) in candidates.iter().enumerate() {
            for (i, zi) in self.z.iter().enumerate() {
                kzc[(i, j)] = kernel(x, zi);
            }
        }
        let vk = self.lk.solve_lower_batch_par(&kzc, workers);
        let vg = self.lg.solve_lower_batch_par(&kzc, workers);
        (0..q)
            .map(|j| {
                let mean: f64 = (0..m).map(|i| kzc[(i, j)] * self.alpha[i]).sum();
                let qff: f64 = (0..m).map(|i| vk[(i, j)] * vk[(i, j)]).sum();
                let gff: f64 = (0..m).map(|i| vg[(i, j)] * vg[(i, j)]).sum();
                let var = (kss - qff + noise_var * gff).max(1e-12);
                (mean, var)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_returns_everything_under_the_cap() {
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(subsample_indices(&ys, 16, 4, 4), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn subsample_keeps_incumbents_and_recent_and_is_deterministic() {
        // Best scores sit early in a 100-long history; the tail is
        // mediocre. Both must survive subsampling.
        let ys: Vec<f64> =
            (0..100).map(|i| if i < 5 { 100.0 + i as f64 } else { -(i as f64) }).collect();
        let idx = subsample_indices(&ys, 20, 5, 8);
        assert_eq!(idx.len(), 20);
        for incumbent in 0..5 {
            assert!(idx.contains(&incumbent), "incumbent {incumbent} dropped");
        }
        for recent in 92..100 {
            assert!(idx.contains(&recent), "recent {recent} dropped");
        }
        assert_eq!(idx, subsample_indices(&ys, 20, 5, 8), "must be deterministic");
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, idx, "sorted and duplicate-free");
    }

    #[test]
    fn subsample_diversity_fill_spans_the_middle() {
        let ys: Vec<f64> = vec![0.0; 1000];
        let idx = subsample_indices(&ys, 50, 4, 4);
        assert_eq!(idx.len(), 50);
        // The strided fill must reach deep into the middle of the
        // history, not cluster at the ends.
        assert!(idx.iter().any(|&i| (300..700).contains(&i)));
    }

    #[test]
    fn inducing_selection_starts_at_the_incumbent_and_spreads() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0, 0.5]).collect();
        let mut ys = vec![0.0; 50];
        ys[20] = 10.0; // incumbent in the middle
        let idx = select_inducing(&xs, &ys, 5);
        assert!(idx.contains(&20), "incumbent must be an inducing point");
        assert_eq!(idx.len(), 5);
        // Farthest-point must cover both extremes of the line.
        assert!(idx.contains(&0) && idx.contains(&49), "{idx:?}");
        assert_eq!(idx, select_inducing(&xs, &ys, 5), "deterministic");
    }

    #[test]
    fn inducing_selection_caps_at_history_size() {
        let xs: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64]).collect();
        let ys = vec![0.0, 1.0, 2.0];
        assert_eq!(select_inducing(&xs, &ys, 10), vec![0, 1, 2]);
    }

    /// With Z = X (every observation inducing), the SoR mean at an
    /// observed point reproduces the exact GP posterior mean.
    #[test]
    fn degenerate_model_matches_the_exact_gp_mean() {
        let kernel = |a: &[f64], b: &[f64]| -> f64 {
            let d2: f64 = a.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum();
            (-d2 / 0.32).exp()
        };
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
        let noise = 1e-3;
        let z: Vec<usize> = (0..12).collect();
        let mut model = SparseModel::build(&kernel, &xs, &ys, &z, 1).unwrap();
        assert!(model.refresh(noise, 0.0, 1.0));
        let preds = model.predict_batch(&kernel, &xs, 1.0 + noise, noise, 1);

        // Exact GP: alpha = (K + noise I)^-1 y.
        let k = Matrix::from_symmetric_fn(12, |i, j| {
            kernel(&xs[i], &xs[j]) + if i == j { noise } else { 0.0 }
        });
        let l = k.cholesky(1e-8).unwrap();
        let alpha = l.cholesky_solve(&ys);
        for (i, (mean, var)) in preds.iter().enumerate() {
            let exact: f64 = xs.iter().zip(&alpha).map(|(xj, a)| kernel(&xs[i], xj) * a).sum();
            assert!((mean - exact).abs() < 1e-4, "point {i}: sparse mean {mean} vs exact {exact}");
            assert!(*var > 0.0 && *var < 0.1, "observed point should be confident: {var}");
        }
    }

    /// Incremental appends land on the same accumulators as a from-
    /// scratch build (up to the ordered-chunk reduction), and the
    /// chunked build itself is worker-count invariant bitwise.
    #[test]
    fn build_is_worker_count_invariant_bitwise() {
        let kernel = |a: &[f64], b: &[f64]| -> f64 {
            let d2: f64 = a.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum();
            (-d2).exp()
        };
        let xs: Vec<Vec<f64>> =
            (0..700).map(|i| vec![(i as f64 * 0.37).fract(), (i as f64 * 0.71).fract()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - x[1]).collect();
        let z = select_inducing(&xs, &ys, 16);
        let reference = SparseModel::build(&kernel, &xs, &ys, &z, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let model = SparseModel::build(&kernel, &xs, &ys, &z, workers).unwrap();
            for r in 0..reference.a.rows() {
                for c in 0..reference.a.cols() {
                    assert_eq!(
                        model.a[(r, c)].to_bits(),
                        reference.a[(r, c)].to_bits(),
                        "A[{r}][{c}] diverged at workers={workers}"
                    );
                }
            }
            for i in 0..reference.b_raw.len() {
                assert_eq!(model.b_raw[i].to_bits(), reference.b_raw[i].to_bits());
                assert_eq!(model.s[i].to_bits(), reference.s[i].to_bits());
            }
        }
    }
}

//! Graceful degradation for model-driven optimizers.
//!
//! GP-BO and SMAC fail numerically in ways random search cannot: a
//! near-singular kernel matrix makes the Cholesky factorization non-PD,
//! an Expected-Improvement computation underflows to NaN, a forest
//! score goes infinite on a degenerate split. Unguarded, any of these
//! either panics the session or poisons it with NaN suggestions that
//! crash the decode path. [`GuardedOptimizer`] wraps any [`Optimizer`]
//! and turns both failure shapes — a panic inside the optimizer, or a
//! suggestion that is not a finite point of the unit hypercube — into a
//! *degradation*: the round's suggestions come from a seeded
//! [`RandomSearch`] instead, the inner optimizer is rebuilt from its
//! factory and replayed with every real observation seen so far (the
//! same rebuild-and-replay contract the resume path uses), and a
//! structured [`DegradationEvent`] is recorded for the session history.
//!
//! The fallback RNG advances only when a degradation actually fires, so
//! a healthy optimizer's trajectory is byte-identical with or without
//! the guard.

use crate::spec::{Observation, Optimizer, RandomSearch, SearchSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One recovery from an optimizer failure, as recorded in the session
/// history (`SessionHistory::degradations` in the core crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Session iteration of the first trial of the degraded round
    /// (stamped by the session loop; 0 until stamped).
    pub iteration: usize,
    /// Name of the optimizer that failed.
    pub optimizer: String,
    /// What failed — e.g. `"panic in suggest"` or
    /// `"non-finite or out-of-bounds suggestion"`.
    pub reason: String,
}

/// Builds a fresh inner optimizer, for rebuild-and-replay recovery.
pub type GuardFactory = Box<dyn Fn() -> Box<dyn Optimizer> + Send>;

/// An [`Optimizer`] wrapper that isolates panics and numerical failures
/// of its inner optimizer; see the module docs.
pub struct GuardedOptimizer {
    factory: GuardFactory,
    inner: Box<dyn Optimizer>,
    fallback: RandomSearch,
    spec: SearchSpec,
    /// Every real observation fed through the guard, for replay into a
    /// rebuilt inner optimizer.
    seen: Vec<Observation>,
    events: Vec<DegradationEvent>,
}

impl std::fmt::Debug for GuardedOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedOptimizer")
            .field("inner", &self.inner.name())
            .field("seen", &self.seen.len())
            .field("events", &self.events.len())
            .finish()
    }
}

impl GuardedOptimizer {
    /// Wraps `factory()`'s optimizer over `spec`; `seed` drives the
    /// random-search fallback (advanced only on degradation).
    pub fn new(factory: GuardFactory, spec: SearchSpec, seed: u64) -> GuardedOptimizer {
        let inner = factory();
        GuardedOptimizer {
            factory,
            inner,
            fallback: RandomSearch::new(spec.clone(), seed ^ 0xDE64_ADE0),
            spec,
            seen: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Whether `x` is a finite point of the unit hypercube with the
    /// space's arity.
    fn valid(&self, x: &[f64]) -> bool {
        x.len() == self.spec.len() && x.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v))
    }

    /// Records a degradation and rebuilds the inner optimizer from the
    /// factory, replaying every real observation. If the replay itself
    /// fails, the fresh (empty) optimizer is kept — random-search
    /// fallback keeps the session moving either way.
    fn degrade(&mut self, reason: &str) {
        self.events.push(DegradationEvent {
            iteration: 0,
            optimizer: self.inner.name().to_string(),
            reason: reason.to_string(),
        });
        let mut fresh = (self.factory)();
        let replay = self.seen.clone();
        let replayed = catch_unwind(AssertUnwindSafe(|| {
            fresh.observe_batch(replay);
            fresh
        }));
        self.inner = match replayed {
            Ok(fresh) => fresh,
            Err(_) => (self.factory)(),
        };
    }

    fn guarded_suggest_batch(&mut self, q: usize) -> Vec<Vec<f64>> {
        let attempt = catch_unwind(AssertUnwindSafe(|| self.inner.suggest_batch(q)));
        match attempt {
            Ok(points) if points.len() == q && points.iter().all(|x| self.valid(x)) => points,
            Ok(_) => {
                self.degrade("non-finite or out-of-bounds suggestion");
                (0..q).map(|_| self.fallback.suggest()).collect()
            }
            Err(_) => {
                self.degrade("panic in suggest");
                (0..q).map(|_| self.fallback.suggest()).collect()
            }
        }
    }
}

impl Optimizer for GuardedOptimizer {
    fn suggest(&mut self) -> Vec<f64> {
        self.guarded_suggest_batch(1).pop().expect("q=1 yields one point")
    }

    fn suggest_batch(&mut self, q: usize) -> Vec<Vec<f64>> {
        self.guarded_suggest_batch(q)
    }

    fn observe(&mut self, obs: Observation) {
        self.observe_batch(vec![obs]);
    }

    fn observe_batch(&mut self, obs: Vec<Observation>) {
        self.seen.extend(obs.iter().cloned());
        let attempt = catch_unwind(AssertUnwindSafe(|| self.inner.observe_batch(obs)));
        if attempt.is_err() {
            // `seen` already holds the batch, so the rebuild replays it.
            self.degrade("panic in observe");
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn drain_degradations(&mut self) -> Vec<DegradationEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OptimizerKind;

    /// Misbehaves on a script: panics or emits NaN at chosen calls.
    struct Flaky {
        rng_points: RandomSearch,
        calls: usize,
        panic_on: Vec<usize>,
        nan_on: Vec<usize>,
        observed: usize,
        panic_on_observe: Option<usize>,
    }

    impl Flaky {
        fn new(spec: SearchSpec) -> Flaky {
            Flaky {
                rng_points: RandomSearch::new(spec, 99),
                calls: 0,
                panic_on: Vec::new(),
                nan_on: Vec::new(),
                observed: 0,
                panic_on_observe: None,
            }
        }
    }

    impl Optimizer for Flaky {
        fn suggest(&mut self) -> Vec<f64> {
            let call = self.calls;
            self.calls += 1;
            if self.panic_on.contains(&call) {
                panic!("injected non-PD Cholesky");
            }
            if self.nan_on.contains(&call) {
                return vec![f64::NAN; 2];
            }
            self.rng_points.suggest()
        }

        fn observe(&mut self, _obs: Observation) {
            self.observed += 1;
            if Some(self.observed) == self.panic_on_observe {
                panic!("injected observe failure");
            }
        }

        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    fn spec2() -> SearchSpec {
        SearchSpec::continuous(2)
    }

    fn obs(t: f64) -> Observation {
        Observation { x: vec![t, 1.0 - t], y: t, metrics: vec![] }
    }

    #[test]
    fn healthy_optimizer_is_untouched_by_the_guard() {
        let mut guarded =
            GuardedOptimizer::new(Box::new(|| OptimizerKind::Smac.build(&spec2(), 7)), spec2(), 7);
        let mut plain = OptimizerKind::Smac.build(&spec2(), 7);
        for i in 0..6 {
            let a = guarded.suggest();
            let b = plain.suggest();
            assert_eq!(a, b, "guard must be transparent on the healthy path");
            guarded.observe(obs(i as f64 / 6.0));
            plain.observe(obs(i as f64 / 6.0));
        }
        assert!(guarded.drain_degradations().is_empty());
    }

    #[test]
    fn panic_in_suggest_degrades_to_random_and_records_an_event() {
        let mut g = GuardedOptimizer::new(
            Box::new(|| {
                let mut f = Flaky::new(spec2());
                f.panic_on = vec![0];
                Box::new(f)
            }),
            spec2(),
            3,
        );
        let x = g.suggest();
        assert_eq!(x.len(), 2);
        assert!(x.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        let events = g.drain_degradations();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].optimizer, "flaky");
        assert!(events[0].reason.contains("panic"));
        assert!(g.drain_degradations().is_empty(), "drain takes the events");
        // The rebuilt inner (fresh Flaky, panics again on ITS call 0)
        // degrades again — the guard never lets a panic escape.
        let y = g.suggest();
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nan_suggestions_are_replaced_not_propagated() {
        let mut g = GuardedOptimizer::new(
            Box::new(|| {
                let mut f = Flaky::new(spec2());
                f.nan_on = vec![0];
                Box::new(f)
            }),
            spec2(),
            5,
        );
        let batch = g.suggest_batch(3);
        assert_eq!(batch.len(), 3);
        for x in &batch {
            assert!(x.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        }
        let events = g.drain_degradations();
        assert_eq!(events.len(), 1);
        assert!(events[0].reason.contains("out-of-bounds") || events[0].reason.contains("finite"));
    }

    #[test]
    fn degradation_is_deterministic() {
        let run = || {
            let mut g = GuardedOptimizer::new(
                Box::new(|| {
                    let mut f = Flaky::new(spec2());
                    f.nan_on = vec![2];
                    Box::new(f)
                }),
                spec2(),
                11,
            );
            let mut out = Vec::new();
            for i in 0..6 {
                out.push(g.suggest());
                g.observe(obs(i as f64 / 7.0));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rebuild_replays_observations_into_the_fresh_inner() {
        // After a degradation, the rebuilt inner must hold the full
        // observation history: a SMAC rebuilt with 6 observations
        // suggests what a fresh SMAC fed the same 6 would.
        let mut g = GuardedOptimizer::new(
            Box::new(|| OptimizerKind::Smac.build(&spec2(), 13)),
            spec2(),
            13,
        );
        let history: Vec<Observation> = (0..6).map(|i| obs(i as f64 / 6.0)).collect();
        g.observe_batch(history.clone());
        g.degrade("test-forced");
        let mut replayed = OptimizerKind::Smac.build(&spec2(), 13);
        replayed.observe_batch(history);
        assert_eq!(g.suggest(), replayed.suggest());
        assert_eq!(g.drain_degradations().len(), 1);
    }

    #[test]
    fn panic_in_observe_is_contained() {
        let mut g = GuardedOptimizer::new(
            Box::new(|| {
                let mut f = Flaky::new(spec2());
                f.panic_on_observe = Some(3);
                Box::new(f)
            }),
            spec2(),
            17,
        );
        for i in 0..5 {
            g.observe(obs(i as f64 / 5.0));
        }
        // Observation 3 panicked; the rebuilt inner replays all 1..=3
        // then panics again at its own 3rd — degradations accrue but
        // nothing escapes, and suggesting still works.
        assert!(!g.drain_degradations().is_empty());
        assert_eq!(g.suggest().len(), 2);
    }
}

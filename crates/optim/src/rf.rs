//! Regression random forest: the SMAC surrogate model.
//!
//! CART-style trees with bootstrap sampling, random feature subsets, and
//! randomized threshold candidates (variance-reduction criterion).
//! Categorical dimensions split on *choice equality* — the property that
//! makes random forests handle heterogeneous DBMS knob spaces better than
//! vanilla GPs (Section 2.2). Node structure and per-node sample counts are
//! public so `llamatune-analysis` can run TreeSHAP over fitted forests.

use crate::spec::{ParamKind, SearchSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Split rule at an internal node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Go left when `x[feature] <= threshold`.
    Le(f64),
    /// Go left when the decoded category equals `choice` (of `n`).
    CatEq { choice: usize, n: usize },
}

/// One tree node; `n` is the number of training samples that reached it
/// (TreeSHAP's "cover").
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    Leaf { value: f64, n: u32 },
    Split { feature: usize, rule: Rule, left: u32, right: u32, n: u32 },
}

/// A fitted regression tree over unit-space points.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Nodes in preorder; node 0 is the root.
    pub nodes: Vec<TreeNode>,
}

impl Tree {
    /// Predicts the mean response at `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { value, .. } => return *value,
                TreeNode::Split { feature, rule, left, right, .. } => {
                    idx = if rule_goes_left(rule, x[*feature]) {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Depth of the tree (longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], idx: usize) -> usize {
            match &nodes[idx] {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Whether `value` on the split feature goes to the left child.
pub fn rule_goes_left(rule: &Rule, value: f64) -> bool {
    match rule {
        Rule::Le(t) => value <= *t,
        Rule::CatEq { choice, n } => {
            let cat = ((value.clamp(0.0, 1.0) * *n as f64).floor() as usize).min(n - 1);
            cat == *choice
        }
    }
}

/// Forest hyperparameters (defaults follow SMAC's RF settings).
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    pub n_trees: usize,
    pub min_samples_leaf: usize,
    pub feature_frac: f64,
    pub n_threshold_candidates: usize,
    pub max_depth: usize,
    pub bootstrap: bool,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 24,
            min_samples_leaf: 3,
            feature_frac: 0.8,
            n_threshold_candidates: 8,
            max_depth: 24,
            bootstrap: true,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    pub trees: Vec<Tree>,
    spec: SearchSpec,
}

impl RandomForest {
    /// Fits a forest to `(xs, ys)`.
    ///
    /// # Panics
    /// Panics if `xs` is empty or lengths mismatch.
    pub fn fit(
        spec: &SearchSpec,
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &RandomForestConfig,
        seed: u64,
    ) -> RandomForest {
        assert!(!xs.is_empty(), "cannot fit a forest to zero samples");
        assert_eq!(xs.len(), ys.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..config.n_trees)
            .map(|_| {
                let indices: Vec<usize> = if config.bootstrap {
                    (0..xs.len()).map(|_| rng.random_range(0..xs.len())).collect()
                } else {
                    (0..xs.len()).collect()
                };
                build_tree(spec, xs, ys, indices, config, &mut rng)
            })
            .collect();
        RandomForest { trees, spec: spec.clone() }
    }

    /// Predicts mean and across-tree variance at `x` (the variance feeds
    /// Expected Improvement).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        debug_assert_eq!(x.len(), self.spec.len());
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let mean = llamatune_math::mean(&preds);
        let var = if preds.len() < 2 {
            0.0
        } else {
            preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (preds.len() - 1) as f64
        };
        (mean, var)
    }

    /// The search spec the forest was fitted on.
    pub fn spec(&self) -> &SearchSpec {
        &self.spec
    }
}

struct Partition {
    left: Vec<usize>,
    right: Vec<usize>,
    score: f64,
    rule: Rule,
    feature: usize,
}

fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
    idx.iter().map(|&i| (ys[i] - mean) * (ys[i] - mean)).sum()
}

fn build_tree(
    spec: &SearchSpec,
    xs: &[Vec<f64>],
    ys: &[f64],
    indices: Vec<usize>,
    config: &RandomForestConfig,
    rng: &mut StdRng,
) -> Tree {
    let mut nodes = Vec::new();
    build_node(spec, xs, ys, indices, config, rng, &mut nodes, 0);
    Tree { nodes }
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    spec: &SearchSpec,
    xs: &[Vec<f64>],
    ys: &[f64],
    indices: Vec<usize>,
    config: &RandomForestConfig,
    rng: &mut StdRng,
    nodes: &mut Vec<TreeNode>,
    depth: usize,
) -> u32 {
    let n = indices.len();
    let node_idx = nodes.len() as u32;
    let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / n as f64;
    if n < 2 * config.min_samples_leaf || depth >= config.max_depth {
        nodes.push(TreeNode::Leaf { value: mean, n: n as u32 });
        return node_idx;
    }
    let parent_sse = sse(ys, &indices);
    if parent_sse < 1e-12 {
        nodes.push(TreeNode::Leaf { value: mean, n: n as u32 });
        return node_idx;
    }

    // Random feature subset.
    let d = spec.len();
    let mut features: Vec<usize> = (0..d).collect();
    features.shuffle(rng);
    let keep = ((d as f64 * config.feature_frac).ceil() as usize).clamp(1, d);
    features.truncate(keep);

    let mut best: Option<Partition> = None;
    for &f in &features {
        let candidates = split_candidates(spec, xs, &indices, f, config, rng);
        for rule in candidates {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in &indices {
                if rule_goes_left(&rule, xs[i][f]) {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.len() < config.min_samples_leaf || right.len() < config.min_samples_leaf {
                continue;
            }
            let score = sse(ys, &left) + sse(ys, &right);
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(Partition { left, right, score, rule, feature: f });
            }
        }
    }

    match best {
        Some(p) if p.score < parent_sse - 1e-12 => {
            // Reserve the slot, then build children.
            nodes.push(TreeNode::Leaf { value: mean, n: n as u32 });
            let left = build_node(spec, xs, ys, p.left, config, rng, nodes, depth + 1);
            let right = build_node(spec, xs, ys, p.right, config, rng, nodes, depth + 1);
            nodes[node_idx as usize] =
                TreeNode::Split { feature: p.feature, rule: p.rule, left, right, n: n as u32 };
            node_idx
        }
        _ => {
            nodes.push(TreeNode::Leaf { value: mean, n: n as u32 });
            node_idx
        }
    }
}

fn split_candidates(
    spec: &SearchSpec,
    xs: &[Vec<f64>],
    indices: &[usize],
    feature: usize,
    config: &RandomForestConfig,
    rng: &mut StdRng,
) -> Vec<Rule> {
    match spec.params[feature] {
        ParamKind::Categorical { n } => {
            // Try every category present at this node (bounded by n).
            let mut seen = vec![false; n];
            for &i in indices {
                if let Some(c) = spec.params[feature].to_category(xs[i][feature]) {
                    seen[c] = true;
                }
            }
            seen.iter()
                .enumerate()
                .filter(|(_, present)| **present)
                .map(|(c, _)| Rule::CatEq { choice: c, n })
                .collect()
        }
        ParamKind::Continuous { .. } => {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in indices {
                lo = lo.min(xs[i][feature]);
                hi = hi.max(xs[i][feature]);
            }
            if hi - lo < 1e-12 {
                return Vec::new();
            }
            (0..config.n_threshold_candidates)
                .map(|_| Rule::Le(lo + rng.random::<f64>() * (hi - lo)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn continuous_spec(d: usize) -> SearchSpec {
        SearchSpec::continuous(d)
    }

    fn grid_data(f: impl Fn(&[f64]) -> f64, d: usize, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
        let ys = xs.iter().map(|x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn learns_a_univariate_step() {
        let spec = continuous_spec(1);
        let (xs, ys) = grid_data(|x| if x[0] > 0.5 { 10.0 } else { 0.0 }, 1, 200);
        let rf = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 1);
        let (low, _) = rf.predict(&[0.2]);
        let (high, _) = rf.predict(&[0.8]);
        assert!(low < 1.0, "f(0.2) ~ 0, got {low}");
        assert!(high > 9.0, "f(0.8) ~ 10, got {high}");
    }

    #[test]
    fn learns_the_relevant_dimension_among_noise() {
        // y depends only on x0; nine other dims are noise.
        let spec = continuous_spec(10);
        let (xs, ys) = grid_data(|x| 5.0 * x[0], 10, 300);
        let rf = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 2);
        let mut probe = vec![0.5; 10];
        probe[0] = 0.05;
        let (lo, _) = rf.predict(&probe);
        probe[0] = 0.95;
        let (hi, _) = rf.predict(&probe);
        assert!(hi - lo > 3.0, "forest should track x0: lo={lo} hi={hi}");
    }

    #[test]
    fn categorical_splits_are_unordered() {
        // Response peaks only for category 1 of 3 — a threshold split on
        // the encoding could not isolate the middle bin as cleanly.
        let spec = SearchSpec { params: vec![ParamKind::Categorical { n: 3 }] };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            let cat = i % 3;
            xs.push(vec![(cat as f64 + 0.5) / 3.0]);
            ys.push(if cat == 1 { 10.0 } else { 0.0 });
        }
        let rf = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 3);
        let (mid, _) = rf.predict(&[0.5]);
        let (lo, _) = rf.predict(&[1.0 / 6.0]);
        let (hi, _) = rf.predict(&[5.0 / 6.0]);
        assert!(mid > 9.0, "category 1 should predict ~10, got {mid}");
        assert!(lo < 1.0 && hi < 1.0, "categories 0/2 should predict ~0: {lo} {hi}");
    }

    #[test]
    fn variance_reflects_disagreement() {
        let spec = continuous_spec(1);
        let (xs, ys) = grid_data(|x| x[0], 1, 50);
        let rf = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 4);
        let (_, var) = rf.predict(&[0.5]);
        assert!(var >= 0.0);
        assert!(var.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = continuous_spec(3);
        let (xs, ys) = grid_data(|x| x[0] + x[1], 3, 80);
        let a = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 7);
        let b = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 7);
        let p = vec![0.3, 0.6, 0.9];
        assert_eq!(a.predict(&p), b.predict(&p));
    }

    #[test]
    fn single_sample_fits_a_stump() {
        let spec = continuous_spec(2);
        let rf =
            RandomForest::fit(&spec, &[vec![0.5, 0.5]], &[3.0], &RandomForestConfig::default(), 5);
        let (mean, var) = rf.predict(&[0.1, 0.9]);
        assert_eq!(mean, 3.0);
        assert_eq!(var, 0.0);
    }

    #[test]
    fn predictions_stay_within_label_range() {
        let spec = continuous_spec(2);
        let (xs, ys) = grid_data(|x| x[0] * x[1] * 7.0, 2, 120);
        let rf = RandomForest::fit(&spec, &xs, &ys, &RandomForestConfig::default(), 6);
        let mut rng = StdRng::seed_from_u64(1);
        let (lo, hi) =
            ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| (l.min(y), h.max(y)));
        for _ in 0..50 {
            let p = vec![rng.random::<f64>(), rng.random::<f64>()];
            let (mean, _) = rf.predict(&p);
            assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    #[test]
    fn depth_is_bounded() {
        let spec = continuous_spec(1);
        let (xs, ys) = grid_data(|x| (x[0] * 50.0).sin(), 1, 400);
        let cfg = RandomForestConfig { max_depth: 5, ..Default::default() };
        let rf = RandomForest::fit(&spec, &xs, &ys, &cfg, 8);
        for t in &rf.trees {
            assert!(t.depth() <= 6);
        }
    }

    #[test]
    fn cover_counts_are_consistent() {
        let spec = continuous_spec(2);
        let (xs, ys) = grid_data(|x| x[0], 2, 100);
        let cfg = RandomForestConfig { bootstrap: false, ..Default::default() };
        let rf = RandomForest::fit(&spec, &xs, &ys, &cfg, 9);
        for tree in &rf.trees {
            // Root cover equals the training set size without bootstrap.
            let root_n = match &tree.nodes[0] {
                TreeNode::Leaf { n, .. } | TreeNode::Split { n, .. } => *n,
            };
            assert_eq!(root_n, 100);
            // Every split's children covers sum to the parent's.
            for node in &tree.nodes {
                if let TreeNode::Split { left, right, n, .. } = node {
                    let ln = match &tree.nodes[*left as usize] {
                        TreeNode::Leaf { n, .. } | TreeNode::Split { n, .. } => *n,
                    };
                    let rn = match &tree.nodes[*right as usize] {
                        TreeNode::Leaf { n, .. } | TreeNode::Split { n, .. } => *n,
                    };
                    assert_eq!(ln + rn, *n);
                }
            }
        }
    }
}

//! Black-box configuration optimizers, implemented from scratch:
//!
//! * [`Smac`] — Sequential Model-based Algorithm Configuration (Hutter et
//!   al. 2011): a random-forest surrogate with Expected Improvement,
//!   local search around incumbents, and periodically interleaved random
//!   suggestions. The paper's best-performing baseline.
//! * [`GpBo`] — Gaussian-process BO with a Matérn 5/2 kernel on continuous
//!   dimensions and a Hamming kernel on categorical ones (Ru et al. 2020).
//! * [`Ddpg`] — Deep Deterministic Policy Gradient (Lillicrap et al. 2016)
//!   as used by CDBTune/QTune: actor–critic MLPs over the DBMS's internal
//!   metrics, trained with a replay buffer and OU exploration noise.
//!
//! All optimizers operate on the *unit hypercube*: a suggestion is a vector
//! `x ∈ [0, 1]^d` which the caller converts to knob values (or through the
//! LlamaTune pipeline). Categorical dimensions are declared in the
//! [`SearchSpec`] so surrogates can treat them as unordered.

pub mod ddpg;
pub mod gp;
pub mod guard;
pub mod nn;
pub mod rf;
pub mod smac;
pub mod sparse;
pub mod spec;

pub use ddpg::{Ddpg, DdpgConfig};
pub use gp::{GpBo, GpConfig};
pub use guard::{DegradationEvent, GuardFactory, GuardedOptimizer};
pub use rf::{RandomForest, RandomForestConfig, Tree, TreeNode};
pub use smac::{Smac, SmacConfig};
pub use sparse::{select_inducing, subsample_indices, SparseGpConfig};
pub use spec::{
    warm_start, Observation, Optimizer, OptimizerKind, ParamKind, RandomSearch, SearchSpec,
    DEFAULT_METRIC_DIM,
};
